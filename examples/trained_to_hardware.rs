//! The full co-design loop with *measured* sparsity: train a CNN, compress
//! it with the CSCNN pipeline, extract its real shapes and densities, and
//! simulate the resulting workload on the accelerator suite — the same
//! flow the paper drives from PyTorch extracts (§IV).
//!
//! ```sh
//! cargo run --release --example trained_to_hardware
//! ```

use cscnn::nn::centrosymmetric;
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::models;
use cscnn::nn::pruning::{self, PruneConfig};
use cscnn::nn::trainer::{evaluate, TrainConfig, Trainer};
use cscnn::sim::{baselines, Accelerator, CartesianAccelerator};
use cscnn::{describe_network, measure_profile, simulate_trained};

fn main() {
    println!("== trained network -> hardware, with measured sparsity ==\n");

    // 1) Train and compress.
    let data = SyntheticImages::generate(3, 16, 16, 4, 100, 0.12, 99);
    let (train, test) = data.split(0.2);
    let mut net = models::convnet_s(4, 99);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        lr: 0.05,
        ..Default::default()
    });
    println!("[1/4] training ConvNet-S...");
    let base = trainer.fit(&mut net, &train, &test);
    println!(
        "      baseline accuracy {:.1} %",
        100.0 * base.final_test_accuracy
    );
    centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
    let _ = trainer.fit(&mut net, &train, &test);
    pruning::prune_network(
        &mut net,
        &PruneConfig {
            conv_keep: 0.5,
            fc_keep: 0.25,
        },
    )
    .expect("finite weights");
    let _ = trainer.fit(&mut net, &train, &test);
    let final_acc = evaluate(&mut net, &test, 32);
    println!("      compressed accuracy {:.1} %\n", 100.0 * final_acc);

    // 2) Extract shapes + measured densities.
    println!("[2/4] extracting shapes and measured densities:");
    let desc = describe_network(&mut net, "ConvNet-S", (3, 16, 16)).expect("network lowers");
    let profile = measure_profile(&mut net, &test, 16);
    println!(
        "      {:8} {:>24} {:>12} {:>12}",
        "layer", "shape (KxCxRxS @ HxW)", "w density", "a density"
    );
    for (i, l) in desc.layers.iter().enumerate() {
        println!(
            "      {:8} {:>24} {:>11.1} % {:>11.1} %",
            l.name,
            format!("{}x{}x{}x{} @ {}x{}", l.k, l.c, l.r, l.s, l.h, l.w),
            100.0 * profile.weight_density[i],
            100.0 * profile.activation_density[i],
        );
    }

    // 3) Simulate on the suite with those measured numbers.
    println!("\n[3/4] simulating the measured workload:");
    let accs: Vec<Box<dyn Accelerator>> = vec![
        Box::new(baselines::dcnn()),
        Box::new(CartesianAccelerator::scnn()),
        Box::new(baselines::sparten()),
        Box::new(CartesianAccelerator::cscnn()),
    ];
    let dcnn_time = simulate_trained(
        &mut net,
        "ConvNet-S",
        (3, 16, 16),
        &test,
        &baselines::dcnn(),
        7,
    )
    .expect("network simulates")
    .total_time_s();
    println!("      {:10} {:>12} {:>10}", "accel", "time (us)", "speedup");
    for acc in &accs {
        let stats = simulate_trained(&mut net, "ConvNet-S", (3, 16, 16), &test, acc.as_ref(), 7)
            .expect("network simulates");
        println!(
            "      {:10} {:>12.2} {:>9.2}x",
            stats.accelerator,
            stats.total_time_s() * 1e6,
            dcnn_time / stats.total_time_s()
        );
    }

    // 4) The point.
    println!("\n[4/4] no calibrated profiles were involved: every density above was");
    println!("measured from the trained, centrosymmetric, pruned network itself.");
}
