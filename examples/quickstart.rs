//! Quickstart: compress a small CNN with centrosymmetric filters and
//! compare the CSCNN accelerator against the dense baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cscnn::nn::models;
use cscnn::prelude::*;

fn main() {
    // ---------------------------------------------------------------
    // Algorithm side: train → project (Eq. 5) → retrain (Eq. 7).
    // ---------------------------------------------------------------
    println!("== CSCNN quickstart ==\n");
    println!("[1/3] training a small CNN on a synthetic 4-class task...");
    let data = SyntheticImages::generate(1, 16, 16, 4, 80, 0.12, 42);
    let net = models::tiny_cnn(1, 16, 16, 4, 42);
    let config = TrainConfig {
        epochs: 8,
        batch_size: 32,
        lr: 0.05,
        ..Default::default()
    };
    let report = CompressionPipeline::new(config)
        .run(net, &data, &models::tiny_cnn_conv_inputs(16, 16))
        .expect("network lowers");
    println!(
        "      baseline accuracy        : {:5.1} %",
        100.0 * report.baseline_accuracy
    );
    println!(
        "      after Eq. 5 projection    : {:5.1} %  (collapses, as in the paper)",
        100.0 * report.post_projection_accuracy
    );
    println!(
        "      after Eq. 7 retraining    : {:5.1} %  (recovers)",
        100.0 * report.retrained_accuracy
    );
    println!(
        "      multiplication reduction  : {:.2}x (structure only)\n",
        report.mults.centro_reduction()
    );

    // ---------------------------------------------------------------
    // Hardware side: simulate AlexNet on DCNN, SCNN, and CSCNN.
    // ---------------------------------------------------------------
    println!("[2/3] simulating AlexNet on three accelerators...");
    let runner = Runner::new(42);
    let model = catalog::alexnet();
    let dcnn = runner.run_model(&baselines::dcnn(), &model);
    let scnn = runner.run_model(&CartesianAccelerator::scnn(), &model);
    let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
    println!(
        "      {:8} {:>12} {:>14} {:>10}",
        "accel", "time (ms)", "energy (uJ)", "speedup"
    );
    for s in [&dcnn, &scnn, &cscnn] {
        println!(
            "      {:8} {:>12.3} {:>14.1} {:>9.2}x",
            s.accelerator,
            s.total_time_s() * 1e3,
            s.total_on_chip_pj() * 1e-6,
            dcnn.total_time_s() / s.total_time_s()
        );
    }

    println!("\n[3/3] headline numbers (paper: 3.7x / 1.6x speedup, 8.9x / 2.8x EDP):");
    println!(
        "      CSCNN vs DCNN : {:.2}x speedup, {:.2}x EDP",
        cscnn.speedup_over(&dcnn),
        cscnn.edp_gain_over(&dcnn)
    );
    println!(
        "      CSCNN vs SCNN : {:.2}x speedup, {:.2}x EDP",
        cscnn.speedup_over(&scnn),
        cscnn.edp_gain_over(&scnn)
    );
    println!("\nSee `cargo run -p cscnn-bench --bin fig7` for the full evaluation.");
}
