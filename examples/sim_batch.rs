//! Batched serving-style simulation from on-disk IR artifacts: write
//! annotated `ModelIr` JSON files, load a directory of them, and drive the
//! whole request stream through `BatchRunner` — workloads synthesized once
//! per unique structure, requests scheduled across a worker pool (see
//! `docs/batching.md`).
//!
//! ```sh
//! cargo run --release --example sim_batch            # demo artifacts
//! cargo run --release --example sim_batch -- DIR     # your own artifacts
//! ```

use std::path::{Path, PathBuf};

use cscnn::ir::{ModelIr, SparsityAnnotation};
use cscnn::models::{catalog, lower, ModelCompression};
use cscnn::sim::{Accelerator, BatchRunner, CartesianAccelerator, Runner};

/// Annotates a catalog model's IR with the densities the compression
/// pipeline calibrates for the accelerator's scheme.
fn calibrated_ir(model: &cscnn::models::ModelDesc, acc: &dyn Accelerator) -> ModelIr {
    let mc = ModelCompression::new(model.clone(), acc.scheme());
    let mut ir = lower::to_ir(model);
    for (i, node) in ir.weight_nodes_mut().enumerate() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: mc.profile.weight_density[i],
            activation_density: mc.profile.activation_density[i],
        });
    }
    ir
}

/// Writes demo artifacts (LeNet-5, ConvNet, AlexNet) into `dir`.
fn write_demo_artifacts(dir: &Path, acc: &dyn Accelerator) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for model in [catalog::lenet5(), catalog::convnet(), catalog::alexnet()] {
        let ir = calibrated_ir(&model, acc);
        let file = dir.join(format!("{}.json", model.name.to_lowercase()));
        std::fs::write(&file, ir.to_json_pretty())?;
        println!("  wrote {}", file.display());
    }
    Ok(())
}

/// Loads every `*.json` artifact under `dir`, sorted by file name so the
/// request stream is deterministic.
fn load_artifacts(dir: &Path) -> std::io::Result<Vec<ModelIr>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut irs = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        match ModelIr::from_json_str(&text) {
            Ok(ir) => {
                println!(
                    "  {} -> {} ({} nodes, {} weight-bearing)",
                    path.display(),
                    ir.name,
                    ir.nodes.len(),
                    ir.num_weight_nodes()
                );
                irs.push(ir);
            }
            Err(err) => println!("  {} REJECTED: {err}", path.display()),
        }
    }
    Ok(irs)
}

fn main() {
    let acc = CartesianAccelerator::cscnn();
    let dir = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let dir = PathBuf::from("target/ir_artifacts");
            println!("[1/3] writing demo artifacts to {}", dir.display());
            write_demo_artifacts(&dir, &acc).expect("demo artifacts are writable");
            dir
        }
    };

    println!("[2/3] loading artifacts from {}", dir.display());
    let irs = load_artifacts(&dir).expect("artifact directory is readable");
    assert!(!irs.is_empty(), "no artifacts found in {}", dir.display());

    // A serving-style stream: many requests over few unique structures.
    const REQUESTS: usize = 12;
    let requests: Vec<ModelIr> = (0..REQUESTS).map(|i| irs[i % irs.len()].clone()).collect();

    println!(
        "[3/3] simulating {} requests ({} unique structures) on {}\n",
        requests.len(),
        irs.len(),
        acc.name()
    );
    let batch = BatchRunner::new(Runner::new(42));
    let stats = batch
        .run_batch(&acc, &requests)
        .expect("artifacts are annotated");

    println!(
        "  {:<10} {:>14} {:>14} {:>12}",
        "request", "model", "cycles", "latency (ms)"
    );
    for (i, run) in stats.runs.iter().enumerate() {
        println!(
            "  {:<10} {:>14} {:>14} {:>12.4}",
            i,
            run.model,
            run.total_cycles(),
            run.total_time_s() * 1e3
        );
    }
    println!(
        "\n  workload cache: {} hits / {} misses ({} syntheses saved)",
        stats.cache_hits, stats.cache_misses, stats.cache_hits
    );
    println!("\naggregate report:");
    println!(
        "{}",
        cscnn::json::to_string_pretty(&stats.summary()).expect("summary serializes")
    );
}
