//! Reproduces the paper's §II-B training anecdote on a LeNet-5 proxy:
//! accuracy collapses after the Eq. 5 centrosymmetric projection
//! (99.2 % → 71.6 % in the paper) and retraining with tied gradients
//! (Eq. 7) recovers it.
//!
//! ```sh
//! cargo run --release --example train_centrosymmetric
//! ```

use cscnn::nn::centrosymmetric;
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::models;
use cscnn::nn::trainer::{evaluate, TrainConfig, Trainer};

fn main() {
    println!("== LeNet-5 centrosymmetric training (paper §II-B) ==\n");
    println!("dataset: synthetic 28x28 digit glyphs (offline MNIST substitute, DESIGN.md §2)\n");
    let data = SyntheticImages::digits(40, 0.12, 7);
    let (train, test) = data.split(0.2);
    let mut net = models::lenet5(10, 7);

    // Paper configuration scaled to the proxy task: LR decays 5x every
    // 5 epochs.
    let config = TrainConfig {
        epochs: 12,
        batch_size: 32,
        lr: 0.05,
        lr_decay_factor: 5.0,
        lr_decay_every: 5,
        ..Default::default()
    };
    let trainer = Trainer::new(config);

    println!("[phase 1] conventional training:");
    let base = trainer.fit(&mut net, &train, &test);
    for e in &base.history {
        println!(
            "  epoch {:2}  loss {:.4}  train {:5.1} %  test {:5.1} %",
            e.epoch,
            e.train_loss,
            100.0 * e.train_accuracy,
            100.0 * e.test_accuracy
        );
    }

    println!("\n[phase 2] Eq. 5 projection (dual weights -> their mean):");
    let converted = centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
    let dropped = evaluate(&mut net, &test, 32);
    println!("  {converted} conv layers constrained");
    println!(
        "  accuracy {:5.1} % -> {:5.1} %   (paper: 99.2 % -> 71.6 %)",
        100.0 * base.final_test_accuracy,
        100.0 * dropped
    );
    assert!(centrosymmetric::check_invariant(&mut net, 1e-6));

    println!("\n[phase 3] retraining with tied gradients (Eq. 7):");
    let recovered = trainer.fit(&mut net, &train, &test);
    for e in &recovered.history {
        println!(
            "  epoch {:2}  loss {:.4}  train {:5.1} %  test {:5.1} %",
            e.epoch,
            e.train_loss,
            100.0 * e.train_accuracy,
            100.0 * e.test_accuracy
        );
    }
    assert!(
        centrosymmetric::check_invariant(&mut net, 1e-4),
        "Eq. 2 must survive retraining"
    );

    let mults = centrosymmetric::count_multiplications(&mut net, &models::lenet5_conv_inputs())
        .expect("conv inputs cover every conv");
    println!("\nsummary:");
    println!(
        "  baseline       {:5.1} %",
        100.0 * base.final_test_accuracy
    );
    println!("  post-projection{:5.1} %", 100.0 * dropped);
    println!(
        "  retrained      {:5.1} %",
        100.0 * recovered.final_test_accuracy
    );
    println!(
        "  conv multiplication reduction: {:.2}x",
        mults.centro_reduction()
    );
}
