//! Spatial-tiling design-space study (paper §III-C / Fig. 11): planar vs
//! output-channel vs mixed tiling, with and without density-sorted filter
//! balancing, across networks of very different shapes.
//!
//! ```sh
//! cargo run --release --example tiling_study
//! ```

use cscnn::models::catalog;
use cscnn::sim::tiling::TilingStrategy;
use cscnn::sim::{CartesianAccelerator, Runner};

fn main() {
    println!("== spatial tiling study (Fig. 11 design space) ==\n");
    let runner = Runner::new(42);
    let models = [
        catalog::lenet5(),
        catalog::convnet(),
        catalog::alexnet(),
        catalog::vgg16(),
    ];
    let strategies = [
        ("planar", TilingStrategy::Planar),
        ("output-channel", TilingStrategy::OutputChannel),
        ("mixed", TilingStrategy::Mixed),
    ];

    println!("speedup over planar tiling (CSCNN accelerator):");
    print!("  {:16}", "model");
    for (name, _) in &strategies {
        print!("{:>16}", name);
    }
    println!();
    for model in &models {
        let planar_time = runner
            .run_model(
                &CartesianAccelerator::cscnn().with_tiling(TilingStrategy::Planar),
                model,
            )
            .total_time_s();
        print!("  {:16}", model.name);
        for (_, strategy) in &strategies {
            let t = runner
                .run_model(&CartesianAccelerator::cscnn().with_tiling(*strategy), model)
                .total_time_s();
            print!("{:>15.2}x", planar_time / t);
        }
        println!();
    }

    println!("\neffect of density-sorted filter balancing (mixed tiling):");
    println!(
        "  {:16} {:>12} {:>12} {:>8}",
        "model", "naive (ms)", "sorted (ms)", "gain"
    );
    for model in &models {
        let naive = runner
            .run_model(&CartesianAccelerator::cscnn().with_balancing(false), model)
            .total_time_s();
        let sorted = runner
            .run_model(&CartesianAccelerator::cscnn().with_balancing(true), model)
            .total_time_s();
        println!(
            "  {:16} {:>12.3} {:>12.3} {:>7.2}x",
            model.name,
            naive * 1e3,
            sorted * 1e3,
            naive / sorted
        );
    }

    println!("\ninterpretation:");
    println!("  - output-channel tiling matches mixed on large nets but starves");
    println!("    on LeNet-5/ConvNet (too few output channels per PE);");
    println!("  - planar tiling pays kernel-halo and imbalance costs that grow");
    println!("    as feature maps shrink;");
    println!("  - mixed tiling adapts per layer and dominates overall (§III-C).");
}
