//! The full co-design loop on a real benchmark network: pick a catalog
//! model, apply every compression scheme, and simulate the resulting
//! workloads on the accelerator suite.
//!
//! ```sh
//! cargo run --release --example compress_and_simulate [model]
//! ```
//!
//! `model` defaults to `vgg16`; any catalog alias works (`alexnet`,
//! `resnet-50`, `shufflenet-v2`, ...).

use cscnn::models::{catalog, CompressionScheme, ModelCompression};
use cscnn::sim::{baselines, CartesianAccelerator, Runner};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vgg16".to_string());
    let model = catalog::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown model '{name}'; try alexnet, vgg16, resnet-18, ...");
        std::process::exit(1);
    });
    println!("== compress & simulate: {} ==\n", model.name);
    println!(
        "{} weight-bearing layers, {:.2} GMACs dense, {:.1} M weights\n",
        model.layers.len(),
        model.dense_mults() as f64 / 1e9,
        model.weights() as f64 / 1e6
    );

    // Compression schemes side by side (the Tables II/III view).
    println!("compression schemes:");
    println!(
        "  {:18} {:>12} {:>14} {:>12}",
        "scheme", "mult red.", "weight comp.", "GMACs left"
    );
    for scheme in [
        CompressionScheme::Dense,
        CompressionScheme::DeepCompression,
        CompressionScheme::Cscnn,
        CompressionScheme::CscnnPruning,
    ] {
        let mc = ModelCompression::new(model.clone(), scheme);
        println!(
            "  {:18} {:>11.2}x {:>13.2}x {:>12.3}",
            scheme.label(),
            mc.reduction(),
            mc.weight_compression(),
            mc.total_mults() / 1e9
        );
    }

    // Accelerator comparison (the Fig. 7 view for this one model).
    println!("\naccelerators (multiplier budgets equalized):");
    let runner = Runner::new(42);
    let accs = baselines::evaluation_accelerators();
    let dcnn_time = runner.run_model(&baselines::dcnn(), &model).total_time_s();
    println!(
        "  {:14} {:>12} {:>10} {:>14} {:>12}",
        "accelerator", "time (ms)", "speedup", "energy (uJ)", "EDP gain"
    );
    let dcnn_stats = runner.run_model(&baselines::dcnn(), &model);
    for acc in &accs {
        let stats = runner.run_model(acc.as_ref(), &model);
        println!(
            "  {:14} {:>12.3} {:>9.2}x {:>14.1} {:>11.2}x",
            stats.accelerator,
            stats.total_time_s() * 1e3,
            dcnn_time / stats.total_time_s(),
            stats.total_on_chip_pj() * 1e-6,
            stats
                .edp_gain_over(&dcnn_stats)
                .max(dcnn_stats.edp() / stats.edp())
        );
    }

    // Layer-wise CSCNN vs SCNN detail (the Fig. 8 view).
    println!("\nlayer-wise CSCNN speedup over SCNN (conv layers):");
    let scnn = runner.run_model(&CartesianAccelerator::scnn(), &model);
    let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
    for (s, c) in scnn.layers.iter().zip(&cscnn.layers).take(16) {
        println!("  {:14} {:>6.2}x", s.name, s.time_s / c.time_s);
    }
    if scnn.layers.len() > 16 {
        println!("  ... ({} more layers)", scnn.layers.len() - 16);
    }
}
