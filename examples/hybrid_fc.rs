//! The §III-E hybrid: CSCNN for convolutions, an EIE-style engine for the
//! fully-connected layers where the Cartesian product degenerates.
//!
//! ```sh
//! cargo run --release --example hybrid_fc
//! ```

use cscnn::models::catalog;
use cscnn::models::LayerKind;
use cscnn::sim::export;
use cscnn::sim::hybrid::CscnnEie;
use cscnn::sim::{CartesianAccelerator, Runner};

fn main() {
    println!("== CSCNN + EIE hybrid (paper §III-E) ==\n");
    let runner = Runner::new(42);
    for model in [catalog::alexnet(), catalog::vgg16()] {
        let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
        let hybrid = runner.run_model(&CscnnEie::new(), &model);
        println!("-- {} --", model.name);
        println!(
            "{:10} {:>16} {:>16} {:>14}",
            "layer kind", "CSCNN cycles", "hybrid cycles", "compute gain"
        );
        let mut conv = (0u64, 0u64);
        let mut fc = (0u64, 0u64);
        for (i, layer) in model.layers.iter().enumerate() {
            let pair = if layer.kind == LayerKind::FullyConnected {
                &mut fc
            } else {
                &mut conv
            };
            pair.0 += cscnn.layers[i].compute_cycles;
            pair.1 += hybrid.layers[i].compute_cycles;
        }
        for (label, (a, b)) in [("conv", conv), ("fc", fc)] {
            println!(
                "{:10} {:>16} {:>16} {:>13.2}x",
                label,
                a,
                b,
                a as f64 / b.max(1) as f64
            );
        }
        println!(
            "total time: {:.3} ms -> {:.3} ms (FC layers are DRAM-bound, so the\n\
             win is compute occupancy + energy, as the paper's 'memory-hungry'\n\
             remark predicts)\n",
            cscnn.total_time_s() * 1e3,
            hybrid.total_time_s() * 1e3
        );
    }

    // Dump the AlexNet comparison for external analysis.
    let out = std::env::temp_dir().join("cscnn_hybrid_alexnet.json");
    let model = catalog::alexnet();
    let runs = vec![
        runner.run_model(&CartesianAccelerator::cscnn(), &model),
        runner.run_model(&CscnnEie::new(), &model),
    ];
    match export::write_json(&runs, &out) {
        Ok(()) => println!("full per-layer results written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
