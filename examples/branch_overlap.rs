//! Branch overlap on DAG-shaped models: run the wired `resnet18_ir`
//! (real skip edges into `Add` joins) through
//! `Runner::run_ir_overlapped`, scheduling independent branches across
//! PE sub-arrays. Per-node results stay bit-identical to sequential
//! `run_ir`; only the makespan changes (see `docs/simulator.md`).
//!
//! ```sh
//! cargo run --release --example branch_overlap
//! ```

use cscnn::ir::{ModelIr, SparsityAnnotation};
use cscnn::models::{catalog, ModelCompression, ModelDesc};
use cscnn::sim::{Accelerator, CartesianAccelerator, Runner};

/// Annotates an IR's weight nodes with the compression pipeline's
/// calibrated densities for the accelerator's scheme.
fn annotate(ir: &mut ModelIr, model: &ModelDesc, acc: &dyn Accelerator) {
    let mc = ModelCompression::new(model.clone(), acc.scheme());
    for (i, node) in ir.weight_nodes_mut().enumerate() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: mc.profile.weight_density[i],
            activation_density: mc.profile.activation_density[i],
        });
    }
}

fn main() {
    let acc = CartesianAccelerator::cscnn();
    let runner = Runner::new(42);

    for (ir, model) in [
        (catalog::resnet18_ir(), catalog::resnet18()),
        (catalog::resnet50_ir(), catalog::resnet50()),
        (catalog::googlenet_ir(), catalog::googlenet()),
    ] {
        let mut ir = ir;
        annotate(&mut ir, &model, &acc);
        println!(
            "{} — {} nodes, {} edges",
            ir.name,
            ir.nodes.len(),
            ir.edges.len()
        );

        let sequential = runner.run_ir(&acc, &ir).expect("annotated IR simulates");
        println!(
            "  sequential latency: {:>10.3} ms",
            sequential.total_time_s() * 1e3
        );

        for sub_arrays in [2usize, 4] {
            let sched = runner
                .run_ir_overlapped(&acc, &ir, sub_arrays)
                .expect("annotated IR overlaps");
            // Scheduling never perturbs per-node results.
            assert_eq!(sched.run.total_cycles(), sequential.total_cycles());
            println!(
                "  {} sub-arrays makespan: {:>10.3} ms  (overlap speedup {:.3}x)",
                sub_arrays,
                sched.makespan_s * 1e3,
                sched.overlap_speedup()
            );
        }
        println!();
    }
}
