//! End-to-end algorithm-side integration test: the paper's Fig. 2 flow
//! (train → Eq. 5 projection → Eq. 7 retraining → pruning → retraining)
//! across `cscnn-nn`, `cscnn-sparse`, and the `cscnn` facade.

use cscnn::nn::centrosymmetric;
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::models;
use cscnn::nn::pruning::PruneConfig;
use cscnn::nn::trainer::TrainConfig;
use cscnn::CompressionPipeline;

fn fast_config() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 16,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        lr_decay_factor: 5.0,
        lr_decay_every: 5,
        seed: 7,
        num_threads: None,
    }
}

#[test]
fn projection_collapses_and_retraining_recovers() {
    let data = SyntheticImages::generate(1, 8, 8, 4, 60, 0.12, 31);
    let net = models::tiny_cnn(1, 8, 8, 4, 31);
    let report = CompressionPipeline::new(fast_config())
        .run(net, &data, &models::tiny_cnn_conv_inputs(8, 8))
        .expect("network lowers");
    // The dense baseline must genuinely learn the task.
    assert!(
        report.baseline_accuracy > 0.6,
        "baseline accuracy {}",
        report.baseline_accuracy
    );
    // Retraining must recover to near the baseline (the paper reports
    // "marginal accuracy loss").
    assert!(
        report.retrained_accuracy > report.baseline_accuracy - 0.15,
        "retrained {} vs baseline {}",
        report.retrained_accuracy,
        report.baseline_accuracy
    );
    // The centrosymmetric structure must deliver the structural reduction.
    assert!(report.mults.centro_reduction() > 1.5);
}

#[test]
fn pruning_composes_with_centrosymmetric_filters() {
    let data = SyntheticImages::generate(1, 8, 8, 3, 60, 0.12, 32);
    let net = models::tiny_cnn(1, 8, 8, 3, 32);
    let report = CompressionPipeline::new(fast_config())
        .with_pruning(PruneConfig {
            conv_keep: 0.5,
            fc_keep: 0.3,
        })
        .run(net, &data, &models::tiny_cnn_conv_inputs(8, 8))
        .expect("network lowers");
    let pruned = report.pruned_accuracy.expect("pruning ran");
    // Pruned-and-retrained accuracy stays within a reasonable band of the
    // retrained model.
    assert!(
        pruned > report.retrained_accuracy - 0.2,
        "pruned {} vs retrained {}",
        pruned,
        report.retrained_accuracy
    );
    // Roughly half the conv weights must be gone.
    assert!(report.kept_fraction < 0.75, "kept {}", report.kept_fraction);
    // Combined reduction beats the structural reduction alone.
    assert!(report.mults.pruned_reduction() > report.mults.centro_reduction());
}

#[test]
fn centrosymmetric_networks_memorize_random_labels() {
    // §II-D's theory note: CSCNNs retain the universal approximation
    // property. A numerical proxy for expressivity: a centrosymmetric
    // network must still be able to *memorize* a small randomly-labeled
    // dataset (fit capacity survives the constraint).
    use cscnn::nn::metrics::softmax_cross_entropy;
    use cscnn::nn::optimizer::Sgd;
    use cscnn::tensor::Tensor;
    use cscnn_rng::Rng;
    use cscnn_rng::SeedableRng;

    let mut rng = cscnn_rng::rngs::StdRng::seed_from_u64(34);
    let n = 16usize;
    let x = Tensor::from_fn(&[n, 1, 8, 8], |_| rng.gen_range(-1.0..1.0f32));
    let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3)).collect();
    let mut net = models::tiny_cnn(1, 8, 8, 3, 34);
    centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
    let mut opt = Sgd::new(0.9, 0.0);
    let mut final_acc = 0.0;
    for _ in 0..300 {
        let logits = net.forward(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        net.backward(&grad);
        let mut params = net.params_mut();
        opt.step(&mut params, 0.02);
        final_acc = cscnn::nn::metrics::accuracy(&net.forward(&x), &labels);
        if final_acc == 1.0 {
            break;
        }
    }
    assert!(
        final_acc > 0.9,
        "constrained network should memorize random labels, got {final_acc}"
    );
    assert!(centrosymmetric::check_invariant(&mut net, 1e-4));
}

#[test]
fn lenet_projection_drop_mirrors_paper_anecdote() {
    // §II-B: LeNet-5 drops drastically after projection and retraining
    // recovers. We reproduce the *shape* on the synthetic digits proxy.
    let data = SyntheticImages::generate(1, 28, 28, 5, 30, 0.15, 33);
    let (train, test) = data.split(0.2);
    let mut net = models::lenet5(5, 33);
    let trainer = cscnn::nn::trainer::Trainer::new(TrainConfig {
        epochs: 4,
        batch_size: 16,
        lr: 0.03,
        ..Default::default()
    });
    let base = trainer.fit(&mut net, &train, &test);
    assert!(base.final_test_accuracy > 0.5, "LeNet proxy must learn");
    let converted = centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
    assert_eq!(converted, 2, "both LeNet conv layers are eligible");
    assert!(centrosymmetric::check_invariant(&mut net, 1e-6));
    let dropped = cscnn::nn::trainer::evaluate(&mut net, &test, 16);
    let recovered = trainer.fit(&mut net, &train, &test);
    assert!(
        recovered.final_test_accuracy >= dropped - 0.05,
        "recovered {} vs dropped {}",
        recovered.final_test_accuracy,
        dropped
    );
    // The invariant must survive retraining (tied gradients preserve Eq. 2).
    assert!(centrosymmetric::check_invariant(&mut net, 1e-4));
}
