//! IR lowering integration: the typed `ModelIr` must be a faithful hub
//! between the four layer representations — catalog descriptors, trainable
//! networks, simulator workloads, and the compression math.

use cscnn::ir::{IrError, LayerNode};
use cscnn::models::{catalog, lower, LayerDesc, ModelDesc};
use cscnn::nn::centrosymmetric;
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::models;
use cscnn::nn::trainer::{TrainConfig, Trainer};
use cscnn::sim::{baselines, CartesianAccelerator};
use cscnn::{describe_network, simulate_trained};

#[test]
fn every_catalog_model_round_trips_through_ir_bit_identically() {
    let descs = [
        catalog::lenet5(),
        catalog::convnet(),
        catalog::alexnet(),
        catalog::vgg16(),
        catalog::vgg16_cifar(),
        catalog::resnet18(),
        catalog::resnet50(),
        catalog::resnet152(),
        catalog::resnext101(),
        catalog::wide_resnet28_10(),
        catalog::squeezenet(),
        catalog::googlenet(),
        catalog::mobilenet_v1(),
        catalog::shufflenet_v2(),
        catalog::efficientnet_b7(),
    ];
    for desc in descs {
        let back = lower::to_model_desc(&lower::to_ir(&desc));
        assert_eq!(back, Ok(desc.clone()), "{} must round-trip", desc.name);
    }
}

#[test]
fn catalog_ir_authors_agree_with_their_lowered_descriptors() {
    // The catalog is authored as IR; its plain functions are the lowering.
    assert_eq!(
        lower::to_model_desc(&catalog::lenet5_ir()),
        Ok(catalog::lenet5())
    );
    assert_eq!(
        lower::to_model_desc(&catalog::mobilenet_v1_ir()),
        Ok(catalog::mobilenet_v1())
    );
    // Depthwise survives the trip both ways.
    let mobilenet = catalog::mobilenet_v1_ir();
    assert!(mobilenet
        .nodes
        .iter()
        .any(|n| matches!(n, LayerNode::Depthwise { .. })));
}

#[test]
fn trained_lenet_describes_field_for_field() {
    // The bridge (Network → Ir → ModelDesc) must recover LeNet-5's exact
    // published geometry, layer names keyed by network index.
    let mut net = models::lenet5(10, 21);
    let desc = describe_network(&mut net, "LeNet-5", (1, 28, 28)).expect("network lowers");
    let expected = ModelDesc::new(
        "LeNet-5",
        vec![
            LayerDesc::conv("L0", 1, 6, 5, 5, 28, 28, 1, 2),
            LayerDesc::conv("L3", 6, 16, 5, 5, 14, 14, 1, 0),
            LayerDesc::fc("L7", 400, 120),
            LayerDesc::fc("L9", 120, 84),
            LayerDesc::fc("L11", 84, 10),
        ],
    );
    assert_eq!(desc, expected);
}

#[test]
fn depthwise_network_flows_end_to_end_through_ir() {
    // The MobileNet-style network (standard conv → depthwise conv →
    // pointwise conv) must train, centro-project, lower, and simulate —
    // exercising grouped convolution through every representation.
    let data = SyntheticImages::generate(3, 8, 8, 3, 40, 0.12, 91);
    let (train, test) = data.split(0.25);
    let mut net = models::mobile_cnn(3, 8, 8, 3, 91);
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 16,
        lr: 0.05,
        ..Default::default()
    });
    let _ = trainer.fit(&mut net, &train, &test);

    // The 3x3 standard and 3x3 depthwise convs are eligible; the 1x1
    // pointwise conv is not (r·s == 1).
    let converted = centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
    assert_eq!(converted, 2);
    let _ = trainer.fit(&mut net, &train, &test);

    // Network → Ir: the depthwise layer must lower to its own variant and
    // the centrosymmetric flags must mirror eligibility.
    let ir = net.to_ir("MobileCNN", (3, 8, 8)).expect("network lowers");
    assert!(matches!(
        &ir.nodes[2],
        LayerNode::Depthwise {
            centrosymmetric: true,
            ..
        }
    ));
    assert!(matches!(
        &ir.nodes[4],
        LayerNode::Conv {
            centrosymmetric: false,
            ..
        }
    ));

    // Per-layer mult parity: each conv node's IR arithmetic must match the
    // catalog descriptor it lowers to, and their sum must match the
    // network-level walker.
    let mut ir_dense_total = 0u64;
    for node in &ir.nodes {
        if let LayerNode::Conv { geom, .. } | LayerNode::Depthwise { geom, .. } = node {
            let desc = lower::layer_desc(node).expect("conv nodes lower");
            assert_eq!(geom.dense_mults(), desc.dense_mults(), "{:?}", node.name());
            ir_dense_total += geom.dense_mults();
        }
    }
    let counted =
        centrosymmetric::count_multiplications(&mut net, &models::mobile_cnn_conv_inputs(8, 8))
            .expect("conv inputs cover every conv");
    assert_eq!(ir_dense_total, counted.dense);

    // Ir → LayerWorkload: simulate on the dense baseline and CSCNN.
    let dcnn = simulate_trained(
        &mut net,
        "MobileCNN",
        (3, 8, 8),
        &test,
        &baselines::dcnn(),
        9,
    )
    .expect("network simulates");
    let cscnn = simulate_trained(
        &mut net,
        "MobileCNN",
        (3, 8, 8),
        &test,
        &CartesianAccelerator::cscnn(),
        9,
    )
    .expect("network simulates");
    assert!(
        cscnn.speedup_over(&dcnn) > 1.0,
        "CSCNN speedup on depthwise net {}",
        cscnn.speedup_over(&dcnn)
    );
}

#[test]
fn lowering_errors_name_the_offending_layer() {
    // A flattened-only network has no weight-bearing nodes.
    let mut net = cscnn::nn::Network::new();
    net.push(cscnn::nn::Flatten::new());
    let err = describe_network(&mut net, "hollow", (1, 4, 4)).expect_err("no weight layers");
    assert_eq!(
        err,
        IrError::EmptyModel {
            model: "hollow".into()
        }
    );
}
