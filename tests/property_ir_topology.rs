//! Property tests of the DAG-shaped IR: randomly generated valid graphs
//! must round-trip losslessly through the v2 artifact schema, simulate
//! identically under any valid topological reordering of their node list,
//! and reject injected corruption with errors naming the offending node or
//! edge.
//!
//! The base seed is `CSCNN_PROP_SEED` (default 1); `ci.sh` sweeps a few
//! fixed seeds so the generator explores different graph families run to
//! run while every failure stays reproducible.

use cscnn::ir::{IrBuilder, IrEdge, LayerNode, ModelIr, SparsityAnnotation, TopologyError};
use cscnn::sim::{CartesianAccelerator, Runner, SimError};
use cscnn_rng::rngs::StdRng;
use cscnn_rng::{Rng, SeedableRng};

/// Base seed for the run: `CSCNN_PROP_SEED`, defaulting to 1.
fn prop_seed() -> u64 {
    std::env::var("CSCNN_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Generates a random valid DAG: a conv stem, then a mix of conv nodes
/// (one predecessor, chosen anywhere upstream) and `Add`/`Concat` joins
/// (2–4 distinct predecessors), wired through [`IrBuilder`] so the result
/// always validates.
fn random_dag(rng: &mut StdRng, tag: u64) -> ModelIr {
    let mut b = IrBuilder::new(&format!("prop-dag-{tag}"));
    let stem = b.push(LayerNode::conv("n0", 3, 8, 3, 3, 8, 8, 1, 1));
    let mut nodes = vec![stem];
    let count = rng.gen_range(4..12usize);
    for i in 1..=count {
        let name = format!("n{i}");
        let idx = if nodes.len() >= 2 && rng.gen_bool(0.35) {
            let want = rng.gen_range(2..=nodes.len().min(4));
            let mut preds: Vec<usize> = Vec::new();
            while preds.len() < want {
                let p = nodes[rng.gen_range(0..nodes.len())];
                if !preds.contains(&p) {
                    preds.push(p);
                }
            }
            let join = if rng.gen_bool(0.5) {
                LayerNode::add(&name)
            } else {
                LayerNode::concat(&name)
            };
            b.push_after(join, &preds)
        } else {
            let p = nodes[rng.gen_range(0..nodes.len())];
            b.push_after(LayerNode::conv(&name, 8, 8, 3, 3, 8, 8, 1, 1), &[p])
        };
        nodes.push(idx);
    }
    b.finish().expect("generated DAG is valid by construction")
}

/// Annotates every weight-bearing node with densities drawn from `rng`.
fn annotate(ir: &mut ModelIr, rng: &mut StdRng) {
    for node in ir.weight_nodes_mut() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: rng.gen_range(0.2..0.9),
            activation_density: rng.gen_range(0.3..1.0),
        });
    }
}

/// Rewrites `ir` into a uniformly random valid topological order of the
/// same graph (names, annotations and wiring preserved; indices remapped).
fn random_topological_reorder(ir: &ModelIr, rng: &mut StdRng) -> ModelIr {
    let n = ir.nodes.len();
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &ir.edges {
        indeg[e.to] += 1;
        succ[e.from].push(e.to);
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let i = ready.swap_remove(rng.gen_range(0..ready.len()));
        order.push(i);
        for &t in &succ[i] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                ready.push(t);
            }
        }
    }
    assert_eq!(order.len(), n, "input graph is acyclic");
    let mut pos = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        pos[old] = new;
    }
    let nodes = order.iter().map(|&old| ir.nodes[old].clone()).collect();
    let edges = ir
        .edges
        .iter()
        .map(|e| IrEdge::new(pos[e.from], pos[e.to]))
        .collect();
    ModelIr::with_edges(&ir.name, nodes, edges)
}

#[test]
fn random_dags_round_trip_losslessly_through_artifact_v2() {
    let mut rng = StdRng::seed_from_u64(prop_seed() ^ 0xa57);
    for tag in 0..24 {
        let mut ir = random_dag(&mut rng, tag);
        if tag % 2 == 0 {
            annotate(&mut ir, &mut rng); // annotations must survive too
        }
        let reloaded = ModelIr::from_json_str(&ir.to_json_string())
            .unwrap_or_else(|e| panic!("{} re-parses: {e}", ir.name));
        assert_eq!(reloaded, ir, "{} round-trips losslessly", ir.name);
        assert_eq!(reloaded.annotated_hash(), ir.annotated_hash());
        assert_eq!(reloaded.structural_hash(), ir.structural_hash());
    }
}

#[test]
fn simulation_is_invariant_under_valid_topological_reordering() {
    let seed = prop_seed();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0d9);
    let acc = CartesianAccelerator::cscnn();
    let runner = Runner::new(seed);
    for tag in 0..8 {
        let mut ir = random_dag(&mut rng, tag);
        annotate(&mut ir, &mut rng);
        let base = runner.run_ir(&acc, &ir).expect("annotated DAG simulates");
        let reordered = random_topological_reorder(&ir, &mut rng);
        reordered.validate().expect("reordering preserves validity");
        let moved = runner
            .run_ir(&acc, &reordered)
            .expect("reordered DAG simulates");
        // Same timed nodes, same per-node results — matched by name since
        // the list order (and thus the report order) legitimately differs.
        let by_name = |run: &cscnn::sim::RunStats| {
            let mut v: Vec<(String, String)> = run
                .layers
                .iter()
                .map(|l| {
                    (
                        l.name.clone(),
                        cscnn::json::to_string(l).expect("layer stats serialize"),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            by_name(&base),
            by_name(&moved),
            "{} is order-invariant",
            ir.name
        );
        assert_eq!(base.total_cycles(), moved.total_cycles());
    }
}

#[test]
fn corrupted_graphs_are_rejected_naming_the_culprit() {
    let mut rng = StdRng::seed_from_u64(prop_seed() ^ 0xbad);
    let runner = Runner::new(3);
    let acc = CartesianAccelerator::cscnn();
    for tag in 0..8 {
        let mut ir = random_dag(&mut rng, tag);
        annotate(&mut ir, &mut rng);

        // Dangling edge: the error names the edge and its out-of-bounds
        // endpoint, and the simulator rejects it identically.
        let mut dangling = ir.clone();
        let ghost = dangling.nodes.len() + rng.gen_range(1..9usize);
        dangling.edges.push(IrEdge::new(0, ghost));
        let edge_index = dangling.edges.len() - 1;
        match dangling.validate().expect_err("dangling edge") {
            TopologyError::DanglingEdge { edge, to, .. } => {
                assert_eq!((edge, to), (edge_index, ghost));
            }
            other => panic!("expected DanglingEdge, got {other}"),
        }
        let sim_err = runner
            .run_ir(&acc, &dangling)
            .expect_err("simulator rejects dangling edge");
        assert!(matches!(sim_err, SimError::BadTopology { .. }), "{sim_err}");
        assert!(
            sim_err.to_string().contains(&format!("edge {edge_index}")),
            "error names the edge: {sim_err}"
        );

        // Cycle: close a loop over an existing edge; the diagnosis names a
        // node on the cycle.
        let mut cyclic = ir.clone();
        let back = cyclic.edges[rng.gen_range(0..cyclic.edges.len())];
        cyclic.edges.push(IrEdge::new(back.to, back.from));
        match cyclic.validate().expect_err("cycle") {
            TopologyError::Cycle { node, name } => {
                assert_eq!(node, back.from, "smallest stuck node starts the loop");
                assert_eq!(name, format!("n{}", back.from));
            }
            other => panic!("expected Cycle, got {other}"),
        }
    }
}
