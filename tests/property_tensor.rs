//! Property-based tests of the tensor kernels: algebraic identities
//! (linearity, distributivity), pooling invariants, and Winograd/direct
//! convolution equivalence over randomized shapes and values.

use cscnn::tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, matmul, matmul_at, matmul_bt, max_pool2d,
    winograd_conv2d, ConvSpec, PoolSpec, Tensor,
};
use proptest::prelude::*;

fn tensor_strategy(dims: &'static [usize]) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, dims.iter().product::<usize>())
        .prop_map(move |v| Tensor::from_vec(v, dims))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Convolution is linear in the input: conv(a + b) == conv(a) + conv(b)
    /// with a zero bias.
    #[test]
    fn conv_is_linear_in_input(
        a in tensor_strategy(&[1, 2, 6, 6]),
        b in tensor_strategy(&[1, 2, 6, 6]),
        w in tensor_strategy(&[3, 2, 3, 3]),
    ) {
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let bias = Tensor::zeros(&[3]);
        let sum_in = a.zip(&b, |x, y| x + y);
        let lhs = conv2d(&sum_in, &w, &bias, &spec);
        let mut rhs = conv2d(&a, &w, &bias, &spec);
        rhs.axpy(1.0, &conv2d(&b, &w, &bias, &spec));
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    /// Convolution is linear in the weights too.
    #[test]
    fn conv_is_linear_in_weights(
        x in tensor_strategy(&[1, 2, 6, 6]),
        w1 in tensor_strategy(&[3, 2, 3, 3]),
        w2 in tensor_strategy(&[3, 2, 3, 3]),
    ) {
        let spec = ConvSpec::new(3, 3);
        let bias = Tensor::zeros(&[3]);
        let w_sum = w1.zip(&w2, |a, b| a + b);
        let lhs = conv2d(&x, &w_sum, &bias, &spec);
        let mut rhs = conv2d(&x, &w1, &bias, &spec);
        rhs.axpy(1.0, &conv2d(&x, &w2, &bias, &spec));
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    /// Winograd F(2x2,3x3) equals direct convolution on random data.
    #[test]
    fn winograd_equals_direct(
        x in tensor_strategy(&[1, 3, 8, 8]),
        w in tensor_strategy(&[2, 3, 3, 3]),
        padded in proptest::bool::ANY,
    ) {
        let padding = usize::from(padded);
        let bias = Tensor::zeros(&[2]);
        let (wino, mults) = winograd_conv2d(&x, &w, &bias, padding);
        let direct = conv2d(&x, &w, &bias, &ConvSpec::new(3, 3).with_padding(padding));
        prop_assert_eq!(wino.shape(), direct.shape());
        for (a, b) in wino.as_slice().iter().zip(direct.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
        // Exactly 4 multiplications per output per input channel.
        prop_assert_eq!(mults, (wino.len() * 3 * 4) as u64);
    }

    /// Matmul distributes over addition, and the transposed variants agree
    /// with explicit transposes.
    #[test]
    fn matmul_identities(
        a in tensor_strategy(&[4, 5]),
        b in tensor_strategy(&[5, 3]),
        c in tensor_strategy(&[5, 3]),
    ) {
        let b_plus_c = b.zip(&c, |x, y| x + y);
        let lhs = matmul(&a, &b_plus_c);
        let mut rhs = matmul(&a, &b);
        rhs.axpy(1.0, &matmul(&a, &c));
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
        let at = matmul_at(&a, &a); // aᵀ·a : symmetric PSD
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((at.at(&[i, j]) - at.at(&[j, i])).abs() < 1e-3);
            }
            prop_assert!(at.at(&[i, i]) >= -1e-4, "diagonal of aᵀa is non-negative");
        }
        let bt = matmul_bt(&a, &Tensor::eye(5));
        for (l, r) in bt.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((l - r).abs() < 1e-5, "a·Iᵀ == a");
        }
    }

    /// Max pooling dominates average pooling pointwise, and both lie within
    /// the input's range.
    #[test]
    fn pooling_order_and_range(x in tensor_strategy(&[1, 2, 8, 8])) {
        let spec = PoolSpec::new(2);
        let (mx, _) = max_pool2d(&x, &spec);
        let av = avg_pool2d(&x, &spec);
        let (lo, hi) = x
            .as_slice()
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        for (m, a) in mx.as_slice().iter().zip(av.as_slice()) {
            prop_assert!(m >= a, "max >= avg");
            prop_assert!(*m <= hi + 1e-6 && *a >= lo - 1e-6);
        }
    }

    /// Average pooling backward conserves gradient mass.
    #[test]
    fn avg_pool_backward_conserves_mass(g in tensor_strategy(&[1, 2, 4, 4])) {
        let spec = PoolSpec::new(2);
        let gi = avg_pool2d_backward(&g, &[1, 2, 8, 8], &spec);
        let before: f32 = g.sum();
        let after: f32 = gi.sum();
        prop_assert!((before - after).abs() < 1e-3);
    }

    /// Quantize→dequantize error is bounded by half an LSB for in-range
    /// values, and quantization is monotone.
    #[test]
    fn quantization_bounds_and_monotonicity(
        vals in prop::collection::vec(-100.0f32..100.0, 1..50),
        frac in 4u8..=8,
    ) {
        use cscnn::nn::quant::QFormat;
        let fmt = QFormat::new(frac);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut prev_q = i16::MIN;
        for &v in &sorted {
            let q = fmt.quantize(v);
            prop_assert!(q >= prev_q, "quantization must be monotone");
            prev_q = q;
            if v.abs() < fmt.max_value() {
                let back = fmt.dequantize(q);
                prop_assert!((v - back).abs() <= 0.5 * fmt.resolution() + 1e-6);
            }
        }
    }
}
