//! Property-style tests of the tensor kernels: algebraic identities
//! (linearity, distributivity), pooling invariants, and Winograd/direct
//! convolution equivalence over seeded randomized values.
//!
//! These were originally `proptest` properties; the workspace is std-only,
//! so each property now runs as a fixed loop over deterministic seeds with
//! values drawn from `cscnn-rng`. Coverage is comparable (32+ cases per
//! property) and failures are exactly reproducible from the seed.

use cscnn::tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, matmul, matmul_at, matmul_bt, max_pool2d,
    winograd_conv2d, ConvSpec, PoolSpec, Tensor,
};
use cscnn_rng::rngs::StdRng;
use cscnn_rng::{Rng, SeedableRng};

/// Tensor with elements uniform in [-2, 2), matching the old strategy.
fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    let v: Vec<f32> = (0..n)
        .map(|_| (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * 4.0 - 2.0)
        .collect();
    Tensor::from_vec(v, dims)
}

/// Convolution is linear in the input: conv(a + b) == conv(a) + conv(b)
/// with a zero bias.
#[test]
fn conv_is_linear_in_input() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7e_0000 + seed);
        let a = random_tensor(&mut rng, &[1, 2, 6, 6]);
        let b = random_tensor(&mut rng, &[1, 2, 6, 6]);
        let w = random_tensor(&mut rng, &[3, 2, 3, 3]);
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let bias = Tensor::zeros(&[3]);
        let sum_in = a.zip(&b, |x, y| x + y);
        let lhs = conv2d(&sum_in, &w, &bias, &spec);
        let mut rhs = conv2d(&a, &w, &bias, &spec);
        rhs.axpy(1.0, &conv2d(&b, &w, &bias, &spec));
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((l - r).abs() < 1e-3, "seed {seed}: {l} vs {r}");
        }
    }
}

/// Convolution is linear in the weights too.
#[test]
fn conv_is_linear_in_weights() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7e_1000 + seed);
        let x = random_tensor(&mut rng, &[1, 2, 6, 6]);
        let w1 = random_tensor(&mut rng, &[3, 2, 3, 3]);
        let w2 = random_tensor(&mut rng, &[3, 2, 3, 3]);
        let spec = ConvSpec::new(3, 3);
        let bias = Tensor::zeros(&[3]);
        let w_sum = w1.zip(&w2, |a, b| a + b);
        let lhs = conv2d(&x, &w_sum, &bias, &spec);
        let mut rhs = conv2d(&x, &w1, &bias, &spec);
        rhs.axpy(1.0, &conv2d(&x, &w2, &bias, &spec));
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((l - r).abs() < 1e-3, "seed {seed}: {l} vs {r}");
        }
    }
}

/// Winograd F(2x2,3x3) equals direct convolution on random data, padded
/// and unpadded.
#[test]
fn winograd_equals_direct() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7e_2000 + seed);
        let x = random_tensor(&mut rng, &[1, 3, 8, 8]);
        let w = random_tensor(&mut rng, &[2, 3, 3, 3]);
        let padding = (seed % 2) as usize;
        let bias = Tensor::zeros(&[2]);
        let (wino, mults) = winograd_conv2d(&x, &w, &bias, padding);
        let direct = conv2d(&x, &w, &bias, &ConvSpec::new(3, 3).with_padding(padding));
        assert_eq!(wino.shape(), direct.shape());
        for (a, b) in wino.as_slice().iter().zip(direct.as_slice()) {
            assert!((a - b).abs() < 1e-3, "seed {seed}: {a} vs {b}");
        }
        // Exactly 4 multiplications per output per input channel.
        assert_eq!(mults, (wino.len() * 3 * 4) as u64);
    }
}

/// Matmul distributes over addition, and the transposed variants agree
/// with explicit transposes.
#[test]
fn matmul_identities() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7e_3000 + seed);
        let a = random_tensor(&mut rng, &[4, 5]);
        let b = random_tensor(&mut rng, &[5, 3]);
        let c = random_tensor(&mut rng, &[5, 3]);
        let b_plus_c = b.zip(&c, |x, y| x + y);
        let lhs = matmul(&a, &b_plus_c);
        let mut rhs = matmul(&a, &b);
        rhs.axpy(1.0, &matmul(&a, &c));
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((l - r).abs() < 1e-3, "seed {seed}");
        }
        let at = matmul_at(&a, &a); // aᵀ·a : symmetric PSD
        for i in 0..5 {
            for j in 0..5 {
                assert!((at.at(&[i, j]) - at.at(&[j, i])).abs() < 1e-3);
            }
            assert!(at.at(&[i, i]) >= -1e-4, "diagonal of aᵀa is non-negative");
        }
        let bt = matmul_bt(&a, &Tensor::eye(5));
        for (l, r) in bt.as_slice().iter().zip(a.as_slice()) {
            assert!((l - r).abs() < 1e-5, "a·Iᵀ == a");
        }
    }
}

/// Max pooling dominates average pooling pointwise, and both lie within
/// the input's range.
#[test]
fn pooling_order_and_range() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7e_4000 + seed);
        let x = random_tensor(&mut rng, &[1, 2, 8, 8]);
        let spec = PoolSpec::new(2);
        let (mx, _) = max_pool2d(&x, &spec);
        let av = avg_pool2d(&x, &spec);
        let (lo, hi) = x
            .as_slice()
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        for (m, a) in mx.as_slice().iter().zip(av.as_slice()) {
            assert!(m >= a, "max >= avg");
            assert!(*m <= hi + 1e-6 && *a >= lo - 1e-6);
        }
    }
}

/// Average pooling backward conserves gradient mass.
#[test]
fn avg_pool_backward_conserves_mass() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7e_5000 + seed);
        let g = random_tensor(&mut rng, &[1, 2, 4, 4]);
        let spec = PoolSpec::new(2);
        let gi = avg_pool2d_backward(&g, &[1, 2, 8, 8], &spec);
        let before: f32 = g.sum();
        let after: f32 = gi.sum();
        assert!((before - after).abs() < 1e-3, "seed {seed}");
    }
}

/// Quantize→dequantize error is bounded by half an LSB for in-range
/// values, and quantization is monotone.
#[test]
fn quantization_bounds_and_monotonicity() {
    use cscnn::nn::quant::QFormat;
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7e_6000 + seed);
        let frac = 4 + (rng.next_u64() % 5) as u8; // 4..=8
        let n = 1 + (rng.next_u64() % 50) as usize;
        let mut vals: Vec<f32> = (0..n)
            .map(|_| (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * 200.0 - 100.0)
            .collect();
        let fmt = QFormat::new(frac);
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut prev_q = i16::MIN;
        for &v in &vals {
            let q = fmt.quantize(v);
            assert!(q >= prev_q, "quantization must be monotone");
            prev_q = q;
            if v.abs() < fmt.max_value() {
                let back = fmt.dequantize(q);
                assert!((v - back).abs() <= 0.5 * fmt.resolution() + 1e-6);
            }
        }
    }
}
