//! Integration coverage of the extension features: the CSCNN+EIE hybrid,
//! fixed-point quantization of a trained CSCNN model, report export, and
//! the filter-shape constraints — exercised together as a user would.

use cscnn::models::catalog;
use cscnn::nn::constraints::{apply_upper_triangular, FilterScheme};
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::models;
use cscnn::nn::quant::{quantize_network, QFormat};
use cscnn::nn::trainer::{evaluate, TrainConfig, Trainer};
use cscnn::nn::{centrosymmetric, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool, Network, Relu};
use cscnn::sim::export;
use cscnn::sim::hybrid::CscnnEie;
use cscnn::sim::{baselines, Accelerator, CartesianAccelerator, Runner};
use cscnn::tensor::{ConvSpec, PoolSpec};
use cscnn_rng::rngs::StdRng;
use cscnn_rng::SeedableRng;

#[test]
fn quantized_centrosymmetric_network_keeps_structure_and_accuracy() {
    // Train → centrosymmetrize → retrain → quantize to 16-bit fixed point.
    // The quantized weights must still satisfy Eq. 2 exactly (dual weights
    // quantize identically because they are identical) and accuracy must
    // survive.
    let data = SyntheticImages::generate(1, 8, 8, 3, 50, 0.12, 41);
    let (train, test) = data.split(0.2);
    let mut net = models::tiny_cnn(1, 8, 8, 3, 41);
    let trainer = Trainer::new(TrainConfig {
        epochs: 5,
        batch_size: 16,
        lr: 0.05,
        ..Default::default()
    });
    let _ = trainer.fit(&mut net, &train, &test);
    centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
    let retrained = trainer.fit(&mut net, &train, &test);
    let worst = quantize_network(&mut net);
    assert!(worst < 1e-2, "worst quantization error {worst}");
    assert!(
        centrosymmetric::check_invariant(&mut net, 0.0),
        "Eq. 2 must hold exactly after quantization"
    );
    let fixed_acc = evaluate(&mut net, &test, 16);
    assert!(
        (retrained.final_test_accuracy - fixed_acc).abs() < 0.1,
        "float {} vs fixed {}",
        retrained.final_test_accuracy,
        fixed_acc
    );
}

#[test]
fn hybrid_joins_the_lineup_without_breaking_orderings() {
    let runner = Runner::new(51);
    let model = catalog::alexnet();
    let dcnn = runner.run_model(&baselines::dcnn(), &model);
    let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
    let hybrid = runner.run_model(&CscnnEie::new(), &model);
    assert!(hybrid.speedup_over(&dcnn) >= cscnn.speedup_over(&dcnn) * 0.999);
    assert!(hybrid.total_cycles() <= cscnn.total_cycles());
    assert_eq!(hybrid.layers.len(), model.layers.len());
    assert_eq!(hybrid.accelerator, "CSCNN+EIE");
}

#[test]
fn export_round_trips_a_full_suite_run() {
    let runner = Runner::new(52);
    let models = [catalog::lenet5(), catalog::convnet()];
    let accs: Vec<Box<dyn Accelerator>> = vec![
        Box::new(baselines::dcnn()),
        Box::new(CartesianAccelerator::cscnn()),
        Box::new(CscnnEie::new()),
    ];
    let mut runs = Vec::new();
    for m in &models {
        for a in &accs {
            runs.push(runner.run_model(a.as_ref(), m));
        }
    }
    let json = export::to_json(&runs).expect("serializable");
    let parsed: cscnn_json::Value = cscnn_json::from_str(&json).expect("valid");
    assert_eq!(parsed.as_array().expect("array").len(), 6);
    let csv = export::to_csv(&runs);
    let expected_rows: usize = runs.iter().map(|r| r.layers.len()).sum();
    assert_eq!(csv.lines().count(), expected_rows + 1);
}

#[test]
fn constrained_networks_train_through_batchnorm_stacks() {
    // A deeper stack mixing BatchNorm with constrained convs must train
    // and keep its structural zeros.
    let mut rng = StdRng::seed_from_u64(53);
    let mut net = Network::new();
    net.push(Conv2d::new(
        &mut rng,
        1,
        8,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(BatchNorm2d::new(8));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2)));
    net.push(Conv2d::new(
        &mut rng,
        8,
        16,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(BatchNorm2d::new(16));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2)));
    net.push(Flatten::new());
    net.push(Linear::new(&mut rng, 16 * 4 * 4, 3));
    for conv in net.conv_layers_mut() {
        apply_upper_triangular(conv);
    }
    let data = SyntheticImages::generate(1, 16, 16, 3, 40, 0.12, 53);
    let (train, test) = data.split(0.25);
    let report = Trainer::new(TrainConfig {
        epochs: 5,
        batch_size: 16,
        lr: 0.03,
        ..Default::default()
    })
    .fit(&mut net, &train, &test);
    assert!(
        report.final_test_accuracy > 0.5,
        "acc {}",
        report.final_test_accuracy
    );
    for conv in net.conv_layers_mut() {
        for slice in conv.weight().value.as_slice().chunks(9) {
            assert_eq!(slice[3], 0.0, "triangular zeros must survive training");
            assert_eq!(slice[6], 0.0);
            assert_eq!(slice[7], 0.0);
        }
    }
}

#[test]
fn scheme_parameter_accounting_is_internally_consistent() {
    // FilterScheme's parameter math must agree with the mask-based
    // implementations' surviving-weight counts.
    let mut rng = StdRng::seed_from_u64(54);
    let mut conv = Conv2d::new(&mut rng, 4, 4, ConvSpec::new(3, 3).with_padding(1));
    let free = apply_upper_triangular(&mut conv);
    assert_eq!(free, FilterScheme::UpperTriangular.params_per_slice(3, 3));
    let mask = conv.weight().mask.as_ref().expect("mask");
    let kept_per_slice = mask.as_slice()[..9].iter().filter(|&&m| m == 1.0).count();
    assert_eq!(kept_per_slice, free);
}

#[test]
fn quantization_format_fit_handles_trained_weight_ranges() {
    // Trained weights live well within ±1; the fitted format should use
    // most of its fractional bits and round-trip with tiny error.
    let data = SyntheticImages::generate(1, 8, 8, 2, 30, 0.1, 55);
    let (train, test) = data.split(0.25);
    let mut net = models::tiny_cnn(1, 8, 8, 2, 55);
    let _ = Trainer::new(TrainConfig {
        epochs: 3,
        ..Default::default()
    })
    .fit(&mut net, &train, &test);
    for p in net.params() {
        let fmt = QFormat::fit(p.value.as_slice());
        assert!(fmt.frac_bits >= 8, "frac_bits {}", fmt.frac_bits);
        let max = p
            .value
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(fmt.max_value() >= max);
    }
}
