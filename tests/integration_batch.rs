//! Batched intake integration: `BatchRunner` must be an exact,
//! cache-deduplicated equivalent of sequential `Runner::run_ir`, and the
//! on-disk IR artifact schema must round-trip every catalog model
//! losslessly (see docs/batching.md).

use cscnn::ir::{ArtifactError, ModelIr, SparsityAnnotation};
use cscnn::json::ToJson;
use cscnn::models::{catalog, lower, ModelCompression, ModelDesc};
use cscnn::sim::{Accelerator, BatchRunner, CartesianAccelerator, Runner};

fn all_catalog_models() -> Vec<ModelDesc> {
    vec![
        catalog::lenet5(),
        catalog::convnet(),
        catalog::alexnet(),
        catalog::vgg16(),
        catalog::vgg16_cifar(),
        catalog::resnet18(),
        catalog::resnet50(),
        catalog::resnet152(),
        catalog::resnext101(),
        catalog::wide_resnet28_10(),
        catalog::squeezenet(),
        catalog::googlenet(),
        catalog::mobilenet_v1(),
        catalog::shufflenet_v2(),
        catalog::efficientnet_b7(),
    ]
}

fn calibrated_ir(model: &ModelDesc, acc: &dyn Accelerator) -> ModelIr {
    let mc = ModelCompression::new(model.clone(), acc.scheme());
    let mut ir = lower::to_ir(model);
    for (i, node) in ir.weight_nodes_mut().enumerate() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: mc.profile.weight_density[i],
            activation_density: mc.profile.activation_density[i],
        });
    }
    ir
}

/// Bit-exact comparison of two run results via their canonical JSON form
/// (`RunStats` intentionally has no `PartialEq`; JSON covers every field,
/// and float formatting is deterministic).
fn stats_json<T: ToJson>(stats: &T) -> String {
    cscnn::json::to_string(stats).expect("stats serialize")
}

#[test]
fn batch_of_copies_is_bit_identical_to_sequential_run_ir() {
    let acc = CartesianAccelerator::cscnn();
    let runner = Runner::new(42);
    let ir = calibrated_ir(&catalog::lenet5(), &acc);

    const COPIES: usize = 16;
    let requests = vec![ir.clone(); COPIES];
    let stats = BatchRunner::new(runner.clone())
        .with_workers(4)
        .run_batch(&acc, &requests)
        .expect("annotated batch");

    // Workloads synthesized exactly once for the whole batch.
    assert_eq!(stats.cache_misses, 1, "one unique structure");
    assert_eq!(stats.cache_hits, COPIES - 1);
    assert_eq!(stats.unique_structures(), 1);

    let sequential = runner.run_ir(&acc, &ir).expect("annotated IR");
    let expected = stats_json(&sequential);
    for (i, run) in stats.runs.iter().enumerate() {
        assert_eq!(
            stats_json(run),
            expected,
            "request {i} must be bit-identical to sequential run_ir"
        );
    }
}

#[test]
fn mixed_batch_matches_sequential_per_request_and_dedups_per_structure() {
    let acc = CartesianAccelerator::cscnn();
    let runner = Runner::new(7);
    let irs: Vec<ModelIr> = [catalog::lenet5(), catalog::convnet(), catalog::alexnet()]
        .iter()
        .map(|m| calibrated_ir(m, &acc))
        .collect();
    let requests: Vec<ModelIr> = (0..9).map(|i| irs[i % irs.len()].clone()).collect();

    let stats = BatchRunner::new(runner.clone())
        .with_workers(3)
        .run_batch(&acc, &requests)
        .expect("annotated batch");
    assert_eq!(stats.cache_misses, 3);
    assert_eq!(stats.cache_hits, 6);
    for (i, (run, request)) in stats.runs.iter().zip(&requests).enumerate() {
        let sequential = runner.run_ir(&acc, request).expect("annotated IR");
        assert_eq!(stats_json(run), stats_json(&sequential), "request {i}");
    }
}

#[test]
fn run_batch_annotated_equals_pre_annotated_requests() {
    let acc = CartesianAccelerator::cscnn();
    let base = lower::to_ir(&catalog::convnet());
    let n = base.num_weight_nodes();
    let vectors: Vec<Vec<SparsityAnnotation>> = (0..4)
        .map(|r| {
            (0..n)
                .map(|i| SparsityAnnotation {
                    weight_density: 0.25 + 0.1 * (r as f64) + 0.01 * (i as f64),
                    activation_density: 0.8,
                })
                .collect()
        })
        .collect();

    let batch = BatchRunner::new(Runner::new(11)).with_workers(2);
    let by_vector = batch
        .run_batch_annotated(&acc, &base, &vectors)
        .expect("matching vectors");

    let pre_annotated: Vec<ModelIr> = vectors
        .iter()
        .map(|anns| {
            let mut ir = base.clone();
            for (node, ann) in ir.weight_nodes_mut().zip(anns) {
                node.set_sparsity(*ann);
            }
            ir
        })
        .collect();
    let by_request = batch
        .run_batch(&acc, &pre_annotated)
        .expect("annotated batch");

    assert_eq!(by_vector.requests(), by_request.requests());
    for (a, b) in by_vector.runs.iter().zip(&by_request.runs) {
        assert_eq!(stats_json(a), stats_json(b));
    }
}

#[test]
fn every_catalog_model_round_trips_through_json_losslessly() {
    let acc = CartesianAccelerator::cscnn();
    for model in all_catalog_models() {
        let ir = calibrated_ir(&model, &acc);
        for text in [ir.to_json_string(), ir.to_json_pretty()] {
            let back = ModelIr::from_json_str(&text).unwrap_or_else(|e| {
                panic!("{} must parse back: {e}", model.name);
            });
            assert_eq!(back, ir, "{} must round-trip losslessly", model.name);
            assert_eq!(
                back.annotated_hash(),
                ir.annotated_hash(),
                "{} hash must survive the trip",
                model.name
            );
        }
    }
}

#[test]
fn parsed_artifacts_simulate_identically_to_their_sources() {
    let acc = CartesianAccelerator::cscnn();
    let runner = Runner::new(3);
    let ir = calibrated_ir(&catalog::alexnet(), &acc);
    let reloaded = ModelIr::from_json_str(&ir.to_json_string()).expect("artifact parses");
    let direct = runner.run_ir(&acc, &ir).expect("annotated IR");
    let via_disk = runner.run_ir(&acc, &reloaded).expect("reloaded IR");
    assert_eq!(stats_json(&direct), stats_json(&via_disk));
}

#[test]
fn artifact_errors_name_the_offending_node_and_field() {
    // Density out of range on a named layer.
    let mut ir = calibrated_ir(&catalog::lenet5(), &CartesianAccelerator::cscnn());
    for node in ir.weight_nodes_mut() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: 1.5,
            activation_density: 0.5,
        });
        break;
    }
    let err = ModelIr::from_json_str(&ir.to_json_string()).expect_err("density over 1");
    match err {
        ArtifactError::Node {
            index,
            layer,
            field,
            ..
        } => {
            assert_eq!(index, 0);
            assert_eq!(field, "sparsity.weight_density");
            assert!(layer.is_some(), "node errors carry the layer name");
        }
        other => panic!("expected a node error, got {other}"),
    }

    // Document-level schema mismatch.
    let err = ModelIr::from_json_str(r#"{"format":"not-cscnn","version":1,"name":"x","nodes":[]}"#)
        .expect_err("wrong format tag");
    assert!(matches!(
        err,
        ArtifactError::Document {
            field: "format",
            ..
        }
    ));
}
