//! Failure-injection and degenerate-input coverage: extremes of density,
//! shape, and configuration that a robust simulator and training stack must
//! either handle gracefully or reject loudly.

use cscnn::models::LayerDesc;
use cscnn::nn::pruning::magnitude_threshold;
use cscnn::sim::dram::DramConfig;
use cscnn::sim::energy::EnergyTable;
use cscnn::sim::workload::LayerWorkload;
use cscnn::sim::{baselines, Accelerator, CartesianAccelerator, LayerContext};
use cscnn::tensor::Tensor;

fn simulate(acc: &dyn Accelerator, layer: &LayerDesc, wd: f64, ad: f64) -> cscnn::sim::LayerStats {
    let wl = LayerWorkload::synthesize(layer, wd, ad, acc.scheme().uses_centrosymmetric(), 1);
    let cfg = acc.config();
    let dram = DramConfig::default();
    let energy = EnergyTable::default();
    let ctx = LayerContext {
        cfg: &cfg,
        dram: &dram,
        energy: &energy,
        workload: &wl,
        input_on_chip: false,
        output_fits_on_chip: false,
    };
    acc.simulate_layer(&ctx)
}

#[test]
fn fully_pruned_layer_costs_only_overheads() {
    // Weight density 0: a sparse accelerator should do (almost) nothing.
    let layer = LayerDesc::conv("z", 16, 16, 3, 3, 14, 14, 1, 1);
    let stats = simulate(&CartesianAccelerator::cscnn(), &layer, 0.0, 0.5);
    assert_eq!(stats.effective_mults, 0);
    // Drain/output handling still costs some cycles but no products.
    assert!(stats.compute_cycles < 10_000);
}

#[test]
fn dead_activations_cost_only_overheads() {
    let layer = LayerDesc::conv("d", 16, 16, 3, 3, 14, 14, 1, 1);
    let stats = simulate(&CartesianAccelerator::scnn(), &layer, 0.5, 0.0);
    assert_eq!(stats.effective_mults, 0);
}

#[test]
fn fully_dense_extremes_are_finite_and_consistent() {
    let layer = LayerDesc::conv("f", 8, 8, 3, 3, 16, 16, 1, 1);
    for acc in baselines::evaluation_accelerators() {
        let stats = simulate(acc.as_ref(), &layer, 1.0, 1.0);
        assert!(stats.compute_cycles > 0, "{}", acc.name());
        assert!(stats.time_s.is_finite() && stats.time_s > 0.0);
        assert!(stats.energy.on_chip_pj().is_finite());
    }
}

#[test]
fn single_pixel_and_single_channel_layers_simulate() {
    // Degenerate geometries: 1x1 spatial, K=1, C=1.
    let cases = [
        LayerDesc::conv("px", 64, 64, 1, 1, 1, 1, 1, 0),
        LayerDesc::conv("k1", 16, 1, 3, 3, 8, 8, 1, 1),
        LayerDesc::conv("c1", 1, 16, 3, 3, 8, 8, 1, 1),
    ];
    for layer in cases {
        let stats = simulate(&CartesianAccelerator::cscnn(), &layer, 0.5, 0.5);
        assert!(stats.compute_cycles > 0, "{}", layer.name);
        assert!(stats.time_s.is_finite());
    }
}

#[test]
fn plane_smaller_than_pe_grid_still_covers_all_work() {
    // A 3-row plane split across a 2x2 array leaves some PEs starved but
    // the work must be conserved and the simulation finite.
    let layer = LayerDesc::conv("tiny", 8, 8, 3, 3, 3, 3, 1, 1);
    for acc in [CartesianAccelerator::scnn(), CartesianAccelerator::cscnn()] {
        let stats = simulate(&acc, &layer, 1.0, 1.0);
        assert!(stats.effective_mults > 0, "{}", acc.name());
        assert!(stats.compute_cycles > 0);
    }
}

#[test]
fn tiny_global_buffer_forces_restreaming_not_divergence() {
    // A pathological 1 KB GLB: traffic explodes but stays finite and the
    // simulation completes.
    let layer = LayerDesc::conv("big", 64, 64, 3, 3, 56, 56, 1, 1);
    let wl = LayerWorkload::synthesize(&layer, 0.5, 0.8, false, 2);
    let acc = CartesianAccelerator::scnn();
    let mut cfg = acc.config();
    cfg.glb_bytes = 1024;
    cfg.wb_bytes = 256;
    let dram = DramConfig::default();
    let energy = EnergyTable::default();
    let ctx = LayerContext {
        cfg: &cfg,
        dram: &dram,
        energy: &energy,
        workload: &wl,
        input_on_chip: false,
        output_fits_on_chip: false,
    };
    let stats = acc.simulate_layer(&ctx);
    assert!(stats.dram_time_s.is_finite() && stats.dram_time_s > 0.0);
    assert!(stats.counters.dram_bits > wl.weight_storage_bytes(16, 4) * 8);
}

#[test]
#[should_panic(expected = "NaN weight")]
fn pruning_rejects_nan_weights() {
    let _ = magnitude_threshold(&[1.0, f32::NAN, 2.0], 0.5);
}

#[test]
#[should_panic(expected = "weight density in [0,1]")]
fn workload_rejects_out_of_range_density() {
    let layer = LayerDesc::conv("bad", 1, 1, 3, 3, 8, 8, 1, 1);
    let _ = LayerWorkload::synthesize(&layer, 1.5, 0.5, false, 0);
}

#[test]
#[should_panic(expected = "padded input smaller than kernel")]
fn layer_desc_rejects_impossible_geometry() {
    let l = LayerDesc::conv("imp", 1, 1, 7, 7, 3, 3, 1, 0);
    let _ = l.output_dim();
}

#[test]
fn quantization_of_all_zero_tensor_is_stable() {
    use cscnn::nn::quant::{quantize_tensor, QFormat};
    let t = Tensor::zeros(&[16]);
    let fmt = QFormat::fit(t.as_slice());
    let (q, err) = quantize_tensor(&t, fmt);
    assert_eq!(q.as_slice(), t.as_slice());
    assert_eq!(err, 0.0);
}

#[test]
fn huffman_of_uniform_stream_costs_log2_bits() {
    use cscnn::nn::codebook::huffman_bits;
    // 4 equally likely symbols → exactly 2 bits each.
    let symbols: Vec<usize> = (0..1000).map(|i| i % 4).collect();
    assert_eq!(huffman_bits(&symbols), 2000);
}

#[test]
fn centro_projection_of_all_zero_slice_is_zero() {
    use cscnn::sparse::centro;
    let zeros = vec![0.0f32; 25];
    let p = centro::project_mean(&zeros, 5, 5);
    assert!(p.iter().all(|&x| x == 0.0));
    assert!(centro::is_centrosymmetric(&p, 5, 5, 0.0));
}
