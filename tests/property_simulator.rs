//! Property-based tests of simulator invariants: determinism, density
//! monotonicity, energy positivity, and model consistency across randomized
//! layer shapes.

use cscnn::models::LayerDesc;
use cscnn::sim::dram::DramConfig;
use cscnn::sim::energy::EnergyTable;
use cscnn::sim::pe::CartesianPe;
use cscnn::sim::workload::LayerWorkload;
use cscnn::sim::{baselines, Accelerator, CartesianAccelerator, LayerContext};
use proptest::prelude::*;

/// Strategy producing small but varied conv layer shapes.
fn layer_strategy() -> impl Strategy<Value = LayerDesc> {
    (
        1usize..=16,  // c
        1usize..=16,  // k
        1usize..=2,   // kernel selector (1 -> 1x1, 2 -> 3x3)
        6usize..=20,  // h=w
        1usize..=2,   // stride
    )
        .prop_map(|(c, k, ks, hw, stride)| {
            let kernel = if ks == 1 { 1 } else { 3 };
            let padding = if kernel == 3 { 1 } else { 0 };
            LayerDesc::conv("p", c, k, kernel, kernel, hw, hw, stride, padding)
        })
}

fn simulate(
    acc: &dyn Accelerator,
    layer: &LayerDesc,
    wd: f64,
    ad: f64,
    seed: u64,
) -> cscnn::sim::LayerStats {
    let wl = LayerWorkload::synthesize(layer, wd, ad, acc.scheme().uses_centrosymmetric(), seed);
    let cfg = acc.config();
    let dram = DramConfig::default();
    let energy = EnergyTable::default();
    let ctx = LayerContext {
        cfg: &cfg,
        dram: &dram,
        energy: &energy,
        workload: &wl,
        input_on_chip: true,
        output_fits_on_chip: true,
    };
    acc.simulate_layer(&ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed → identical results, across accelerators and shapes.
    #[test]
    fn simulation_is_deterministic(layer in layer_strategy(), seed in 0u64..100) {
        let acc = CartesianAccelerator::cscnn();
        let a = simulate(&acc, &layer, 0.5, 0.5, seed);
        let b = simulate(&acc, &layer, 0.5, 0.5, seed);
        prop_assert_eq!(a.compute_cycles, b.compute_cycles);
        prop_assert_eq!(a.effective_mults, b.effective_mults);
        prop_assert!((a.energy.on_chip_pj() - b.energy.on_chip_pj()).abs() < 1e-9);
    }

    /// More non-zeros can never make a sparse accelerator *faster* (beyond
    /// sampling noise): cycles are monotone in weight density.
    #[test]
    fn cycles_monotone_in_weight_density(layer in layer_strategy(), seed in 0u64..50) {
        let acc = CartesianAccelerator::scnn();
        let sparse = simulate(&acc, &layer, 0.2, 0.5, seed);
        let dense = simulate(&acc, &layer, 0.9, 0.5, seed);
        // Allow tiny-shape noise: dense must be at least ~sparse.
        prop_assert!(
            dense.compute_cycles as f64 >= sparse.compute_cycles as f64 * 0.95,
            "dense {} vs sparse {}",
            dense.compute_cycles,
            sparse.compute_cycles
        );
        prop_assert!(dense.effective_mults >= sparse.effective_mults);
    }

    /// Energy components are finite and non-negative; component view sums
    /// to the three-way split.
    #[test]
    fn energy_is_well_formed(layer in layer_strategy(), seed in 0u64..50) {
        for acc in baselines::evaluation_accelerators() {
            let stats = simulate(acc.as_ref(), &layer, 0.5, 0.6, seed);
            let e = &stats.energy;
            for v in [e.compute_pj, e.memory_pj, e.others_pj, e.dram_pj] {
                prop_assert!(v.is_finite() && v >= 0.0, "{}", acc.name());
            }
            let by_component = e.mul_array_pj + e.ib_ob_pj + e.wb_pj + e.ab_pj
                + e.crossbar_pj + e.ccu_pj + e.ppu_pj;
            prop_assert!(
                (by_component - e.on_chip_pj()).abs() <= 1e-6 * e.on_chip_pj().max(1.0),
                "{}: component sum mismatch",
                acc.name()
            );
        }
    }

    /// The dense accelerator's cycle count is insensitive to synthesized
    /// sparsity (it runs the dense model).
    #[test]
    fn dcnn_is_sparsity_blind(layer in layer_strategy(), seed in 0u64..50) {
        let acc = baselines::dcnn();
        let a = simulate(&acc, &layer, 0.1, 0.2, seed);
        let b = simulate(&acc, &layer, 0.9, 0.9, seed);
        prop_assert_eq!(a.compute_cycles, b.compute_cycles);
    }

    /// The PE fast model's multiplier-array occupancy never exceeds 100 %:
    /// cycles ≥ products / (Px·Py).
    #[test]
    fn pe_cycles_bound_products(
        w in 1u64..200,
        a in 1u64..200,
        dual in proptest::bool::ANY,
    ) {
        let pe = CartesianPe {
            px: 4,
            py: 4,
            stall_factor: 1.0,
            dual,
            self_dual_frac: 0.2,
        };
        let r = pe.run_conv(&[(w, a)], 0);
        let products = w * a;
        prop_assert_eq!(r.counters.mults, products);
        prop_assert!(r.cycles as f64 >= products as f64 / 16.0);
        // And fragmentation can cost at most (Px-1)(Py-1)-ish slack plus
        // setup: rounds ≤ (w/4+1)(a/4+1).
        let upper = (w.div_ceil(4)) * (a.div_ceil(4));
        prop_assert!(r.cycles <= upper + 2 + 1);
    }

    /// CSCNN on an eligible layer never issues more multiplications than
    /// SCNN at the same effective model (unique weights ≤ full weights).
    #[test]
    fn reuse_reduces_mults_on_eligible_layers(seed in 0u64..100) {
        let layer = LayerDesc::conv("e", 8, 8, 3, 3, 12, 12, 1, 1);
        let scnn = simulate(&CartesianAccelerator::scnn(), &layer, 0.5, 0.5, seed);
        let cscnn = simulate(&CartesianAccelerator::cscnn(), &layer, 0.5, 0.5, seed);
        prop_assert!(cscnn.effective_mults < scnn.effective_mults);
    }
}
