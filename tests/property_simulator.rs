//! Property-style tests of simulator invariants: determinism, density
//! monotonicity, energy positivity, and model consistency across seeded
//! randomized layer shapes.
//!
//! Originally `proptest` properties; the workspace is std-only, so each
//! property now loops over deterministic seeds with shapes derived from the
//! seed — same invariants, reproducible from the loop index.

use cscnn::models::LayerDesc;
use cscnn::sim::dram::DramConfig;
use cscnn::sim::energy::EnergyTable;
use cscnn::sim::pe::CartesianPe;
use cscnn::sim::workload::LayerWorkload;
use cscnn::sim::{baselines, Accelerator, CartesianAccelerator, LayerContext};

/// Small deterministic generator for layer shapes.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x1234_5678))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let z = self.0 ^ (self.0 >> 31);
        z.wrapping_mul(0x94d0_49bb_1331_11eb)
    }
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Produces small but varied conv layer shapes (mirrors the old strategy:
/// c,k in 1..=16, 1x1 or 3x3 kernels, 6..=20 spatial, stride 1..=2).
fn random_layer(g: &mut Gen) -> LayerDesc {
    let c = g.range(1, 16) as usize;
    let k = g.range(1, 16) as usize;
    let kernel = if g.range(1, 2) == 1 { 1 } else { 3 };
    let hw = g.range(6, 20) as usize;
    let stride = g.range(1, 2) as usize;
    let padding = if kernel == 3 { 1 } else { 0 };
    LayerDesc::conv("p", c, k, kernel, kernel, hw, hw, stride, padding)
}

fn simulate(
    acc: &dyn Accelerator,
    layer: &LayerDesc,
    wd: f64,
    ad: f64,
    seed: u64,
) -> cscnn::sim::LayerStats {
    let wl = LayerWorkload::synthesize(layer, wd, ad, acc.scheme().uses_centrosymmetric(), seed);
    let cfg = acc.config();
    let dram = DramConfig::default();
    let energy = EnergyTable::default();
    let ctx = LayerContext {
        cfg: &cfg,
        dram: &dram,
        energy: &energy,
        workload: &wl,
        input_on_chip: true,
        output_fits_on_chip: true,
    };
    acc.simulate_layer(&ctx)
}

/// Same seed → identical results, across accelerators and shapes.
#[test]
fn simulation_is_deterministic() {
    for case in 0..48u64 {
        let mut g = Gen::new(case);
        let layer = random_layer(&mut g);
        let seed = g.range(0, 99);
        let acc = CartesianAccelerator::cscnn();
        let a = simulate(&acc, &layer, 0.5, 0.5, seed);
        let b = simulate(&acc, &layer, 0.5, 0.5, seed);
        assert_eq!(a.compute_cycles, b.compute_cycles, "case {case}");
        assert_eq!(a.effective_mults, b.effective_mults);
        assert!((a.energy.on_chip_pj() - b.energy.on_chip_pj()).abs() < 1e-9);
    }
}

/// More non-zeros can never make a sparse accelerator *faster* (beyond
/// sampling noise): cycles are monotone in weight density.
#[test]
fn cycles_monotone_in_weight_density() {
    for case in 0..48u64 {
        let mut g = Gen::new(case ^ 0x11);
        let layer = random_layer(&mut g);
        let seed = g.range(0, 49);
        let acc = CartesianAccelerator::scnn();
        let sparse = simulate(&acc, &layer, 0.2, 0.5, seed);
        let dense = simulate(&acc, &layer, 0.9, 0.5, seed);
        // Allow tiny-shape noise: dense must be at least ~sparse.
        assert!(
            dense.compute_cycles as f64 >= sparse.compute_cycles as f64 * 0.95,
            "case {case}: dense {} vs sparse {}",
            dense.compute_cycles,
            sparse.compute_cycles
        );
        assert!(dense.effective_mults >= sparse.effective_mults);
    }
}

/// Energy components are finite and non-negative; component view sums
/// to the three-way split.
#[test]
fn energy_is_well_formed() {
    for case in 0..24u64 {
        let mut g = Gen::new(case ^ 0x22);
        let layer = random_layer(&mut g);
        let seed = g.range(0, 49);
        for acc in baselines::evaluation_accelerators() {
            let stats = simulate(acc.as_ref(), &layer, 0.5, 0.6, seed);
            let e = &stats.energy;
            for v in [e.compute_pj, e.memory_pj, e.others_pj, e.dram_pj] {
                assert!(v.is_finite() && v >= 0.0, "case {case}: {}", acc.name());
            }
            let by_component = e.mul_array_pj
                + e.ib_ob_pj
                + e.wb_pj
                + e.ab_pj
                + e.crossbar_pj
                + e.ccu_pj
                + e.ppu_pj;
            assert!(
                (by_component - e.on_chip_pj()).abs() <= 1e-6 * e.on_chip_pj().max(1.0),
                "case {case}: {}: component sum mismatch",
                acc.name()
            );
        }
    }
}

/// The dense accelerator's cycle count is insensitive to synthesized
/// sparsity (it runs the dense model).
#[test]
fn dcnn_is_sparsity_blind() {
    for case in 0..48u64 {
        let mut g = Gen::new(case ^ 0x33);
        let layer = random_layer(&mut g);
        let seed = g.range(0, 49);
        let acc = baselines::dcnn();
        let a = simulate(&acc, &layer, 0.1, 0.2, seed);
        let b = simulate(&acc, &layer, 0.9, 0.9, seed);
        assert_eq!(a.compute_cycles, b.compute_cycles, "case {case}");
    }
}

/// The PE fast model's multiplier-array occupancy never exceeds 100 %:
/// cycles ≥ products / (Px·Py).
#[test]
fn pe_cycles_bound_products() {
    for case in 0..96u64 {
        let mut g = Gen::new(case ^ 0x44);
        let w = g.range(1, 199);
        let a = g.range(1, 199);
        let dual = g.range(0, 1) == 1;
        let pe = CartesianPe {
            px: 4,
            py: 4,
            stall_factor: 1.0,
            dual,
            self_dual_frac: 0.2,
        };
        let r = pe.run_conv(&[(w, a)], 0);
        let products = w * a;
        assert_eq!(r.counters.mults, products, "case {case}");
        assert!(r.cycles as f64 >= products as f64 / 16.0);
        // And fragmentation can cost at most (Px-1)(Py-1)-ish slack plus
        // setup: rounds ≤ (w/4+1)(a/4+1).
        let upper = (w.div_ceil(4)) * (a.div_ceil(4));
        assert!(r.cycles <= upper + 2 + 1, "case {case}");
    }
}

/// Batched intake is a pure cache over sequential simulation: whatever
/// annotations a request carries and however often its structure repeats
/// in the batch, `BatchRunner::run_batch` must return, per request, a
/// result bit-identical to `Runner::run_ir` — a workload-cache hit and a
/// miss must be indistinguishable from the outside. Annotations are drawn
/// from seeded `cscnn-rng` streams; worker counts vary per case.
#[test]
fn workload_cache_hits_never_change_run_stats() {
    use cscnn::ir::{ModelIr, SparsityAnnotation};
    use cscnn::models::{catalog, lower};
    use cscnn::sim::{BatchRunner, Runner};
    use cscnn_rng::rngs::StdRng;
    use cscnn_rng::{Rng, SeedableRng};

    let as_json = |stats: &cscnn::sim::RunStats| -> String {
        cscnn::json::to_string(stats).expect("stats serialize")
    };

    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(case ^ 0x55);
        let model = if rng.gen_bool(0.5) {
            catalog::lenet5()
        } else {
            catalog::convnet()
        };
        // A few unique annotation vectors over one structure...
        let uniques: Vec<ModelIr> = (0..rng.gen_range(1usize..=3))
            .map(|_| {
                let mut ir = lower::to_ir(&model);
                for node in ir.weight_nodes_mut() {
                    node.set_sparsity(SparsityAnnotation {
                        weight_density: rng.gen_range(0.1..=0.9f64),
                        activation_density: rng.gen_range(0.2..=1.0f64),
                    });
                }
                ir
            })
            .collect();
        // ...each duplicated a random number of times, so the batch mixes
        // cache misses (first sight) and hits (every repeat).
        let mut requests: Vec<ModelIr> = Vec::new();
        for ir in &uniques {
            let copies = rng.gen_range(1usize..=3);
            requests.extend((0..copies).map(|_| ir.clone()));
        }
        let unique_count = uniques.len();

        let runner = Runner::new(case);
        let workers = rng.gen_range(1usize..=4);
        let stats = BatchRunner::new(runner.clone())
            .with_workers(workers)
            .run_batch(&cscnn::sim::CartesianAccelerator::cscnn(), &requests)
            .expect("annotated batch");

        assert_eq!(stats.cache_misses, unique_count, "case {case}");
        assert_eq!(
            stats.cache_hits,
            requests.len() - unique_count,
            "case {case}"
        );
        for (i, (run, request)) in stats.runs.iter().zip(&requests).enumerate() {
            let sequential = runner
                .run_ir(&cscnn::sim::CartesianAccelerator::cscnn(), request)
                .expect("annotated IR");
            assert_eq!(
                as_json(run),
                as_json(&sequential),
                "case {case}, request {i} ({workers} workers)"
            );
        }
    }
}

/// CSCNN on an eligible layer never issues more multiplications than
/// SCNN at the same effective model (unique weights ≤ full weights).
#[test]
fn reuse_reduces_mults_on_eligible_layers() {
    for seed in 0..100u64 {
        let layer = LayerDesc::conv("e", 8, 8, 3, 3, 12, 12, 1, 1);
        let scnn = simulate(&CartesianAccelerator::scnn(), &layer, 0.5, 0.5, seed);
        let cscnn = simulate(&CartesianAccelerator::cscnn(), &layer, 0.5, 0.5, seed);
        assert!(
            cscnn.effective_mults < scnn.effective_mults,
            "seed {seed}: cscnn {} vs scnn {}",
            cscnn.effective_mults,
            scnn.effective_mults
        );
    }
}
