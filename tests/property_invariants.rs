//! Property-style tests of the core data-structure invariants over seeded
//! randomized shapes, densities and values.
//!
//! Originally `proptest` properties; the workspace is std-only, so each
//! property now loops over deterministic seeds (shapes and values derived
//! from the seed), which keeps the randomized coverage while making every
//! failure reproducible from the loop index alone.

use cscnn::sim::tiling::{balance_groups, naive_groups};
use cscnn::sparse::centro;
use cscnn::sparse::{RleVector, SparseSlice};
use cscnn::tensor::{conv2d, conv2d_backward, ConvSpec, Tensor};

/// Splitmix-style generator for test data (self-contained so the tests do
/// not depend on the simulator's RNG internals).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let z = self.0 ^ (self.0 >> 31);
        z.wrapping_mul(0x94d0_49bb_1331_11eb)
    }
    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo + 1) as u64) as usize
    }
    /// Roughly uniform in [-10, 10).
    fn value(&mut self) -> f32 {
        ((self.next() >> 33) as i64 % 2000 - 1000) as f32 / 100.0
    }
}

/// RLE encoding is lossless for any vector and any run-field width.
#[test]
fn rle_round_trips() {
    for seed in 0..64u64 {
        let mut g = Gen::new(seed);
        let len = g.range(0, 199);
        let max_run = g.range(1, 15) as u8;
        // ~75 % zeros, like the original weighted strategy.
        let values: Vec<f32> = (0..len)
            .map(|_| {
                if g.next() % 4 == 0 {
                    g.value() + 0.1
                } else {
                    0.0
                }
            })
            .collect();
        let rle = RleVector::encode(&values, max_run);
        assert_eq!(rle.decode(), values, "seed {seed}");
        let nnz = values.iter().filter(|v| **v != 0.0).count();
        assert_eq!(rle.nnz(), nnz);
        assert!(rle.stored_entries() >= nnz);
    }
}

/// The Eq. 5 projection always yields a centrosymmetric slice, is
/// idempotent, and preserves the total weight mass.
#[test]
fn projection_invariants() {
    for seed in 0..128u64 {
        let mut g = Gen::new(seed ^ 0xA5A5);
        let r = g.range(1, 7);
        let s = g.range(1, 7);
        let dense: Vec<f32> = (0..r * s).map(|_| g.value()).collect();
        let proj = centro::project_mean(&dense, r, s);
        assert!(centro::is_centrosymmetric(&proj, r, s, 1e-5), "seed {seed}");
        let twice = centro::project_mean(&proj, r, s);
        for (a, b) in proj.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-6, "projection must be idempotent");
        }
        let sum_before: f32 = dense.iter().sum();
        let sum_after: f32 = proj.iter().sum();
        assert!((sum_before - sum_after).abs() < 1e-3, "seed {seed}");
    }
}

/// Gradient tying produces a centrosymmetric gradient with the same
/// total mass (so tied SGD equals shared-weight SGD).
#[test]
fn gradient_tying_invariants() {
    for seed in 0..128u64 {
        let mut g = Gen::new(seed ^ 0x5A5A);
        let r = g.range(1, 5);
        let s = g.range(1, 5);
        let mut grad: Vec<f32> = (0..r * s).map(|_| g.value()).collect();
        let before: f32 = grad.iter().sum();
        centro::tie_gradients(&mut grad, r, s);
        assert!(centro::is_centrosymmetric(&grad, r, s, 1e-5), "seed {seed}");
        let after: f32 = grad.iter().sum();
        assert!((before - after).abs() < 1e-3, "seed {seed}");
    }
}

/// The unique-position enumeration covers every dual pair exactly once.
#[test]
fn unique_positions_partition_the_slice() {
    for r in 1..=8usize {
        for s in 1..=8usize {
            let positions = centro::unique_positions(r, s);
            assert_eq!(positions.len(), centro::unique_weight_count(r, s));
            let mut covered = vec![false; r * s];
            for &(u, v) in &positions {
                let (du, dv) = centro::dual(u, v, r, s);
                assert!(!covered[u * s + v], "position covered twice ({r}x{s})");
                covered[u * s + v] = true;
                if (du, dv) != (u, v) {
                    assert!(!covered[du * s + dv]);
                    covered[du * s + dv] = true;
                }
            }
            assert!(covered.into_iter().all(|c| c));
        }
    }
}

/// Sparse slices reconstruct exactly from coordinates.
#[test]
fn sparse_slice_round_trips() {
    for seed in 0..128u64 {
        let mut g = Gen::new(seed ^ 0xBEEF);
        let rows = g.range(1, 12);
        let cols = g.range(1, 12);
        let dense: Vec<f32> = (0..rows * cols)
            .map(|_| {
                if g.next() % 3 == 0 {
                    g.value() + 0.1
                } else {
                    0.0
                }
            })
            .collect();
        let slice = SparseSlice::from_dense(&dense, rows, cols);
        assert_eq!(slice.to_dense(), dense, "seed {seed}");
        assert_eq!(slice.nnz(), dense.iter().filter(|v| **v != 0.0).count());
    }
}

/// Greedy LPT balancing satisfies its classic guarantees: its makespan
/// is at least the trivial lower bound, within 4/3 of the optimum
/// (hence within 4/3 of round-robin too, since OPT ≤ any schedule),
/// and it partitions all items. (LPT is *not* pointwise better than
/// round-robin — 4/3 is tight — so we do not assert dominance.)
#[test]
fn balancing_respects_lpt_guarantees() {
    for seed in 0..64u64 {
        let mut g = Gen::new(seed ^ 0xCAFE);
        let n = g.range(1, 59);
        let groups = g.range(1, 8);
        let weights: Vec<u64> = (0..n).map(|_| g.next() % 1000).collect();
        let balanced = balance_groups(&weights, groups);
        let naive = naive_groups(weights.len(), groups);
        let load = |gs: &[Vec<usize>]| {
            gs.iter()
                .map(|grp| grp.iter().map(|&i| weights[i]).sum::<u64>())
                .max()
                .unwrap_or(0)
        };
        let total: u64 = weights.iter().sum();
        let lower_bound =
            (total.div_ceil(groups as u64)).max(weights.iter().copied().max().unwrap_or(0));
        assert!(load(&balanced) >= lower_bound, "seed {seed}");
        // LPT ≤ (4/3)·OPT and OPT ≤ round-robin's makespan.
        assert!(3 * load(&balanced) <= 4 * load(&naive) + 3, "seed {seed}");
        let mut all: Vec<usize> = balanced.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..weights.len()).collect::<Vec<_>>());
    }
}

/// Convolving with a centrosymmetrically projected filter equals
/// convolving with the expanded half-storage filter: the compressed
/// representation is semantically exact.
#[test]
fn centro_storage_preserves_convolution() {
    for seed in 0..100u64 {
        let mut g = Gen::new(seed ^ 0xF00D);
        let input = Tensor::from_fn(&[1, 2, 6, 6], |_| g.value() / 5.0);
        let raw = Tensor::from_fn(&[3, 2, 3, 3], |_| g.value() / 5.0);
        // Project every slice, then rebuild via CentroFilter.
        let mut projected = raw.as_slice().to_vec();
        for chunk in projected.chunks_mut(9) {
            let p = centro::project_mean(chunk, 3, 3);
            chunk.copy_from_slice(&p);
        }
        let rebuilt: Vec<f32> = projected
            .chunks(9)
            .flat_map(|chunk| {
                centro::CentroFilter::from_dense(chunk, 3, 3)
                    .expect("projected")
                    .expand()
            })
            .collect();
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let bias = Tensor::zeros(&[3]);
        let w1 = Tensor::from_vec(projected, &[3, 2, 3, 3]);
        let w2 = Tensor::from_vec(rebuilt, &[3, 2, 3, 3]);
        let y1 = conv2d(&input, &w1, &bias, &spec);
        let y2 = conv2d(&input, &w2, &bias, &spec);
        assert_eq!(y1.as_slice(), y2.as_slice(), "seed {seed}");
        // And the backward pass stays finite and consistent in shape.
        let gr = conv2d_backward(&input, &w1, &Tensor::full(y1.shape().dims(), 1.0), &spec);
        assert_eq!(gr.weight.shape().dims(), &[3, 2, 3, 3]);
        assert!(gr.input.as_slice().iter().all(|x| x.is_finite()));
    }
}
