//! Property-based tests of the core data-structure invariants, using
//! proptest over randomized shapes, densities and values.

use cscnn::sparse::centro;
use cscnn::sparse::{RleVector, SparseSlice};
use cscnn::sim::tiling::{balance_groups, naive_groups};
use cscnn::tensor::{conv2d, conv2d_backward, ConvSpec, Tensor};
use proptest::prelude::*;

proptest! {
    /// RLE encoding is lossless for any vector and any run-field width.
    #[test]
    fn rle_round_trips(
        values in prop::collection::vec(
            prop_oneof![3 => Just(0.0f32), 1 => (-100i32..100).prop_map(|x| x as f32 / 7.0 + 0.1)],
            0..200,
        ),
        max_run in 1u8..=15,
    ) {
        let rle = RleVector::encode(&values, max_run);
        prop_assert_eq!(rle.decode(), values.clone());
        let nnz = values.iter().filter(|v| **v != 0.0).count();
        prop_assert_eq!(rle.nnz(), nnz);
        prop_assert!(rle.stored_entries() >= nnz);
    }

    /// The Eq. 5 projection always yields a centrosymmetric slice, is
    /// idempotent, and preserves the total weight mass.
    #[test]
    fn projection_invariants(
        r in 1usize..=7,
        s in 1usize..=7,
        seed in 0u64..1000,
    ) {
        let mut state = seed;
        let dense: Vec<f32> = (0..r * s)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as i32 % 1000) as f32 / 100.0
            })
            .collect();
        let proj = centro::project_mean(&dense, r, s);
        prop_assert!(centro::is_centrosymmetric(&proj, r, s, 1e-5));
        let twice = centro::project_mean(&proj, r, s);
        for (a, b) in proj.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        let sum_before: f32 = dense.iter().sum();
        let sum_after: f32 = proj.iter().sum();
        prop_assert!((sum_before - sum_after).abs() < 1e-3);
    }

    /// Gradient tying produces a centrosymmetric gradient with the same
    /// total mass (so tied SGD equals shared-weight SGD).
    #[test]
    fn gradient_tying_invariants(r in 1usize..=5, s in 1usize..=5, seed in 0u64..500) {
        let mut state = seed.wrapping_add(42);
        let mut grad: Vec<f32> = (0..r * s)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((state >> 35) as i32 % 100) as f32 / 10.0
            })
            .collect();
        let before: f32 = grad.iter().sum();
        centro::tie_gradients(&mut grad, r, s);
        prop_assert!(centro::is_centrosymmetric(&grad, r, s, 1e-5));
        let after: f32 = grad.iter().sum();
        prop_assert!((before - after).abs() < 1e-3);
    }

    /// The unique-position enumeration covers every dual pair exactly once.
    #[test]
    fn unique_positions_partition_the_slice(r in 1usize..=8, s in 1usize..=8) {
        let positions = centro::unique_positions(r, s);
        prop_assert_eq!(positions.len(), centro::unique_weight_count(r, s));
        let mut covered = vec![false; r * s];
        for &(u, v) in &positions {
            let (du, dv) = centro::dual(u, v, r, s);
            prop_assert!(!covered[u * s + v], "position covered twice");
            covered[u * s + v] = true;
            if (du, dv) != (u, v) {
                prop_assert!(!covered[du * s + dv]);
                covered[du * s + dv] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c));
    }

    /// Sparse slices reconstruct exactly from coordinates.
    #[test]
    fn sparse_slice_round_trips(
        rows in 1usize..=12,
        cols in 1usize..=12,
        seed in 0u64..500,
    ) {
        let mut state = seed.wrapping_add(7);
        let dense: Vec<f32> = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (state >> 40) % 3 == 0 { (state >> 33) as f32 / 1e9 + 0.1 } else { 0.0 }
            })
            .collect();
        let slice = SparseSlice::from_dense(&dense, rows, cols);
        prop_assert_eq!(slice.to_dense(), dense.clone());
        prop_assert_eq!(slice.nnz(), dense.iter().filter(|v| **v != 0.0).count());
    }

    /// Greedy LPT balancing satisfies its classic guarantees: its makespan
    /// is at least the trivial lower bound, within 4/3 of the optimum
    /// (hence within 4/3 of round-robin too, since OPT ≤ any schedule),
    /// and it partitions all items. (LPT is *not* pointwise better than
    /// round-robin — 4/3 is tight — so we do not assert dominance.)
    #[test]
    fn balancing_respects_lpt_guarantees(
        weights in prop::collection::vec(0u64..1000, 1..60),
        groups in 1usize..=8,
    ) {
        let balanced = balance_groups(&weights, groups);
        let naive = naive_groups(weights.len(), groups);
        let load = |gs: &[Vec<usize>]| {
            gs.iter()
                .map(|g| g.iter().map(|&i| weights[i]).sum::<u64>())
                .max()
                .unwrap_or(0)
        };
        let total: u64 = weights.iter().sum();
        let lower_bound = (total.div_ceil(groups as u64)).max(weights.iter().copied().max().unwrap_or(0));
        prop_assert!(load(&balanced) >= lower_bound);
        // LPT ≤ (4/3)·OPT and OPT ≤ round-robin's makespan.
        prop_assert!(3 * load(&balanced) <= 4 * load(&naive) + 3);
        let mut all: Vec<usize> = balanced.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..weights.len()).collect::<Vec<_>>());
    }

    /// Convolving with a centrosymmetrically projected filter equals
    /// convolving with the expanded half-storage filter: the compressed
    /// representation is semantically exact.
    #[test]
    fn centro_storage_preserves_convolution(seed in 0u64..100) {
        let mut state = seed.wrapping_add(99);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as i32 % 200) as f32 / 100.0
        };
        let input = Tensor::from_fn(&[1, 2, 6, 6], |_| next());
        let raw = Tensor::from_fn(&[3, 2, 3, 3], |_| next());
        // Project every slice, then rebuild via CentroFilter.
        let mut projected = raw.as_slice().to_vec();
        for chunk in projected.chunks_mut(9) {
            let p = centro::project_mean(chunk, 3, 3);
            chunk.copy_from_slice(&p);
        }
        let rebuilt: Vec<f32> = projected
            .chunks(9)
            .flat_map(|chunk| {
                centro::CentroFilter::from_dense(chunk, 3, 3)
                    .expect("projected")
                    .expand()
            })
            .collect();
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let bias = Tensor::zeros(&[3]);
        let w1 = Tensor::from_vec(projected, &[3, 2, 3, 3]);
        let w2 = Tensor::from_vec(rebuilt, &[3, 2, 3, 3]);
        let y1 = conv2d(&input, &w1, &bias, &spec);
        let y2 = conv2d(&input, &w2, &bias, &spec);
        prop_assert_eq!(y1.as_slice(), y2.as_slice());
        // And the backward pass stays finite and consistent in shape.
        let g = conv2d_backward(&input, &w1, &Tensor::full(y1.shape().dims(), 1.0), &spec);
        prop_assert_eq!(g.weight.shape().dims(), &[3, 2, 3, 3]);
        prop_assert!(g.input.as_slice().iter().all(|x| x.is_finite()));
    }
}
