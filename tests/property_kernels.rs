//! Property suite for the blocked/threaded kernels' determinism contract:
//! `matmul*`/`conv2d*`/`ConvScratch` results must be **bit-identical** to
//! the frozen naive oracles in `cscnn::tensor::reference` at every thread
//! count, over randomized shapes, strides, paddings, groups and sparsity.
//!
//! Seeded via `CSCNN_PROP_SEED` (default 1), like the other property
//! suites; `ci.sh` runs this file under several seeds *and* several
//! `CSCNN_NUM_THREADS` settings. [`set_num_threads`] is a process-wide
//! knob, so tests in this binary race on it — which is itself part of the
//! property: because every thread count computes identical bits, the races
//! cannot change any expected value.

use cscnn::tensor::{
    conv2d, conv2d_backward, conv2d_grouped, conv2d_grouped_backward, matmul, matmul_at, matmul_bt,
    reference, reset_num_threads, set_num_threads, ConvScratch, ConvSpec, Tensor,
};
use cscnn_rng::rngs::StdRng;
use cscnn_rng::{Rng, SeedableRng};

/// Thread counts every property is checked under: single-threaded, the
/// smallest parallel count, and a prime that never divides the row blocks
/// evenly (worst case for the partition arithmetic).
const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn prop_seed() -> u64 {
    std::env::var("CSCNN_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Tensor with elements uniform in [-2, 2), a fraction forced to exactly
/// `0.0` so the kernels' sparsity short-circuit is exercised on every run.
fn random_tensor(rng: &mut StdRng, dims: &[usize], zero_fraction: f64) -> Tensor {
    let n: usize = dims.iter().product();
    let v: Vec<f32> = (0..n)
        .map(|_| {
            if rng.gen_bool(zero_fraction) {
                0.0
            } else {
                (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * 4.0 - 2.0
            }
        })
        .collect();
    Tensor::from_vec(v, dims)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn matmul_variants_bit_match_reference_at_every_thread_count() {
    let seed = prop_seed();
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x5a10_0000 + case));
        // Mix of sizes so every dispatch tier is hit: the direct small
        // path, the inline blocked path, and (last case) a GEMM big enough
        // to cross the parallel floor and actually spawn threads.
        let (m, k, n) = if case == 7 {
            (130, 70, 65)
        } else {
            (
                rng.gen_range(1..24),
                rng.gen_range(1..24),
                rng.gen_range(1..24),
            )
        };
        let a = random_tensor(&mut rng, &[m, k], 0.3);
        let b = random_tensor(&mut rng, &[k, n], 0.3);
        let at = random_tensor(&mut rng, &[k, m], 0.3);
        let bt = random_tensor(&mut rng, &[n, k], 0.3);
        let want = bits(&reference::matmul(&a, &b));
        let want_at = bits(&reference::matmul_at(&at, &b));
        let want_bt = bits(&reference::matmul_bt(&a, &bt));
        for t in THREAD_COUNTS {
            set_num_threads(t);
            assert_eq!(
                bits(&matmul(&a, &b)),
                want,
                "matmul {m}x{k}x{n} diverged at {t} threads (seed {seed}, case {case})"
            );
            assert_eq!(
                bits(&matmul_at(&at, &b)),
                want_at,
                "matmul_at {m}x{k}x{n} diverged at {t} threads (seed {seed}, case {case})"
            );
            assert_eq!(
                bits(&matmul_bt(&a, &bt)),
                want_bt,
                "matmul_bt {m}x{k}x{n} diverged at {t} threads (seed {seed}, case {case})"
            );
        }
    }
    reset_num_threads();
}

/// Random conv geometry: kernel, stride, padding, spatial dims that are
/// always mutually consistent (`h >= r`, so output dims stay positive).
fn random_spec(rng: &mut StdRng) -> (ConvSpec, usize, usize) {
    let r = rng.gen_range(1..4);
    let s = rng.gen_range(1..4);
    let spec = ConvSpec::new(r, s)
        .with_stride(rng.gen_range(1..3))
        .with_padding(rng.gen_range(0..2));
    let h = rng.gen_range(r..r + 9);
    let w = rng.gen_range(s..s + 9);
    (spec, h, w)
}

#[test]
fn conv2d_forward_and_backward_bit_match_reference_at_every_thread_count() {
    let seed = prop_seed();
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (0xc0f0_0000 + case));
        let (spec, h, w) = random_spec(&mut rng);
        let n = rng.gen_range(1..3);
        let c = rng.gen_range(1..5);
        let k = rng.gen_range(1..6);
        let input = random_tensor(&mut rng, &[n, c, h, w], 0.3);
        let weight = random_tensor(&mut rng, &[k, c, spec.kernel_h, spec.kernel_w], 0.3);
        let bias = random_tensor(&mut rng, &[k], 0.0);
        let (oh, ow) = spec.output_dim(h, w);
        let grad_out = random_tensor(&mut rng, &[n, k, oh, ow], 0.3);
        let want = bits(&reference::conv2d(&input, &weight, &bias, &spec));
        let want_grads = reference::conv2d_backward(&input, &weight, &grad_out, &spec);
        for t in THREAD_COUNTS {
            set_num_threads(t);
            assert_eq!(
                bits(&conv2d(&input, &weight, &bias, &spec)),
                want,
                "conv2d {spec:?} [{n},{c},{h},{w}] diverged at {t} threads (seed {seed}, case {case})"
            );
            let got = conv2d_backward(&input, &weight, &grad_out, &spec);
            assert_eq!(
                bits(&got.input),
                bits(&want_grads.input),
                "input grad, case {case}, {t} threads"
            );
            assert_eq!(
                bits(&got.weight),
                bits(&want_grads.weight),
                "weight grad, case {case}, {t} threads"
            );
            assert_eq!(
                bits(&got.bias),
                bits(&want_grads.bias),
                "bias grad, case {case}, {t} threads"
            );
        }
    }
    reset_num_threads();
}

#[test]
fn grouped_fused_path_bit_matches_per_group_reference() {
    let seed = prop_seed();
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x9409_0000 + case));
        let (spec, h, w) = random_spec(&mut rng);
        let groups = [1usize, 2, 4][rng.gen_range(0..3usize)];
        let c = groups * rng.gen_range(1..4usize);
        let k = groups * rng.gen_range(1..4usize);
        // Enough (batch × group) tasks that the task-parallel scheduling
        // path runs at the higher thread counts.
        let n = rng.gen_range(1..4);
        let input = random_tensor(&mut rng, &[n, c, h, w], 0.3);
        let weight = random_tensor(
            &mut rng,
            &[k, c / groups, spec.kernel_h, spec.kernel_w],
            0.3,
        );
        let bias = random_tensor(&mut rng, &[k], 0.0);
        let (oh, ow) = spec.output_dim(h, w);
        let grad_out = random_tensor(&mut rng, &[n, k, oh, ow], 0.3);
        // The reference implementation *is* the per-group loop: it slices
        // each group's channels out and runs the naive dense kernel.
        let want = bits(&reference::conv2d_grouped(
            &input, &weight, &bias, &spec, groups,
        ));
        let want_grads =
            reference::conv2d_grouped_backward(&input, &weight, &grad_out, &spec, groups);
        for t in THREAD_COUNTS {
            set_num_threads(t);
            assert_eq!(
                bits(&conv2d_grouped(&input, &weight, &bias, &spec, groups)),
                want,
                "conv2d_grouped g={groups} diverged at {t} threads (seed {seed}, case {case})"
            );
            let got = conv2d_grouped_backward(&input, &weight, &grad_out, &spec, groups);
            assert_eq!(
                bits(&got.input),
                bits(&want_grads.input),
                "input grad, case {case}, {t} threads"
            );
            assert_eq!(
                bits(&got.weight),
                bits(&want_grads.weight),
                "weight grad, case {case}, {t} threads"
            );
            assert_eq!(
                bits(&got.bias),
                bits(&want_grads.bias),
                "bias grad, case {case}, {t} threads"
            );
        }
    }
    reset_num_threads();
}

#[test]
fn depthwise_conv_bit_matches_reference() {
    let seed = prop_seed();
    for case in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (0xd3b7_0000 + case));
        let c = rng.gen_range(2..9);
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let input = random_tensor(&mut rng, &[2, c, 8, 8], 0.3);
        let weight = random_tensor(&mut rng, &[c, 1, 3, 3], 0.3);
        let bias = random_tensor(&mut rng, &[c], 0.0);
        let want = bits(&reference::conv2d_grouped(&input, &weight, &bias, &spec, c));
        for t in THREAD_COUNTS {
            set_num_threads(t);
            assert_eq!(
                bits(&conv2d_grouped(&input, &weight, &bias, &spec, c)),
                want,
                "depthwise C={c} diverged at {t} threads (seed {seed}, case {case})"
            );
        }
    }
    reset_num_threads();
}

#[test]
fn conv_scratch_reuse_bit_matches_free_functions() {
    let seed = prop_seed();
    for case in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x5c3a_0000 + case));
        let (spec, h, w) = random_spec(&mut rng);
        let groups = [1usize, 2][rng.gen_range(0..2usize)];
        let c = groups * rng.gen_range(1..4usize);
        let k = groups * rng.gen_range(1..4usize);
        let weight = random_tensor(
            &mut rng,
            &[k, c / groups, spec.kernel_h, spec.kernel_w],
            0.3,
        );
        let bias = random_tensor(&mut rng, &[k], 0.0);
        let mut scratch = ConvScratch::new();
        // Two training-style steps on different inputs: forward then
        // backward reuse one lowering per input; the second input must
        // invalidate the first's lowering, not reuse it.
        for step in 0..2u64 {
            let mut rng_step = StdRng::seed_from_u64(seed ^ (case << 8) ^ step);
            let input = random_tensor(&mut rng_step, &[2, c, h, w], 0.3);
            let (oh, ow) = spec.output_dim(h, w);
            let grad_out = random_tensor(&mut rng_step, &[2, k, oh, ow], 0.3);
            let want = bits(&conv2d_grouped(&input, &weight, &bias, &spec, groups));
            let want_grads = conv2d_grouped_backward(&input, &weight, &grad_out, &spec, groups);
            for t in THREAD_COUNTS {
                set_num_threads(t);
                let out = scratch.forward(&input, &weight, &bias, &spec, groups);
                assert_eq!(
                    bits(&out),
                    want,
                    "scratch forward, step {step}, {t} threads"
                );
                let got = scratch.backward(&input, &weight, &grad_out, &spec, groups);
                assert_eq!(bits(&got.input), bits(&want_grads.input), "step {step}");
                assert_eq!(bits(&got.weight), bits(&want_grads.weight), "step {step}");
                assert_eq!(bits(&got.bias), bits(&want_grads.bias), "step {step}");
            }
        }
    }
    reset_num_threads();
}
