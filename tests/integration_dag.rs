//! DAG execution integration: the wired `resnet18_ir` (real skip edges
//! into `Add` joins) must overlap its residual branches across PE
//! sub-arrays — strictly beating the sequential sum — while every
//! per-node number stays bit-identical to sequential execution, and the
//! batch workload cache must never conflate the wired graph with its
//! flattened (linear) variant.

use cscnn::ir::{ModelIr, SparsityAnnotation};
use cscnn::models::{catalog, lower, ModelCompression};
use cscnn::sim::{Accelerator, BatchRunner, CartesianAccelerator, Runner};

/// Annotates an IR's weight nodes with the calibrated ResNet-18 profile.
/// The wired and flattened variants share the same weight-node order, so
/// one profile fits both.
fn annotate_resnet18(ir: &mut ModelIr, acc: &dyn Accelerator) {
    let mc = ModelCompression::new(catalog::resnet18(), acc.scheme());
    for (i, node) in ir.weight_nodes_mut().enumerate() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: mc.profile.weight_density[i],
            activation_density: mc.profile.activation_density[i],
        });
    }
}

#[test]
fn resnet18_branches_overlap_without_perturbing_per_node_results() {
    let acc = CartesianAccelerator::cscnn();
    let mut ir = catalog::resnet18_ir();
    assert!(!ir.is_linear(), "catalog ResNet-18 carries real skip edges");
    annotate_resnet18(&mut ir, &acc);

    let runner = Runner::new(42);
    let sequential = runner.run_ir(&acc, &ir).expect("annotated IR simulates");
    let sched = runner
        .run_ir_overlapped(&acc, &ir, 2)
        .expect("annotated IR overlaps");

    // Overlap is a scheduling property only: the per-node report must be
    // bit-identical to the sequential run, field for field.
    assert_eq!(
        cscnn::json::to_string(&sched.run).expect("stats serialize"),
        cscnn::json::to_string(&sequential).expect("stats serialize"),
    );

    // The downsample projections run concurrently with the main path, so
    // the makespan lands strictly below the sequential sum.
    let seq_s = sched.sequential_time_s();
    assert!(
        sched.makespan_s < seq_s,
        "makespan {} must beat sequential {}",
        sched.makespan_s,
        seq_s
    );
    assert!(sched.overlap_speedup() > 1.0);
    // Every timed node got placed, on a valid sub-array, within the span.
    assert_eq!(sched.placements.len(), sequential.layers.len());
    for p in &sched.placements {
        assert!(p.sub_array < 2);
        assert!(p.start_s <= p.finish_s && p.finish_s <= sched.makespan_s);
    }
}

#[test]
fn per_node_cycles_survive_flattening() {
    // Name-keyed workload seeding: the wired DAG and its flattened linear
    // variant sample identical workloads per layer, so compute cycles and
    // issued multiplications agree node for node even though the graphs
    // differ.
    let acc = CartesianAccelerator::cscnn();
    let mut wired = catalog::resnet18_ir();
    annotate_resnet18(&mut wired, &acc);
    let mut flat = lower::to_ir(&catalog::resnet18());
    annotate_resnet18(&mut flat, &acc);
    assert!(flat.is_linear());

    let runner = Runner::new(7);
    let from_wired = runner.run_ir(&acc, &wired).expect("wired simulates");
    let from_flat = runner.run_ir(&acc, &flat).expect("flattened simulates");
    assert_eq!(from_wired.layers.len(), from_flat.layers.len());
    for (w, f) in from_wired.layers.iter().zip(&from_flat.layers) {
        assert_eq!(w.name, f.name);
        assert_eq!(w.compute_cycles, f.compute_cycles, "{}", w.name);
        assert_eq!(w.effective_mults, f.effective_mults, "{}", w.name);
    }
}

#[test]
fn workload_cache_distinguishes_wired_from_flattened() {
    let acc = CartesianAccelerator::cscnn();
    let mut wired = catalog::resnet18_ir();
    annotate_resnet18(&mut wired, &acc);
    let mut flat = lower::to_ir(&catalog::resnet18());
    annotate_resnet18(&mut flat, &acc);

    // Same node multiset of weight layers, different wiring: the hashes
    // must disagree so the cache can never alias them.
    assert_ne!(wired.annotated_hash(), flat.annotated_hash());
    assert_ne!(wired.structural_hash(), flat.structural_hash());

    let stats = BatchRunner::new(Runner::new(11))
        .with_workers(2)
        .run_batch(&acc, &[wired.clone(), flat, wired])
        .expect("annotated batch");
    assert_eq!(stats.requests(), 3);
    assert_eq!(
        stats.unique_structures(),
        2,
        "wired and flattened are distinct cache entries"
    );
    assert_eq!(stats.cache_hits, 1, "the repeated wired request hits");
}

#[test]
fn googlenet_inception_branches_overlap_too() {
    // Four-way Concat fan-outs: with four sub-arrays the Inception modules
    // must compress the makespan below the sequential sum.
    let acc = CartesianAccelerator::cscnn();
    let mut ir = catalog::googlenet_ir();
    assert!(!ir.is_linear());
    let mc = ModelCompression::new(catalog::googlenet(), acc.scheme());
    for (i, node) in ir.weight_nodes_mut().enumerate() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: mc.profile.weight_density[i],
            activation_density: mc.profile.activation_density[i],
        });
    }
    let sched = Runner::new(13)
        .run_ir_overlapped(&acc, &ir, 4)
        .expect("annotated IR overlaps");
    assert!(sched.makespan_s < sched.sequential_time_s());
    assert!(sched.overlap_speedup() > 1.0);
}
