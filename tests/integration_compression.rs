//! Compression-math integration: trained networks, the sparse storage
//! formats, and the catalog arithmetic must agree with each other.

use cscnn::models::{catalog, CompressionScheme, ModelCompression};
use cscnn::nn::centrosymmetric;
use cscnn::nn::models;
use cscnn::sparse::centro::CentroFilter;
use cscnn::sparse::RleVector;

#[test]
fn trained_projected_filters_round_trip_through_centro_storage() {
    // Project a real network's filters and verify every slice can be stored
    // in half form and expanded losslessly.
    let mut net = models::vgg_s(10, 77);
    let converted = centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
    assert_eq!(converted, 6, "all six vgg_s convs are eligible");
    for conv in net.conv_layers_mut() {
        let dims = conv.weight().value.shape().dims().to_vec();
        let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
        let w = conv.weight().value.as_slice();
        for slice_idx in 0..k * c {
            let slice = &w[slice_idx * r * s..(slice_idx + 1) * r * s];
            let cf = CentroFilter::from_dense(slice, r, s)
                .expect("projected slice must be centrosymmetric");
            assert_eq!(cf.expand(), slice);
            assert_eq!(cf.stored_len(), (r * s).div_ceil(2));
        }
    }
}

#[test]
fn rle_encoding_round_trips_network_weights() {
    let mut net = models::convnet_s(10, 78);
    // Prune to create real zeros, then encode each filter fiber.
    for conv in net.conv_layers_mut() {
        cscnn::nn::pruning::prune_conv(conv, 0.4);
        let w = conv.weight().value.as_slice();
        for fiber in w.chunks(64.min(w.len())) {
            let rle = RleVector::encode(fiber, 15);
            assert_eq!(rle.decode(), fiber);
            let density = fiber.iter().filter(|x| **x != 0.0).count() as f64 / fiber.len() as f64;
            assert!((rle.density() - density).abs() < 1e-12);
        }
    }
}

#[test]
fn model_level_reduction_agrees_with_network_level_counting() {
    // The catalog's structural math (ModelCompression with Cscnn scheme)
    // and a real projected network's count_multiplications must agree on
    // the centrosymmetric reduction for matching geometry.
    let mut net = models::vgg_s(10, 79);
    centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
    let counted = centrosymmetric::count_multiplications(&mut net, &models::vgg_s_conv_inputs())
        .expect("conv inputs cover every conv");
    let ratio = counted.centro_reduction();
    // vgg_s is all 3x3 unit-stride convs + one FC: expect slightly under
    // the pure-conv 1.8.
    assert!((1.70..=1.80).contains(&ratio), "ratio={ratio}");
}

#[test]
fn scheme_reductions_are_ordered_for_every_model() {
    // For every catalog model: Dense (1.0) < CSCNN < CSCNN+Pruning, and
    // DeepCompression > 1. (CSCNN-vs-DC ordering varies by model, as in
    // the paper's tables.)
    for model in catalog::evaluation_suite() {
        let dense = ModelCompression::new(model.clone(), CompressionScheme::Dense).reduction();
        let cs = ModelCompression::new(model.clone(), CompressionScheme::Cscnn).reduction();
        let dc =
            ModelCompression::new(model.clone(), CompressionScheme::DeepCompression).reduction();
        let cp = ModelCompression::new(model.clone(), CompressionScheme::CscnnPruning).reduction();
        assert!((dense - 1.0).abs() < 1e-9, "{}", model.name);
        // The structural reduction is bounded by the fraction of MACs in
        // centrosymmetric-eligible (multi-weight, unit-stride) kernels:
        // ~1.8 for 3x3-dominated models, ~1.2 for bottleneck ResNets, and
        // ≈1.0 for pointwise-dominated ShuffleNet. (The paper's Table III
        // reports 1.5-1.8 even for pointwise models, which Eq. 2 cannot
        // produce on 1x1 kernels — see EXPERIMENTS.md.)
        let eligible_frac = model
            .layers
            .iter()
            .filter(|l| l.centro_eligible())
            .map(|l| l.dense_mults() as f64)
            .sum::<f64>()
            / model.dense_mults() as f64;
        let expected_floor = 1.0 + 0.35 * eligible_frac; // conservative bound
        assert!(
            cs >= expected_floor,
            "{}: cscnn {cs} < {expected_floor}",
            model.name
        );
        assert!(dc > 1.5, "{}: dc {dc}", model.name);
        assert!(
            cp > cs,
            "{}: pruning must add on top of structure",
            model.name
        );
    }
}

#[test]
fn weight_storage_halves_under_centrosymmetric_scheme() {
    // Table V motivation: CSCNN's weight buffer shrinks 16 KB → 10 KB
    // because stored weights nearly halve on conv-dominated models.
    let mc_dc = ModelCompression::new(catalog::vgg16_cifar(), CompressionScheme::Cscnn);
    let compression = mc_dc.weight_compression();
    assert!(
        (1.6..=1.9).contains(&compression),
        "compression={compression}"
    );
}
