//! Cross-crate simulator integration: models × accelerators, checking the
//! orderings the paper's evaluation (Figs. 7, 9, 11) hinges on.

use cscnn::evaluate_hardware;
use cscnn::models::catalog;
use cscnn::sim::tiling::TilingStrategy;
use cscnn::sim::{baselines, geomean, Accelerator, CartesianAccelerator, Runner};

#[test]
fn headline_ordering_holds_on_alexnet_and_vgg() {
    let runner = Runner::new(100);
    for model in [catalog::alexnet(), catalog::vgg16()] {
        let dcnn = runner.run_model(&baselines::dcnn(), &model);
        let scnn = runner.run_model(&CartesianAccelerator::scnn(), &model);
        let sparten = runner.run_model(&baselines::sparten(), &model);
        let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
        // The paper's headline: CSCNN > SparTen > SCNN > DCNN in speed.
        assert!(cscnn.speedup_over(&dcnn) > 2.0, "{}", model.name);
        assert!(cscnn.speedup_over(&scnn) > 1.0, "{}", model.name);
        assert!(cscnn.speedup_over(&sparten) > 1.0, "{}", model.name);
        assert!(scnn.speedup_over(&dcnn) > 1.0, "{}", model.name);
        // And in EDP.
        assert!(cscnn.edp_gain_over(&dcnn) > cscnn.edp_gain_over(&sparten));
    }
}

#[test]
fn one_sided_baselines_fall_between_dense_and_two_sided() {
    let runner = Runner::new(101);
    let model = catalog::vgg16();
    let dcnn = runner.run_model(&baselines::dcnn(), &model).total_time_s();
    let cnv = runner
        .run_model(&baselines::cnvlutin(), &model)
        .total_time_s();
    let cx = runner
        .run_model(&baselines::cambricon_x(), &model)
        .total_time_s();
    let sp = runner
        .run_model(&baselines::sparten(), &model)
        .total_time_s();
    assert!(cnv < dcnn && cx < dcnn);
    assert!(sp < cnv && sp < cx);
}

#[test]
fn alexnet_c1_is_where_cartesian_dataflows_lose() {
    // Fig. 8: on AlexNet C1 (dense, stride 4) SCNN/CSCNN fall behind DCNN;
    // on C2 (moderate density, unit stride) CSCNN wins clearly.
    let runner = Runner::new(102);
    let model = catalog::alexnet();
    let dcnn = runner.run_model(&baselines::dcnn(), &model);
    let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
    let c1_speedup = dcnn.layers[0].time_s / cscnn.layers[0].time_s;
    let c2_speedup = dcnn.layers[1].time_s / cscnn.layers[1].time_s;
    assert!(
        c1_speedup < 1.6,
        "C1 should show little/no gain: {c1_speedup}"
    );
    assert!(
        c2_speedup > 2.0,
        "C2 should show a clear gain: {c2_speedup}"
    );
    assert!(c2_speedup > c1_speedup);
}

#[test]
fn mixed_tiling_beats_planar_on_every_fig11_network() {
    // Fig. 11(a): mixed ≥ output-channel ≥ planar overall, with
    // output-channel losing on the small networks (LeNet-5 / ConvNet).
    let runner = Runner::new(103);
    // Fig. 11 uses LeNet-5/ConvNet/AlexNet/VGG16; the CIFAR VGG variant
    // keeps this debug-mode test fast (full VGG16 runs in the bench
    // harness).
    let models = [
        catalog::lenet5(),
        catalog::convnet(),
        catalog::alexnet(),
        catalog::vgg16_cifar(),
    ];
    let tilings = [
        TilingStrategy::Planar,
        TilingStrategy::OutputChannel,
        TilingStrategy::Mixed,
    ];
    let mut speedups = vec![Vec::new(); 3];
    for model in &models {
        let times: Vec<f64> = tilings
            .iter()
            .map(|&t| {
                runner
                    .run_model(&CartesianAccelerator::cscnn().with_tiling(t), model)
                    .total_time_s()
            })
            .collect();
        for (i, &t) in times.iter().enumerate() {
            speedups[i].push(times[0] / t);
        }
    }
    let planar = geomean(&speedups[0]);
    let oc = geomean(&speedups[1]);
    let mixed = geomean(&speedups[2]);
    assert!((planar - 1.0).abs() < 1e-12);
    assert!(mixed > planar, "mixed {mixed} vs planar {planar}");
    // Fig. 11(a) shows mixed tiling winning the *overall* geomean, driven
    // by full VGG16 where channel-splitting pays off most; on this reduced
    // debug-speed suite (VGG16-CIFAR instead of VGG16) mixed only has to
    // stay competitive with output-channel. The margin also absorbs the
    // seeded crossbar-stall calibration: mixed's per-layer halo-vs-split
    // estimate sits near the tipping point on AlexNet-scale layers, so a
    // different (but still deterministic) RNG stream can move the geomean
    // by a few percent.
    assert!(mixed >= oc * 0.93, "mixed {mixed} vs output-channel {oc}");
}

#[test]
fn evaluation_suite_runs_end_to_end_and_is_deterministic() {
    let models = [catalog::lenet5(), catalog::convnet()];
    let a = evaluate_hardware(&models, 104).expect("no worker panics");
    let b = evaluate_hardware(&models, 104).expect("no worker panics");
    assert_eq!(a.len(), 9);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.accelerator, y.accelerator);
        assert!((x.speedup_over_dcnn - y.speedup_over_dcnn).abs() < 1e-12);
    }
    // CSCNN (last) must lead the pack on both axes.
    let cscnn = a.last().expect("nine accelerators");
    for other in &a[..8] {
        assert!(
            cscnn.speedup_over_dcnn >= other.speedup_over_dcnn,
            "CSCNN {} vs {} {}",
            cscnn.speedup_over_dcnn,
            other.accelerator,
            other.speedup_over_dcnn
        );
    }
}

#[test]
fn every_catalog_model_simulates_on_cscnn() {
    // Smoke coverage: all nine evaluation models, plus the CIFAR variants,
    // flow through the detailed model without panicking and with sane
    // outputs.
    let runner = Runner::new(105);
    // A representative cross-section: sequential, grouped, depthwise,
    // bottleneck and CIFAR-scale shapes. (The giant models — VGG16,
    // ResNet-152, EfficientNet-B7 — run in the release-mode bench harness.)
    let models = [
        catalog::lenet5(),
        catalog::convnet(),
        catalog::alexnet(),
        catalog::resnet18(),
        catalog::shufflenet_v2(),
        catalog::squeezenet(),
        catalog::vgg16_cifar(),
        catalog::wide_resnet28_10(),
        catalog::googlenet(),
        catalog::mobilenet_v1(),
    ];
    let acc = CartesianAccelerator::cscnn();
    for model in &models {
        let stats = runner.run_model(&acc, model);
        assert_eq!(stats.layers.len(), model.layers.len(), "{}", model.name);
        assert!(stats.total_time_s() > 0.0, "{}", model.name);
        assert!(stats.total_on_chip_pj() > 0.0, "{}", model.name);
    }
}

#[test]
fn table_iv_characteristics_match_paper() {
    let accs = baselines::evaluation_accelerators();
    let find = |name: &str| -> &dyn Accelerator {
        accs.iter()
            .find(|a| a.name() == name)
            .expect("accelerator present")
            .as_ref()
    };
    assert_eq!(find("DCNN").characteristics().sparsity, "-");
    assert_eq!(find("Cnvlutin").characteristics().sparsity, "A");
    assert_eq!(find("Cambricon-X").characteristics().sparsity, "W");
    assert_eq!(find("SCNN").characteristics().dataflow, "Cartesian product");
    assert_eq!(
        find("CSCNN").characteristics().compression,
        "Centrosymmetric filters"
    );
    assert_eq!(find("CSCNN").characteristics().sparsity, "A+W");
}
