#!/bin/sh
# CI gate for the CSCNN reproduction. Mirrors the verify ritual described
# in README.md: format check (when rustfmt is installed), the workspace
# invariant linter (docs/static_analysis.md), release build, test suite,
# and a warning-free rustdoc build. Fails fast on the first broken stage.
set -eu

cd "$(dirname "$0")"

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check"
    cargo fmt --all --check
else
    echo "== cargo fmt not installed; skipping format check"
fi

echo "== cscnn-lint"
cargo run -q -p cscnn-lint -- --format json

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== property suites across fixed seeds"
for seed in 1 17 4242; do
    echo "-- CSCNN_PROP_SEED=$seed"
    CSCNN_PROP_SEED="$seed" cargo test -q -p cscnn \
        --test property_ir_topology \
        --test property_simulator \
        --test property_invariants \
        --test property_kernels
done

echo "== kernel determinism across thread counts"
for threads in 1 4; do
    echo "-- CSCNN_NUM_THREADS=$threads"
    CSCNN_NUM_THREADS="$threads" cargo test -q -p cscnn \
        --test property_kernels
done

echo "== kernels bench smoke run (schema check)"
cargo run -q --release -p cscnn-bench --bin kernels -- --smoke

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== ci.sh: all stages passed"
