//! Batch-intake throughput: `BatchRunner::run_batch` over a request stream
//! versus the same requests simulated sequentially with `Runner::run_ir`.
//! Measures the workload-cache and worker-pool payoff (docs/batching.md).
//!
//! Plain `main()` harness (`harness = false`): each benchmark warms up,
//! then runs batches until ~0.2 s elapses and reports the mean ns/iter.
//! Run with `cargo bench -p cscnn-bench --bench batch`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cscnn::ir::{ModelIr, SparsityAnnotation};
use cscnn::models::{catalog, lower, ModelCompression, ModelDesc};
use cscnn::sim::{Accelerator, BatchRunner, CartesianAccelerator, Runner};

fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let target = Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < target {
        f();
        iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<36} {per_iter:>14.0} ns/iter  ({iters} iters)");
}

fn calibrated_ir(model: &ModelDesc, acc: &dyn Accelerator) -> ModelIr {
    let mc = ModelCompression::new(model.clone(), acc.scheme());
    let mut ir = lower::to_ir(model);
    for (i, node) in ir.weight_nodes_mut().enumerate() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: mc.profile.weight_density[i],
            activation_density: mc.profile.activation_density[i],
        });
    }
    ir
}

fn main() {
    let acc = CartesianAccelerator::cscnn();
    let irs: Vec<ModelIr> = [catalog::lenet5(), catalog::convnet(), catalog::alexnet()]
        .iter()
        .map(|m| calibrated_ir(m, &acc))
        .collect();

    const REQUESTS: usize = 12;
    let requests: Vec<ModelIr> = (0..REQUESTS).map(|i| irs[i % irs.len()].clone()).collect();
    let runner = Runner::new(1);

    bench("batch_12req_sequential_run_ir", || {
        for ir in &requests {
            black_box(runner.run_ir(&acc, black_box(ir)).expect("annotated"));
        }
    });

    for workers in [1usize, 4] {
        let batch = BatchRunner::new(Runner::new(1)).with_workers(workers);
        bench(&format!("batch_12req_pool_{workers}w"), || {
            black_box(
                batch
                    .run_batch(&acc, black_box(&requests))
                    .expect("annotated"),
            );
        });
    }

    // Cache-only effect: one worker, so any win over sequential run_ir is
    // pure workload-cache dedup (3 syntheses instead of 12).
    let batch = BatchRunner::new(Runner::new(1)).with_workers(1);
    let unique: Vec<ModelIr> = irs.to_vec();
    bench("batch_3req_unique_structures", || {
        black_box(
            batch
                .run_batch(&acc, black_box(&unique))
                .expect("annotated"),
        );
    });
}
