//! Criterion benchmarks of the training-side hot paths: a full SGD step on
//! a small CNN with and without the centrosymmetric constraint, and the
//! pruning pass.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cscnn::nn::centrosymmetric;
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::metrics::softmax_cross_entropy;
use cscnn::nn::models;
use cscnn::nn::optimizer::Sgd;
use cscnn::nn::pruning;

fn bench_training_step(c: &mut Criterion) {
    let data = SyntheticImages::generate(1, 16, 16, 4, 20, 0.1, 3);
    let (x, labels) = data.batch(&(0..16).collect::<Vec<_>>());
    for (label, centro) in [("dense", false), ("centrosymmetric", true)] {
        let mut net = models::tiny_cnn(1, 16, 16, 4, 3);
        if centro {
            centrosymmetric::centrosymmetrize(&mut net);
        }
        let mut opt = Sgd::new(0.9, 1e-4);
        c.bench_function(&format!("sgd_step_tiny_cnn_{label}"), |b| {
            b.iter(|| {
                let logits = net.forward(black_box(&x));
                let (_, grad) = softmax_cross_entropy(&logits, &labels);
                net.backward(&grad);
                let mut params = net.params_mut();
                opt.step(&mut params, 0.01);
            })
        });
    }
}

fn bench_pruning_pass(c: &mut Criterion) {
    c.bench_function("prune_network_vgg_s", |b| {
        b.iter_with_setup(
            || models::vgg_s(10, 4),
            |mut net| {
                pruning::prune_network(
                    &mut net,
                    &pruning::PruneConfig {
                        conv_keep: 0.4,
                        fc_keep: 0.1,
                    },
                )
            },
        )
    });
}

fn bench_projection_pass(c: &mut Criterion) {
    c.bench_function("centrosymmetrize_vgg_s", |b| {
        b.iter_with_setup(
            || models::vgg_s(10, 5),
            |mut net| centrosymmetric::centrosymmetrize(&mut net),
        )
    });
}

criterion_group!(benches, bench_training_step, bench_pruning_pass, bench_projection_pass);
criterion_main!(benches);
