//! Benchmarks of the training-side hot paths: a full SGD step on a small
//! CNN with and without the centrosymmetric constraint, and the pruning
//! pass.
//!
//! Plain `main()` harness (`harness = false`): each benchmark warms up,
//! then runs batches until ~0.2 s elapses and reports the mean ns/iter.
//! Run with `cargo bench -p cscnn-bench --bench training`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cscnn::nn::centrosymmetric;
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::metrics::softmax_cross_entropy;
use cscnn::nn::models;
use cscnn::nn::optimizer::Sgd;
use cscnn::nn::pruning;

fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let target = Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < target {
        f();
        iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<36} {per_iter:>14.0} ns/iter  ({iters} iters)");
}

/// Variant for benchmarks that consume their input: rebuilds the state
/// outside the timed region each iteration.
fn bench_with_setup<T>(name: &str, mut setup: impl FnMut() -> T, mut f: impl FnMut(T)) {
    f(setup());
    let target = Duration::from_millis(200);
    let mut spent = Duration::ZERO;
    let mut iters = 0u64;
    while spent < target {
        let input = setup();
        let start = Instant::now();
        f(input);
        spent += start.elapsed();
        iters += 1;
    }
    let per_iter = spent.as_nanos() as f64 / iters as f64;
    println!("{name:<36} {per_iter:>14.0} ns/iter  ({iters} iters)");
}

fn main() {
    let data = SyntheticImages::generate(1, 16, 16, 4, 20, 0.1, 3);
    let (x, labels) = data.batch(&(0..16).collect::<Vec<_>>());
    for (label, centro) in [("dense", false), ("centrosymmetric", true)] {
        let mut net = models::tiny_cnn(1, 16, 16, 4, 3);
        if centro {
            centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
        }
        let mut opt = Sgd::new(0.9, 1e-4);
        bench(&format!("sgd_step_tiny_cnn_{label}"), || {
            let logits = net.forward(black_box(&x));
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            let mut params = net.params_mut();
            opt.step(&mut params, 0.01);
        });
    }

    bench_with_setup(
        "prune_network_vgg_s",
        || models::vgg_s(10, 4),
        |mut net| {
            pruning::prune_network(
                &mut net,
                &pruning::PruneConfig {
                    conv_keep: 0.4,
                    fc_keep: 0.1,
                },
            )
            .expect("finite weights");
        },
    );

    bench_with_setup(
        "centrosymmetrize_vgg_s",
        || models::vgg_s(10, 5),
        |mut net| {
            centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
        },
    );
}
