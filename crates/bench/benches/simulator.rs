//! Criterion benchmarks of the simulator itself: per-layer simulation on
//! the detailed Cartesian model, workload synthesis, and the tiling
//! planner. These keep the table/figure harnesses fast.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cscnn::models::{catalog, LayerDesc};
use cscnn::sim::dram::DramConfig;
use cscnn::sim::energy::EnergyTable;
use cscnn::sim::tiling::{self, TilingStrategy};
use cscnn::sim::workload::LayerWorkload;
use cscnn::sim::{baselines, Accelerator, CartesianAccelerator, LayerContext, Runner};

fn vgg_conv_layer() -> LayerDesc {
    LayerDesc::conv("conv3_2", 256, 256, 3, 3, 56, 56, 1, 1)
}

fn bench_layer_simulation(c: &mut Criterion) {
    let layer = vgg_conv_layer();
    let dram = DramConfig::default();
    let energy = EnergyTable::default();
    for (label, acc, centro) in [
        ("cscnn", CartesianAccelerator::cscnn(), true),
        ("scnn", CartesianAccelerator::scnn(), false),
    ] {
        let wl = LayerWorkload::synthesize(&layer, 0.4, 0.6, centro, 1);
        let cfg = acc.config();
        c.bench_function(&format!("simulate_vgg_conv3_2_{label}"), |b| {
            b.iter(|| {
                let ctx = LayerContext {
                    cfg: &cfg,
                    dram: &dram,
                    energy: &energy,
                    workload: black_box(&wl),
                    input_on_chip: true,
                    output_fits_on_chip: true,
                };
                acc.simulate_layer(&ctx)
            })
        });
    }
}

fn bench_workload_synthesis(c: &mut Criterion) {
    let layer = vgg_conv_layer();
    c.bench_function("synthesize_vgg_conv3_2_workload", |b| {
        b.iter(|| LayerWorkload::synthesize(black_box(&layer), 0.4, 0.6, true, 1))
    });
}

fn bench_tiling_planner(c: &mut Criterion) {
    let layer = vgg_conv_layer();
    let wl = LayerWorkload::synthesize(&layer, 0.4, 0.6, false, 2);
    let cfg = CartesianAccelerator::cscnn().config();
    for (label, s) in [
        ("planar", TilingStrategy::Planar),
        ("mixed", TilingStrategy::Mixed),
    ] {
        c.bench_function(&format!("tiling_plan_{label}"), |b| {
            b.iter(|| tiling::plan(&cfg, black_box(&wl), s, true))
        });
    }
}

fn bench_full_network(c: &mut Criterion) {
    let runner = Runner::new(1);
    let model = catalog::alexnet();
    c.bench_function("run_alexnet_cscnn", |b| {
        b.iter(|| runner.run_model(&CartesianAccelerator::cscnn(), black_box(&model)))
    });
    c.bench_function("run_alexnet_dcnn", |b| {
        b.iter(|| runner.run_model(&baselines::dcnn(), black_box(&model)))
    });
}

fn bench_detailed_pe(c: &mut Criterion) {
    use cscnn::sim::pe_detailed::{simulate_detailed, ChannelFibers, PeGeometry, WeightEntry};
    let geo = PeGeometry {
        px: 4,
        py: 4,
        kernel_h: 3,
        kernel_w: 3,
        tile_h: 14,
        tile_w: 14,
        k_count: 8,
        dual: true,
    };
    let channels: Vec<ChannelFibers> = (0..16)
        .map(|ci| {
            let weights = (0..8)
                .flat_map(|k| {
                    [(0u8, 0u8), (0, 1), (1, 0), (1, 1), (0, 2)]
                        .into_iter()
                        .map(move |(r, s)| WeightEntry {
                            k,
                            r,
                            s,
                            value: 0.5,
                        })
                })
                .collect();
            let acts = (0..14)
                .flat_map(|y| (0..14).filter(move |x| (x + y + ci) % 2 == 0).map(move |x| (y as u16, x as u16, 1.0)))
                .collect();
            ChannelFibers { weights, acts }
        })
        .collect();
    c.bench_function("detailed_pe_16ch_dual", |b| {
        b.iter(|| simulate_detailed(black_box(&geo), black_box(&channels)))
    });
}

fn bench_crossbar_calibration(c: &mut Criterion) {
    // Uncached configurations exercise the full micro-simulation; this
    // bench uses a fresh (px, py) pair per size to defeat the cache is not
    // possible deterministically, so bench the cached fast path instead.
    c.bench_function("stall_factor_cached", |b| {
        b.iter(|| cscnn::sim::crossbar::stall_factor(4, 4, 2))
    });
}

criterion_group!(
    benches,
    bench_layer_simulation,
    bench_workload_synthesis,
    bench_tiling_planner,
    bench_full_network,
    bench_detailed_pe,
    bench_crossbar_calibration
);
criterion_main!(benches);
