//! Benchmarks of the simulator itself: per-layer simulation on the
//! detailed Cartesian model, workload synthesis, and the tiling planner.
//! These keep the table/figure harnesses fast.
//!
//! Plain `main()` harness (`harness = false`): each benchmark warms up,
//! then runs batches until ~0.2 s elapses and reports the mean ns/iter.
//! Run with `cargo bench -p cscnn-bench --bench simulator`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cscnn::models::{catalog, LayerDesc};
use cscnn::sim::dram::DramConfig;
use cscnn::sim::energy::EnergyTable;
use cscnn::sim::tiling::{self, TilingStrategy};
use cscnn::sim::workload::LayerWorkload;
use cscnn::sim::{baselines, Accelerator, CartesianAccelerator, LayerContext, Runner};

fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let target = Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < target {
        f();
        iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<36} {per_iter:>14.0} ns/iter  ({iters} iters)");
}

fn vgg_conv_layer() -> LayerDesc {
    LayerDesc::conv("conv3_2", 256, 256, 3, 3, 56, 56, 1, 1)
}

fn main() {
    let layer = vgg_conv_layer();
    let dram = DramConfig::default();
    let energy = EnergyTable::default();
    for (label, acc, centro) in [
        ("cscnn", CartesianAccelerator::cscnn(), true),
        ("scnn", CartesianAccelerator::scnn(), false),
    ] {
        let wl = LayerWorkload::synthesize(&layer, 0.4, 0.6, centro, 1);
        let cfg = acc.config();
        bench(&format!("simulate_vgg_conv3_2_{label}"), || {
            let ctx = LayerContext {
                cfg: &cfg,
                dram: &dram,
                energy: &energy,
                workload: black_box(&wl),
                input_on_chip: true,
                output_fits_on_chip: true,
            };
            black_box(acc.simulate_layer(&ctx));
        });
    }

    bench("synthesize_vgg_conv3_2_workload", || {
        black_box(LayerWorkload::synthesize(
            black_box(&layer),
            0.4,
            0.6,
            true,
            1,
        ));
    });

    let wl = LayerWorkload::synthesize(&layer, 0.4, 0.6, false, 2);
    let cfg = CartesianAccelerator::cscnn().config();
    for (label, s) in [
        ("planar", TilingStrategy::Planar),
        ("mixed", TilingStrategy::Mixed),
    ] {
        bench(&format!("tiling_plan_{label}"), || {
            black_box(tiling::plan(&cfg, black_box(&wl), s, true));
        });
    }

    let runner = Runner::new(1);
    let model = catalog::alexnet();
    bench("run_alexnet_cscnn", || {
        black_box(runner.run_model(&CartesianAccelerator::cscnn(), black_box(&model)));
    });
    bench("run_alexnet_dcnn", || {
        black_box(runner.run_model(&baselines::dcnn(), black_box(&model)));
    });

    {
        use cscnn::sim::pe_detailed::{simulate_detailed, ChannelFibers, PeGeometry, WeightEntry};
        let geo = PeGeometry {
            px: 4,
            py: 4,
            kernel_h: 3,
            kernel_w: 3,
            tile_h: 14,
            tile_w: 14,
            k_count: 8,
            dual: true,
        };
        let channels: Vec<ChannelFibers> = (0..16)
            .map(|ci| {
                let weights = (0..8)
                    .flat_map(|k| {
                        [(0u8, 0u8), (0, 1), (1, 0), (1, 1), (0, 2)]
                            .into_iter()
                            .map(move |(r, s)| WeightEntry {
                                k,
                                r,
                                s,
                                value: 0.5,
                            })
                    })
                    .collect();
                let acts = (0..14)
                    .flat_map(|y| {
                        (0..14)
                            .filter(move |x| (x + y + ci) % 2 == 0)
                            .map(move |x| (y as u16, x as u16, 1.0))
                    })
                    .collect();
                ChannelFibers { weights, acts }
            })
            .collect();
        bench("detailed_pe_16ch_dual", || {
            black_box(
                simulate_detailed(black_box(&geo), black_box(&channels))
                    .expect("bench fibers in range"),
            );
        });
    }

    // Uncached configurations exercise the full micro-simulation; a fresh
    // (px, py) pair per iteration is not possible deterministically, so
    // bench the cached fast path instead.
    bench("stall_factor_cached", || {
        black_box(cscnn::sim::crossbar::stall_factor(4, 4, 2));
    });
}
