//! Micro-benchmarks of the kernel hot paths: dense convolution, matmul,
//! sparse encodings and the centrosymmetric transforms.
//!
//! Plain `main()` harness (`harness = false`): each benchmark warms up,
//! then runs batches until ~0.2 s elapses and reports the mean ns/iter.
//! Run with `cargo bench -p cscnn-bench --bench kernels`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cscnn::nn::codebook;
use cscnn::sparse::formats::{BitmaskVector, CscVector};
use cscnn::sparse::{centro, RleVector, SparseSlice};
use cscnn::tensor::{conv2d, matmul, winograd_conv2d, ConvSpec, Tensor};

fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let target = Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < target {
        f();
        iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<36} {per_iter:>14.0} ns/iter  ({iters} iters)");
}

fn main() {
    let input = Tensor::from_fn(&[1, 16, 32, 32], |i| (i as f32 * 0.01).sin());
    let weight = Tensor::from_fn(&[32, 16, 3, 3], |i| (i as f32 * 0.02).cos());
    let bias = Tensor::zeros(&[32]);
    let spec = ConvSpec::new(3, 3).with_padding(1);
    bench("conv2d_16x32x32_to_32", || {
        black_box(conv2d(black_box(&input), black_box(&weight), &bias, &spec));
    });

    let a = Tensor::from_fn(&[128, 256], |i| (i as f32 * 0.01).sin());
    let b2 = Tensor::from_fn(&[256, 64], |i| (i as f32 * 0.02).cos());
    bench("matmul_128x256x64", || {
        black_box(matmul(black_box(&a), black_box(&b2)));
    });

    let dense: Vec<f32> = (0..4096)
        .map(|i| if i % 3 == 0 { (i as f32).sin() } else { 0.0 })
        .collect();
    bench("rle_encode_4096", || {
        black_box(RleVector::encode(black_box(&dense), 15));
    });
    let encoded = RleVector::encode(&dense, 15);
    bench("rle_decode_4096", || {
        black_box(black_box(&encoded).decode());
    });

    let slice: Vec<f32> = (0..25).map(|i| (i as f32).sin()).collect();
    bench("centro_project_5x5", || {
        black_box(centro::project_mean(black_box(&slice), 5, 5));
    });
    let mut grad: Vec<f32> = (0..9).map(|i| i as f32).collect();
    bench("centro_tie_gradients_3x3", || {
        centro::tie_gradients(black_box(&mut grad), 3, 3);
    });

    let half: Vec<f32> = (0..28 * 28)
        .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
        .collect();
    bench("sparse_slice_from_dense_28x28", || {
        black_box(SparseSlice::from_dense(black_box(&half), 28, 28));
    });

    bench("winograd_16x32x32_to_32", || {
        black_box(winograd_conv2d(
            black_box(&input),
            black_box(&weight),
            &bias,
            1,
        ));
    });

    bench("bitmask_encode_4096", || {
        black_box(BitmaskVector::encode(black_box(&dense)));
    });
    bench("csc_encode_4096", || {
        black_box(CscVector::encode(black_box(&dense), 4));
    });
    let bm = BitmaskVector::encode(&dense);
    let other: Vec<f32> = (0..4096)
        .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
        .collect();
    let bvec = BitmaskVector::encode(&other);
    bench("bitmask_inner_join_4096", || {
        black_box(black_box(&bm).inner_join(black_box(&bvec)));
    });

    let values: Vec<f32> = (0..8192)
        .map(|i| {
            if i % 3 == 0 {
                0.0
            } else {
                ((i % 17) as f32 - 8.0) * 0.05
            }
        })
        .collect();
    bench("kmeans_codebook_8192_k32", || {
        black_box(codebook::kmeans_codebook(black_box(&values), 32, 10));
    });
    let symbols: Vec<usize> = (0..8192).map(|i| i % 17).collect();
    bench("huffman_bits_8192", || {
        black_box(codebook::huffman_bits(black_box(&symbols)));
    });
}
