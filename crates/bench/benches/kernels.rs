//! Criterion micro-benchmarks of the kernel hot paths: dense convolution,
//! matmul, sparse encodings and the centrosymmetric transforms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cscnn::nn::codebook;
use cscnn::sparse::formats::{BitmaskVector, CscVector};
use cscnn::sparse::{centro, RleVector, SparseSlice};
use cscnn::tensor::{conv2d, matmul, winograd_conv2d, ConvSpec, Tensor};

fn bench_conv2d(c: &mut Criterion) {
    let input = Tensor::from_fn(&[1, 16, 32, 32], |i| (i as f32 * 0.01).sin());
    let weight = Tensor::from_fn(&[32, 16, 3, 3], |i| (i as f32 * 0.02).cos());
    let bias = Tensor::zeros(&[32]);
    let spec = ConvSpec::new(3, 3).with_padding(1);
    c.bench_function("conv2d_16x32x32_to_32", |b| {
        b.iter(|| conv2d(black_box(&input), black_box(&weight), &bias, &spec))
    });
}

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_fn(&[128, 256], |i| (i as f32 * 0.01).sin());
    let b2 = Tensor::from_fn(&[256, 64], |i| (i as f32 * 0.02).cos());
    c.bench_function("matmul_128x256x64", |b| {
        b.iter(|| matmul(black_box(&a), black_box(&b2)))
    });
}

fn bench_rle(c: &mut Criterion) {
    let dense: Vec<f32> = (0..4096)
        .map(|i| if i % 3 == 0 { (i as f32).sin() } else { 0.0 })
        .collect();
    c.bench_function("rle_encode_4096", |b| {
        b.iter(|| RleVector::encode(black_box(&dense), 15))
    });
    let encoded = RleVector::encode(&dense, 15);
    c.bench_function("rle_decode_4096", |b| b.iter(|| black_box(&encoded).decode()));
}

fn bench_centro(c: &mut Criterion) {
    let slice: Vec<f32> = (0..25).map(|i| (i as f32).sin()).collect();
    c.bench_function("centro_project_5x5", |b| {
        b.iter(|| centro::project_mean(black_box(&slice), 5, 5))
    });
    let mut grad: Vec<f32> = (0..9).map(|i| i as f32).collect();
    c.bench_function("centro_tie_gradients_3x3", |b| {
        b.iter(|| centro::tie_gradients(black_box(&mut grad), 3, 3))
    });
}

fn bench_sparse_slice(c: &mut Criterion) {
    let dense: Vec<f32> = (0..28 * 28)
        .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
        .collect();
    c.bench_function("sparse_slice_from_dense_28x28", |b| {
        b.iter(|| SparseSlice::from_dense(black_box(&dense), 28, 28))
    });
}

fn bench_winograd(c: &mut Criterion) {
    let input = Tensor::from_fn(&[1, 16, 32, 32], |i| (i as f32 * 0.01).sin());
    let weight = Tensor::from_fn(&[32, 16, 3, 3], |i| (i as f32 * 0.02).cos());
    let bias = Tensor::zeros(&[32]);
    c.bench_function("winograd_16x32x32_to_32", |b| {
        b.iter(|| winograd_conv2d(black_box(&input), black_box(&weight), &bias, 1))
    });
}

fn bench_formats(c: &mut Criterion) {
    let dense: Vec<f32> = (0..4096)
        .map(|i| if i % 3 == 0 { (i as f32).sin() } else { 0.0 })
        .collect();
    c.bench_function("bitmask_encode_4096", |b| {
        b.iter(|| BitmaskVector::encode(black_box(&dense)))
    });
    c.bench_function("csc_encode_4096", |b| {
        b.iter(|| CscVector::encode(black_box(&dense), 4))
    });
    let a = BitmaskVector::encode(&dense);
    let other: Vec<f32> = (0..4096)
        .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
        .collect();
    let bvec = BitmaskVector::encode(&other);
    c.bench_function("bitmask_inner_join_4096", |b| {
        b.iter(|| black_box(&a).inner_join(black_box(&bvec)))
    });
}

fn bench_codebook(c: &mut Criterion) {
    let values: Vec<f32> = (0..8192)
        .map(|i| if i % 3 == 0 { 0.0 } else { ((i % 17) as f32 - 8.0) * 0.05 })
        .collect();
    c.bench_function("kmeans_codebook_8192_k32", |b| {
        b.iter(|| codebook::kmeans_codebook(black_box(&values), 32, 10))
    });
    let symbols: Vec<usize> = (0..8192).map(|i| i % 17).collect();
    c.bench_function("huffman_bits_8192", |b| {
        b.iter(|| codebook::huffman_bits(black_box(&symbols)))
    });
}

criterion_group!(
    benches,
    bench_conv2d,
    bench_matmul,
    bench_rle,
    bench_centro,
    bench_sparse_slice,
    bench_winograd,
    bench_formats,
    bench_codebook
);
criterion_main!(benches);
