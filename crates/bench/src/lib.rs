#![warn(missing_docs)]

//! Shared support for the table/figure harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index); this library holds the plumbing
//! they share: paper-reported reference numbers, table formatting, and the
//! standard evaluation run.
//!
//! The harnesses sit at the *top* of the workspace's lowering chain,
//! driving it end to end: catalog `ModelDesc` → `ModelIr` →
//! `LayerWorkload` → simulation → formatted table, all from the single
//! [`SEED`].

pub mod paper;
pub mod table;

use cscnn::models::{catalog, ModelDesc};
use cscnn::sim::{baselines, Accelerator, RunStats, Runner};

/// The workload seed used by every harness binary, so all tables/figures
/// come from the same synthesized workloads.
pub const SEED: u64 = 42;

/// The networks of the accelerator evaluation (Figs. 7–10), in plotting
/// order.
pub fn evaluation_models() -> Vec<ModelDesc> {
    catalog::evaluation_suite()
}

/// Runs the full 9-accelerator × N-model evaluation once.
/// Returns `[model][accelerator]` results in the paper's plotting order.
pub fn run_evaluation(models: &[ModelDesc]) -> (Vec<Box<dyn Accelerator>>, Vec<Vec<RunStats>>) {
    let runner = Runner::new(SEED);
    let accs = baselines::evaluation_accelerators();
    let results = runner
        .run_suite(&accs, models)
        .expect("simulation worker panicked");
    (accs, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_models_match_paper_suite() {
        let names: Vec<String> = evaluation_models().into_iter().map(|m| m.name).collect();
        assert!(names.contains(&"AlexNet".to_string()));
        assert!(names.contains(&"EfficientNet-B7".to_string()));
        assert_eq!(names.len(), 9);
    }
}
