//! Table V — area analysis of the SCNN and CSCNN PEs (45 nm).
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin table5
//! ```

use cscnn::sim::area::PeArea;
use cscnn::sim::ArchConfig;
use cscnn_bench::paper;
use cscnn_bench::table::Table;

fn main() {
    println!("== Table V: area analysis of SCNN and CSCNN PEs ==\n");
    let scnn = PeArea::scnn(&ArchConfig::paper_scnn());
    let cscnn = PeArea::cscnn(&ArchConfig::paper());
    let ours = |which: &str, a: &PeArea| -> f64 {
        match which {
            "Total" => a.total(),
            "MulArray" => a.mul_array,
            "IB+OB" => a.ib_ob,
            "WB" => a.wb,
            "AB" => a.ab,
            "Scatter" => a.scatter,
            "CCU" => a.ccu,
            "PPU" => a.ppu,
            _ => unreachable!("unknown component"),
        }
    };
    let mut t = Table::new(&[
        "component",
        "SCNN paper",
        "SCNN measured",
        "CSCNN paper",
        "CSCNN measured",
        "share",
    ]);
    for (name, scnn_ref, cscnn_ref) in paper::table5_reference() {
        let s = ours(name, &scnn);
        let c = ours(name, &cscnn);
        t.row(vec![
            name.to_string(),
            format!("{scnn_ref:.2} mm2"),
            format!("{s:.2} mm2"),
            format!("{cscnn_ref:.2} mm2"),
            format!("{c:.2} mm2"),
            format!("{:.1} %", 100.0 * c / cscnn.total()),
        ]);
    }
    t.print();
    let overhead = 100.0 * (cscnn.total() / scnn.total() - 1.0);
    println!("\nCSCNN PE area overhead over SCNN: {overhead:.1} %  (paper: 17.7 %)");
    println!("capacities: WB 16 KB->10 KB (halved weights), AB 6 KB->2x6 KB, 2x scatter.");
}
