//! §II-D — filter-parameterization comparison: centrosymmetric filters vs
//! smaller (`2×2`) filters vs upper-triangular filters at comparable
//! parameter counts.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin filter_shapes
//! ```
//!
//! The paper's claim to check: at equal effective parameters, the
//! zero-center centrosymmetric `3×3` (4 params, full receptive field)
//! outperforms the `2×2` filter (4 params, shrunken receptive field), and
//! plain centrosymmetric (5 params) outperforms upper-triangular (6
//! params).

use cscnn::nn::centrosymmetric;
use cscnn::nn::constraints::{
    apply_upper_triangular, apply_zero_center_centrosymmetric, FilterScheme,
};
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::models;
use cscnn::nn::trainer::{TrainConfig, Trainer};
use cscnn::nn::Network;
use cscnn_bench::table::Table;

fn main() {
    println!("== §II-D: filter parameterization comparison ==\n");
    let config = TrainConfig {
        epochs: 10,
        batch_size: 32,
        lr: 0.03,
        ..Default::default()
    };
    // Average over several seeds — the differences are small by design.
    let seeds = [1u64, 2, 3];
    let mut t = Table::new(&["scheme", "params/slice", "mean test accuracy"]);
    let schemes: Vec<(&str, FilterScheme)> = vec![
        ("full 3x3", FilterScheme::Full),
        ("centrosymmetric 3x3", FilterScheme::Centrosymmetric),
        (
            "centro 3x3, zero center",
            FilterScheme::CentrosymmetricZeroCenter,
        ),
        ("upper-triangular 3x3", FilterScheme::UpperTriangular),
        ("smaller 2x2", FilterScheme::Full),
    ];
    for (label, scheme) in schemes {
        let mut acc_sum = 0.0;
        for &seed in &seeds {
            let data = SyntheticImages::generate(1, 16, 16, 8, 60, 0.55, seed);
            let (train, test) = data.split(0.2);
            let mut net: Network = if label == "smaller 2x2" {
                models::tiny_cnn_2x2(1, 16, 16, 8, seed)
            } else {
                models::tiny_cnn(1, 16, 16, 8, seed)
            };
            match label {
                "centrosymmetric 3x3" => {
                    centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
                }
                "centro 3x3, zero center" => {
                    for conv in net.conv_layers_mut() {
                        apply_zero_center_centrosymmetric(conv);
                    }
                }
                "upper-triangular 3x3" => {
                    for conv in net.conv_layers_mut() {
                        apply_upper_triangular(conv);
                    }
                }
                _ => {}
            }
            let report = Trainer::new(config).fit(&mut net, &train, &test);
            acc_sum += report.final_test_accuracy;
        }
        let params = if label == "smaller 2x2" {
            scheme.params_per_slice(2, 2)
        } else {
            scheme.params_per_slice(3, 3)
        };
        t.row(vec![
            label.to_string(),
            params.to_string(),
            format!("{:.1} %", 100.0 * acc_sum / seeds.len() as f64),
        ]);
    }
    t.print();
    println!("\npaper's claim: centrosymmetric > smaller filters at equal parameters");
    println!("(receptive field), and > triangular at comparable parameters (coverage).");
    println!("At this proxy scale differences are small; the ordering is the check.");
}
