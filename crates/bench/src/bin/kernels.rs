//! Kernel timing sweep: naive reference vs blocked/threaded kernels.
//!
//! Times `matmul`/`conv2d`/`conv2d_grouped` at paper-relevant layer shapes
//! (AlexNet conv2, VGG conv3-scale, MobileNet depthwise + pointwise) plus a
//! full `mobile_cnn` training step, each in three configurations:
//!
//! * `naive` — the frozen reference kernels, selected through
//!   [`cscnn::tensor::kernels::set_reference_mode`] (the seed
//!   implementation this PR replaces);
//! * `blocked_1t` — the cache-blocked, register-tiled kernels pinned to a
//!   single thread;
//! * `blocked_mt` — the same kernels at the default thread count.
//!
//! All three configurations compute bit-identical results; only wall-clock
//! time differs. Plain timing (warm-up + wall-clock budget), no external
//! benchmark harness — consistent with `benches/*.rs`.
//!
//! Output: a human-readable table on stdout and a machine-readable
//! `BENCH_kernels.json` (schema `cscnn-bench-kernels-v1`). `--smoke` runs
//! tiny shapes with a tiny time budget and writes to
//! `target/BENCH_kernels_smoke.json` instead, so CI can exercise the
//! binary and the JSON schema without clobbering the committed full-run
//! numbers.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cscnn::json::{from_str, to_string_pretty, Value};
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::metrics::softmax_cross_entropy;
use cscnn::nn::models;
use cscnn::nn::optimizer::Sgd;
use cscnn::tensor::kernels::set_reference_mode;
use cscnn::tensor::{
    conv2d_grouped, matmul, matmul_at, matmul_bt, num_threads, reset_num_threads, set_num_threads,
    ConvScratch, ConvSpec, Tensor,
};

/// One measured workload: the same closure timed under all three kernel
/// configurations.
struct Sample {
    name: String,
    kind: &'static str,
    shape: String,
    naive_ms: f64,
    blocked_1t_ms: f64,
    blocked_mt_ms: f64,
}

impl Sample {
    fn speedup_1t(&self) -> f64 {
        self.naive_ms / self.blocked_1t_ms
    }

    fn speedup_mt(&self) -> f64 {
        self.naive_ms / self.blocked_mt_ms
    }
}

/// Mean wall-clock milliseconds per call: one warm-up call, then repeats
/// until `budget` elapses (always at least one timed call).
fn time_ms(budget: Duration, f: &mut dyn FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1_000.0 / f64::from(iters)
}

/// Times `f` under naive / blocked-1-thread / blocked-multithread kernels.
fn measure(
    name: &str,
    kind: &'static str,
    shape: String,
    budget: Duration,
    mt_threads: usize,
    f: &mut dyn FnMut(),
) -> Sample {
    set_reference_mode(true);
    set_num_threads(1);
    let naive_ms = time_ms(budget, f);
    set_reference_mode(false);
    let blocked_1t_ms = time_ms(budget, f);
    set_num_threads(mt_threads);
    let blocked_mt_ms = time_ms(budget, f);
    reset_num_threads();
    let sample = Sample {
        name: name.to_string(),
        kind,
        shape,
        naive_ms,
        blocked_1t_ms,
        blocked_mt_ms,
    };
    println!(
        "{:<28} {:>10.3} {:>12.3} {:>12.3} {:>8.2}x {:>8.2}x",
        sample.name,
        sample.naive_ms,
        sample.blocked_1t_ms,
        sample.blocked_mt_ms,
        sample.speedup_1t(),
        sample.speedup_mt(),
    );
    sample
}

/// Deterministic dense test tensor (no RNG state shared across entries).
fn filled(dims: &[usize], scale: f32) -> Tensor {
    Tensor::from_fn(dims, |i| ((i as f32) * scale).sin())
}

struct MatmulShape {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

struct ConvShape {
    name: &'static str,
    input: [usize; 4],
    filters: usize,
    kernel: usize,
    padding: usize,
    stride: usize,
    groups: usize,
    /// Also time forward + backward through a shared [`ConvScratch`].
    train: bool,
}

fn matmul_entries(smoke: bool, budget: Duration, mt: usize, out: &mut Vec<Sample>) {
    let shapes: &[MatmulShape] = if smoke {
        &[MatmulShape {
            name: "matmul_smoke",
            m: 24,
            k: 24,
            n: 24,
        }]
    } else {
        &[
            MatmulShape {
                name: "matmul_512",
                m: 512,
                k: 512,
                n: 512,
            },
            MatmulShape {
                name: "matmul_fc_alexnet",
                m: 64,
                k: 4096,
                n: 1000,
            },
        ]
    };
    for s in shapes {
        let a = filled(&[s.m, s.k], 1e-3);
        let b = filled(&[s.k, s.n], 2e-3);
        let at = filled(&[s.k, s.m], 1e-3);
        let bt = filled(&[s.n, s.k], 2e-3);
        let shape = format!("[{},{}]x[{},{}]", s.m, s.k, s.k, s.n);
        out.push(measure(
            s.name,
            "matmul",
            shape.clone(),
            budget,
            mt,
            &mut || {
                black_box(matmul(black_box(&a), black_box(&b)));
            },
        ));
        out.push(measure(
            &format!("{}_at", s.name),
            "matmul_at",
            shape.clone(),
            budget,
            mt,
            &mut || {
                black_box(matmul_at(black_box(&at), black_box(&b)));
            },
        ));
        out.push(measure(
            &format!("{}_bt", s.name),
            "matmul_bt",
            shape,
            budget,
            mt,
            &mut || {
                black_box(matmul_bt(black_box(&a), black_box(&bt)));
            },
        ));
    }
}

fn conv_entries(smoke: bool, budget: Duration, mt: usize, out: &mut Vec<Sample>) {
    let shapes: &[ConvShape] = if smoke {
        &[
            ConvShape {
                name: "conv_smoke",
                input: [1, 4, 10, 10],
                filters: 6,
                kernel: 3,
                padding: 1,
                stride: 1,
                groups: 1,
                train: true,
            },
            ConvShape {
                name: "depthwise_smoke",
                input: [2, 8, 8, 8],
                filters: 8,
                kernel: 3,
                padding: 1,
                stride: 1,
                groups: 8,
                train: false,
            },
        ]
    } else {
        &[
            ConvShape {
                name: "alexnet_conv2",
                input: [1, 96, 27, 27],
                filters: 256,
                kernel: 5,
                padding: 2,
                stride: 1,
                groups: 1,
                train: false,
            },
            ConvShape {
                name: "vgg_conv3",
                input: [1, 256, 56, 56],
                filters: 256,
                kernel: 3,
                padding: 1,
                stride: 1,
                groups: 1,
                train: true,
            },
            ConvShape {
                name: "mobilenet_dw_14",
                input: [4, 256, 14, 14],
                filters: 256,
                kernel: 3,
                padding: 1,
                stride: 1,
                groups: 256,
                train: false,
            },
            ConvShape {
                name: "mobilenet_pw_14",
                input: [4, 256, 14, 14],
                filters: 256,
                kernel: 1,
                padding: 0,
                stride: 1,
                groups: 1,
                train: false,
            },
        ]
    };
    for s in shapes {
        let spec = ConvSpec::new(s.kernel, s.kernel)
            .with_stride(s.stride)
            .with_padding(s.padding);
        let input = filled(&s.input, 1e-3);
        let weight = filled(
            &[s.filters, s.input[1] / s.groups, s.kernel, s.kernel],
            2e-3,
        );
        let bias = filled(&[s.filters], 1e-2);
        let shape = format!(
            "{:?} -> K={} {}x{} p{} s{} g{}",
            s.input, s.filters, s.kernel, s.kernel, s.padding, s.stride, s.groups
        );
        let kind = if s.groups > 1 {
            "conv2d_grouped"
        } else {
            "conv2d"
        };
        out.push(measure(
            s.name,
            kind,
            shape.clone(),
            budget,
            mt,
            &mut || {
                black_box(conv2d_grouped(
                    black_box(&input),
                    black_box(&weight),
                    &bias,
                    &spec,
                    s.groups,
                ));
            },
        ));
        if s.train {
            let (oh, ow) = spec.output_dim(s.input[2], s.input[3]);
            let grad_out = filled(&[s.input[0], s.filters, oh, ow], 3e-3);
            let mut scratch = ConvScratch::new();
            out.push(measure(
                &format!("{}_train", s.name),
                "conv_fwd_bwd",
                shape,
                budget,
                mt,
                &mut || {
                    black_box(scratch.forward(&input, &weight, &bias, &spec, s.groups));
                    black_box(scratch.backward(&input, &weight, &grad_out, &spec, s.groups));
                },
            ));
        }
    }
}

fn train_step_entry(smoke: bool, budget: Duration, mt: usize, out: &mut Vec<Sample>) {
    let (channels, h, w, classes, batch) = if smoke {
        (1, 8, 8, 2, 4)
    } else {
        (3, 32, 32, 5, 8)
    };
    let data = SyntheticImages::generate(channels, h, w, classes, batch, 0.12, cscnn_bench::SEED);
    let indices: Vec<usize> = (0..batch).collect();
    let (x, labels) = data.batch(&indices);
    let mut net = models::mobile_cnn(channels, h, w, classes, cscnn_bench::SEED);
    let mut opt = Sgd::new(0.9, 1e-4);
    out.push(measure(
        "mobile_cnn_train_step",
        "train_step",
        format!("mobile_cnn batch [{batch},{channels},{h},{w}]"),
        budget,
        mt,
        &mut || {
            let logits = net.forward(black_box(&x));
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            let mut params = net.params_mut();
            opt.step(&mut params, 1e-3);
        },
    ));
}

fn report(samples: &[Sample], smoke: bool, mt: usize) -> Value {
    let entries = samples
        .iter()
        .map(|s| {
            Value::Obj(vec![
                ("name".to_string(), Value::Str(s.name.clone())),
                ("kind".to_string(), Value::Str(s.kind.to_string())),
                ("shape".to_string(), Value::Str(s.shape.clone())),
                ("naive_ms".to_string(), Value::F64(s.naive_ms)),
                ("blocked_1t_ms".to_string(), Value::F64(s.blocked_1t_ms)),
                ("blocked_mt_ms".to_string(), Value::F64(s.blocked_mt_ms)),
                (
                    "speedup_blocked_1t_vs_naive".to_string(),
                    Value::F64(s.speedup_1t()),
                ),
                (
                    "speedup_blocked_mt_vs_naive".to_string(),
                    Value::F64(s.speedup_mt()),
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        (
            "schema".to_string(),
            Value::Str("cscnn-bench-kernels-v1".to_string()),
        ),
        (
            "mode".to_string(),
            Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        (
            "threads".to_string(),
            Value::Obj(vec![("blocked_mt".to_string(), Value::U64(mt as u64))]),
        ),
        ("entries".to_string(), Value::Arr(entries)),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(150)
    };
    // The multi-thread configuration uses the process default (the
    // validated CSCNN_NUM_THREADS, else available parallelism).
    reset_num_threads();
    let mt = num_threads();
    println!(
        "kernel sweep ({}), blocked_mt = {mt} thread(s)",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "workload", "naive ms", "blocked 1t", "blocked mt", "1t spdup", "mt spdup"
    );
    let mut samples = Vec::new();
    matmul_entries(smoke, budget, mt, &mut samples);
    conv_entries(smoke, budget, mt, &mut samples);
    train_step_entry(smoke, budget, mt, &mut samples);
    reset_num_threads();
    set_reference_mode(false);

    let json = report(&samples, smoke, mt);
    let text = to_string_pretty(&json).expect("report serializes");
    let path = if smoke {
        std::path::PathBuf::from("target/BENCH_kernels_smoke.json")
    } else {
        std::path::PathBuf::from("BENCH_kernels.json")
    };
    std::fs::write(&path, &text).expect("writing the bench report");
    // Round-trip self-check so schema rot fails the smoke run, not a
    // downstream consumer.
    let parsed: Value = from_str(&std::fs::read_to_string(&path).expect("re-reading report"))
        .expect("report parses back");
    let schema = parsed
        .get("schema")
        .and_then(Value::as_str)
        .expect("schema field present");
    assert_eq!(schema, "cscnn-bench-kernels-v1");
    println!("wrote {}", path.display());
}
