//! Fig. 10 — per-component energy breakdown of the SCNN and CSCNN PEs
//! (multiplier array, IB+OB, WB, AB, scatter crossbar, CCU, PPU).
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin fig10
//! ```

use cscnn::sim::{geomean, CartesianAccelerator, Runner};
use cscnn_bench::table::Table;
use cscnn_bench::{evaluation_models, SEED};

fn main() {
    println!("== Fig. 10: energy breakdown by PE component (SCNN vs CSCNN) ==\n");
    let runner = Runner::new(SEED);
    let models = evaluation_models();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for model in &models {
        let scnn = runner.run_model(&CartesianAccelerator::scnn(), model);
        let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), model);
        let es = scnn.energy_breakdown();
        let ec = cscnn.energy_breakdown();
        let components = [
            ("MulArray", es.mul_array_pj, ec.mul_array_pj),
            ("IB+OB", es.ib_ob_pj, ec.ib_ob_pj),
            ("WB", es.wb_pj, ec.wb_pj),
            ("AB", es.ab_pj, ec.ab_pj),
            ("Scatter", es.crossbar_pj, ec.crossbar_pj),
            ("CCU", es.ccu_pj, ec.ccu_pj),
            ("PPU", es.ppu_pj, ec.ppu_pj),
        ];
        println!("-- {} --", model.name);
        let mut t = Table::new(&["component", "SCNN (uJ)", "CSCNN (uJ)", "SCNN/CSCNN"]);
        for (i, (name, s, c)) in components.into_iter().enumerate() {
            ratios[i].push((s / c).max(1e-9));
            t.row(vec![
                name.to_string(),
                format!("{:.1}", s * 1e-6),
                format!("{:.1}", c * 1e-6),
                format!("{:.2}x", s / c),
            ]);
        }
        t.print();
        println!();
    }
    println!("geomean SCNN/CSCNN energy ratio per component:");
    let names = ["MulArray", "IB+OB", "WB", "AB", "Scatter", "CCU", "PPU"];
    let mut t = Table::new(&["component", "measured", "paper"]);
    let paper = ["1.5x", "1.9x", "3.4x", "1.3x", "-", "-", "-"];
    for (i, name) in names.iter().enumerate() {
        t.row(vec![
            name.to_string(),
            format!("{:.2}x", geomean(&ratios[i])),
            paper[i].to_string(),
        ]);
    }
    t.print();
    println!("\npaper's reading: the multiplier array saves 1.5x (reuse), WB 3.4x");
    println!("(halved, index-free dual weights); AB savings are hindered by the");
    println!("second accumulator buffer.");
}
