//! Table IV — qualitative comparison of the CNN accelerators.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin table4
//! ```

use cscnn::sim::baselines;
use cscnn_bench::table::Table;

fn main() {
    println!("== Table IV: comparison of the CNN accelerators ==\n");
    let mut t = Table::new(&[
        "accelerator",
        "compression",
        "sparsity",
        "inner spatial dataflow",
    ]);
    for acc in baselines::evaluation_accelerators() {
        let c = acc.characteristics();
        t.row(vec![
            acc.name().to_string(),
            c.compression.to_string(),
            c.sparsity.to_string(),
            c.dataflow.to_string(),
        ]);
    }
    t.print();
    println!("\n(CGNet and CirCNN are excluded from the quantitative runs, as in the");
    println!("paper: CGNet's layer-wise characteristics are unpublished and CirCNN's");
    println!("FFT datapath is incomparable at this granularity.)");
}
