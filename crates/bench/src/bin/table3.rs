//! Table III — ImageNet compression: accuracy and multiplication reduction
//! for nine models under Deep Compression, CSCNN, and CSCNN+Pruning.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin table3
//! ```
//!
//! Reductions are measured from the shape catalogs + calibrated profiles;
//! accuracy columns reproduce the paper's reported values (ImageNet
//! training is out of scope offline — DESIGN.md §2).

use cscnn::models::{catalog, CompressionScheme, ModelCompression};
use cscnn_bench::paper;
use cscnn_bench::table::{fmt_factor, fmt_pct, Table};

fn main() {
    println!("== Table III: compression methods on ImageNet ==\n");
    let mut t = Table::new(&[
        "model",
        "technique",
        "top-1 base",
        "top-1",
        "top-5 base",
        "top-5",
        "paper red.",
        "measured",
    ]);
    for row in paper::table3_rows() {
        let scheme = match row.technique {
            "Deep compression" => Some(CompressionScheme::DeepCompression),
            "CSCNN" => Some(CompressionScheme::Cscnn),
            "CSCNN+Pruning" => Some(CompressionScheme::CscnnPruning),
            _ => None,
        };
        let measured = scheme.and_then(|s| {
            catalog::by_name(row.model).map(|m| ModelCompression::new(m, s).reduction())
        });
        t.row(vec![
            row.model.to_string(),
            row.technique.to_string(),
            fmt_pct(row.top1_baseline),
            fmt_pct(row.top1),
            fmt_pct(row.top5_baseline),
            fmt_pct(row.top5),
            fmt_factor(row.mult_reduction),
            fmt_factor(measured),
        ]);
    }
    t.print();

    println!("\nnotes:");
    println!("  - pruned schemes are calibrated to the paper's overall reductions, so");
    println!("    'measured' matching 'paper' validates the calibration round-trips;");
    println!("  - unpruned CSCNN is *structural* (no free parameter): 3x3-dominated");
    println!("    models reach ~1.8x, bottleneck ResNets ~1.2x, and pointwise-dominated");
    println!("    ShuffleNet ~1.0x — Eq. 2 cannot compress 1x1 kernels, so the paper's");
    println!("    1.5-1.8x claims for those models are not reproducible from shapes");
    println!("    (see EXPERIMENTS.md).");
}
