//! Fig. 8 — layer-wise speedup over DCNN on AlexNet and VGG16 for SCNN,
//! SparTen, and CSCNN.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin fig8
//! ```
//!
//! The paper's qualitative reading to check: C1 of AlexNet (dense inputs,
//! stride 4) leaves the Cartesian-product accelerators *behind* DCNN; C2
//! (moderate density) shows CSCNN's ~2x reuse edge; the sparsest deep
//! layers show CSCNN ~ SparTen >> SCNN.

use cscnn::models::catalog;
use cscnn::sim::{baselines, Accelerator, CartesianAccelerator, Runner};
use cscnn_bench::table::Table;
use cscnn_bench::SEED;

fn main() {
    println!("== Fig. 8: layer-wise speedup over DCNN ==");
    let runner = Runner::new(SEED);
    for model in [catalog::alexnet(), catalog::vgg16()] {
        println!("\n-- {} --\n", model.name);
        let dcnn = runner.run_model(&baselines::dcnn(), &model);
        let contenders: Vec<(&str, Box<dyn Accelerator>)> = vec![
            ("SCNN", Box::new(CartesianAccelerator::scnn())),
            ("SparTen", Box::new(baselines::sparten())),
            ("CSCNN", Box::new(CartesianAccelerator::cscnn())),
        ];
        let runs: Vec<_> = contenders
            .iter()
            .map(|(_, acc)| runner.run_model(acc.as_ref(), &model))
            .collect();
        let mut t = Table::new(&["layer", "SCNN", "SparTen", "CSCNN"]);
        for (li, base_layer) in dcnn.layers.iter().enumerate() {
            // Fig. 8 plots conv layers only.
            if model.layers[li].kind == cscnn::models::LayerKind::FullyConnected {
                continue;
            }
            let mut cells = vec![base_layer.name.clone()];
            for run in &runs {
                cells.push(format!("{:.2}", base_layer.time_s / run.layers[li].time_s));
            }
            t.row(cells);
        }
        t.print();
    }
    println!("\nreading guide: AlexNet C1 < 1.0-ish for SCNN/CSCNN (stride-4 waste);");
    println!("C2 shows CSCNN's reuse gain; deep sparse layers: CSCNN ~ SparTen > SCNN.");
}
