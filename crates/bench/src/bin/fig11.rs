//! Fig. 11 — impact of the spatial tiling strategies:
//! (a) CSCNN with planar / output-channel / mixed tiling;
//! (b) SCNN with and without the tiling optimizations;
//! (c) SparTen with and without greedy balancing (its software analogue).
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin fig11
//! ```

use cscnn::models::catalog;
use cscnn::sim::tiling::TilingStrategy;
use cscnn::sim::{baselines, geomean, CartesianAccelerator, Runner};
use cscnn_bench::table::Table;
use cscnn_bench::{paper, SEED};

fn main() {
    let runner = Runner::new(SEED);
    let models = [
        catalog::lenet5(),
        catalog::convnet(),
        catalog::alexnet(),
        catalog::vgg16(),
    ];

    // (a) CSCNN under the three strategies.
    println!("== Fig. 11(a): CSCNN tiling strategies (speedup over planar) ==\n");
    let mut t = Table::new(&["model", "planar", "output-channel", "mixed"]);
    let mut oc_all = Vec::new();
    let mut mixed_all = Vec::new();
    for model in &models {
        let time = |s: TilingStrategy| {
            runner
                .run_model(&CartesianAccelerator::cscnn().with_tiling(s), model)
                .total_time_s()
        };
        let planar = time(TilingStrategy::Planar);
        let oc = planar / time(TilingStrategy::OutputChannel);
        let mixed = planar / time(TilingStrategy::Mixed);
        oc_all.push(oc);
        mixed_all.push(mixed);
        t.row(vec![
            model.name.clone(),
            "1.00".into(),
            format!("{oc:.2}"),
            format!("{mixed:.2}"),
        ]);
    }
    t.row(vec![
        "geomean".into(),
        "1.00".into(),
        format!("{:.2}", geomean(&oc_all)),
        format!("{:.2}", geomean(&mixed_all)),
    ]);
    t.print();
    println!(
        "\npaper: mixed = {:.2}x over planar, {:.2}x over output-channel.\n",
        paper::FIG11_MIXED_OVER_PLANAR,
        paper::FIG11_MIXED_OVER_PLANAR / paper::FIG11_MIXED_OVER_OUTPUT_CHANNEL
    );

    // (b) SCNN with the mixed-tiling optimization grafted on.
    println!("== Fig. 11(b): SCNN with/without tiling optimizations ==\n");
    let mut t = Table::new(&["model", "SCNN", "SCNN+mixed", "gain"]);
    let mut gains = Vec::new();
    for model in &models {
        let base = runner
            .run_model(&CartesianAccelerator::scnn(), model)
            .total_time_s();
        let tuned = runner
            .run_model(
                &CartesianAccelerator::scnn()
                    .with_tiling(TilingStrategy::Mixed)
                    .with_name("SCNN+mixed"),
                model,
            )
            .total_time_s();
        gains.push(base / tuned);
        t.row(vec![
            model.name.clone(),
            "1.00".into(),
            format!("{:.2}", base / tuned),
            format!("{:.2}x", base / tuned),
        ]);
    }
    t.print();
    println!(
        "\ngeomean gain {:.2}x (paper: {:.1}x); CSCNN still leads SCNN+mixed via reuse.\n",
        geomean(&gains),
        paper::FIG11_SCNN_TILING_GAIN
    );

    // (c) SparTen: greedy balancing is its software answer to the same
    // problem; compare the suite's SparTen against an unbalanced variant by
    // comparing CSCNN balancing effect as proxy plus SparTen's flat model.
    println!("== Fig. 11(c): SparTen vs tiling-optimized peers ==\n");
    let mut t = Table::new(&["model", "SparTen", "SCNN+mixed", "CSCNN"]);
    for model in &models {
        let sparten = runner
            .run_model(&baselines::sparten(), model)
            .total_time_s();
        let scnn_mixed = runner
            .run_model(
                &CartesianAccelerator::scnn().with_tiling(TilingStrategy::Mixed),
                model,
            )
            .total_time_s();
        let cscnn = runner
            .run_model(&CartesianAccelerator::cscnn(), model)
            .total_time_s();
        t.row(vec![
            model.name.clone(),
            "1.00".into(),
            format!("{:.2}", sparten / scnn_mixed),
            format!("{:.2}", sparten / cscnn),
        ]);
    }
    t.print();
    println!("\npaper's reading: SparTen benefits only marginally from tiling");
    println!("optimizations (its greedy balancing already addresses imbalance);");
    println!("CSCNN outperforms SCNN even after granting SCNN the mixed tiling.");
}
