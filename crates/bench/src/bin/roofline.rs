//! Roofline view of the evaluation: per-layer arithmetic intensity,
//! compute/memory boundedness, and multiplier utilization on the CSCNN
//! accelerator — explaining Fig. 7's per-network spread in roofline terms.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin roofline [model]
//! ```

use cscnn::models::catalog;
use cscnn::sim::dram::DramConfig;
use cscnn::sim::roofline::Roofline;
use cscnn::sim::{Accelerator, CartesianAccelerator, Runner};
use cscnn_bench::table::Table;
use cscnn_bench::SEED;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "alexnet".to_string());
    let Some(model) = catalog::by_name(&name) else {
        eprintln!("unknown model '{name}'");
        std::process::exit(1);
    };
    let acc = CartesianAccelerator::cscnn();
    let cfg = acc.config();
    let roofline = Roofline::of(&cfg, &DramConfig::default());
    println!("== roofline: {} on CSCNN ==", model.name);
    println!(
        "peak {:.1} GMAC/s, {:.1} GB/s, ridge at {:.1} MACs/byte\n",
        roofline.peak_macs_per_s / 1e9,
        roofline.peak_bytes_per_s / 1e9,
        roofline.ridge_intensity()
    );
    let runner = Runner::new(SEED);
    let stats = runner.run_model(&acc, &model);
    let mut t = Table::new(&[
        "layer",
        "MACs (M)",
        "DRAM (KB)",
        "intensity",
        "bound",
        "mult util",
    ]);
    for (layer, ls) in model.layers.iter().zip(&stats.layers) {
        let macs = ls.effective_mults as f64;
        let bytes = ls.counters.dram_bits as f64 / 8.0;
        let p = roofline.point(layer, macs, bytes);
        t.row(vec![
            layer.name.clone(),
            format!("{:.2}", macs / 1e6),
            format!("{:.1}", bytes / 1024.0),
            format!("{:.1}", p.intensity),
            if p.memory_bound { "memory" } else { "compute" }.to_string(),
            format!(
                "{:.0} %",
                100.0 * ls.multiplier_utilization(cfg.total_multipliers())
            ),
        ]);
    }
    t.print();
    println!("\nreading: FC layers sit left of the ridge (memory-bound — §III-E's");
    println!("'memory-hungry'); pruned conv layers sit right of it, where dataflow");
    println!("utilization, not bandwidth, decides Fig. 7.");
}
