//! Fig. 7 — speedup over the dense accelerator (DCNN) for all nine
//! accelerators across the benchmark networks, plus the abstract's
//! headline factors.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin fig7 [-- --edp]
//! ```

use cscnn::sim::geomean;
use cscnn_bench::paper;
use cscnn_bench::table::Table;
use cscnn_bench::{evaluation_models, run_evaluation};

fn main() {
    println!("== Fig. 7: speedup over DCNN ==\n");
    let models = evaluation_models();
    let (accs, results) = run_evaluation(&models);

    let mut header: Vec<&str> = vec!["model"];
    let names: Vec<&str> = accs.iter().map(|a| a.name()).collect();
    header.extend(&names);
    let mut t = Table::new(&header);
    let mut per_acc: Vec<Vec<f64>> = vec![Vec::new(); accs.len()];
    for row in &results {
        let dcnn = row[0].total_time_s();
        let mut cells = vec![row[0].model.clone()];
        for (i, stats) in row.iter().enumerate() {
            let speedup = dcnn / stats.total_time_s();
            per_acc[i].push(speedup);
            cells.push(format!("{speedup:.2}"));
        }
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string()];
    for v in &per_acc {
        cells.push(format!("{:.2}", geomean(v)));
    }
    t.row(cells);
    t.print();

    println!("\nheadline: CSCNN's geomean gain over each baseline (paper vs measured):\n");
    let mut h = Table::new(&[
        "baseline",
        "paper speedup",
        "measured",
        "paper energy",
        "measured ",
    ]);
    let cscnn_idx = accs.len() - 1;
    for (bi, (name, sp_ref, en_ref, _)) in paper::headline_factors().into_iter().enumerate() {
        let sp: Vec<f64> = results
            .iter()
            .map(|row| row[bi].total_time_s() / row[cscnn_idx].total_time_s())
            .collect();
        let en: Vec<f64> = results
            .iter()
            .map(|row| row[bi].total_on_chip_pj() / row[cscnn_idx].total_on_chip_pj())
            .collect();
        h.row(vec![
            name.to_string(),
            format!("{sp_ref:.1}x"),
            format!("{:.2}x", geomean(&sp)),
            format!("{en_ref:.1}x"),
            format!("{:.2}x", geomean(&en)),
        ]);
    }
    h.print();

    if std::env::args().any(|a| a == "--edp") {
        println!("\nEDP (energy-delay product) gains of CSCNN:\n");
        let mut e = Table::new(&["baseline", "paper EDP", "measured EDP"]);
        for (bi, (name, _, _, edp_ref)) in paper::headline_factors().into_iter().enumerate() {
            let edp: Vec<f64> = results
                .iter()
                .map(|row| row[bi].edp() / row[cscnn_idx].edp())
                .collect();
            e.row(vec![
                name.to_string(),
                edp_ref
                    .map(|x| format!("{x:.1}x"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.2}x", geomean(&edp)),
            ]);
        }
        e.print();
    } else {
        println!("\nrun with `-- --edp` for the EDP comparison (paper: 8.9x/2.8x/2.0x).");
    }
}
