//! Fig. 9 — on-chip energy of each accelerator, normalized to DCNN, split
//! into compute / memory / others (DRAM excluded, as in the paper).
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin fig9
//! ```

use cscnn::sim::geomean;
use cscnn_bench::table::Table;
use cscnn_bench::{evaluation_models, run_evaluation};

fn main() {
    println!("== Fig. 9: energy consumption normalized to DCNN ==");
    println!("(each cell: total = compute/memory/others shares)\n");
    let models = evaluation_models();
    let (accs, results) = run_evaluation(&models);

    for row in &results {
        println!("-- {} --", row[0].model);
        let dcnn = row[0].total_on_chip_pj();
        let mut t = Table::new(&["accelerator", "normalized", "compute", "memory", "others"]);
        for stats in row {
            let e = stats.energy_breakdown();
            let total = e.on_chip_pj();
            t.row(vec![
                stats.accelerator.clone(),
                format!("{:.3}", total / dcnn),
                format!("{:.0} %", 100.0 * e.compute_pj / total),
                format!("{:.0} %", 100.0 * e.memory_pj / total),
                format!("{:.0} %", 100.0 * e.others_pj / total),
            ]);
        }
        t.print();
        println!();
    }

    println!("geomean energy gain over DCNN per accelerator:");
    let mut t = Table::new(&["accelerator", "energy gain"]);
    for (i, acc) in accs.iter().enumerate() {
        let gains: Vec<f64> = results
            .iter()
            .map(|row| row[0].total_on_chip_pj() / row[i].total_on_chip_pj())
            .collect();
        t.row(vec![
            acc.name().to_string(),
            format!("{:.2}x", geomean(&gains)),
        ]);
    }
    t.print();
    println!("\npaper's headline: CSCNN saves 2.4x over DCNN, 1.7x over SCNN, 1.5x over");
    println!("SparTen; the GEMM accelerators pay ~2.5x extra memory energy (im2col).");
}
