//! Design-space sweeps around the paper's evaluated configuration —
//! ablations for the design choices DESIGN.md calls out: PE array scale,
//! multiplier-array aspect ratio, and the number of mixed-tiling
//! sub-arrays.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin sweep
//! ```

use cscnn::models::catalog;
use cscnn::sim::{ArchConfig, CartesianAccelerator, Runner};
use cscnn_bench::table::Table;
use cscnn_bench::SEED;

fn main() {
    let runner = Runner::new(SEED);
    let models = [
        catalog::alexnet(),
        catalog::vgg16_cifar(),
        catalog::resnet18(),
    ];

    // ---------------------------------------------------------------
    // 1) PE array scale (total multipliers grow 16x across the sweep).
    // ---------------------------------------------------------------
    println!("== sweep 1: PE array scale (CSCNN, mixed tiling) ==\n");
    let mut t = Table::new(&[
        "array",
        "mults",
        "AlexNet (ms)",
        "VGG16-C (ms)",
        "ResNet-18 (ms)",
    ]);
    for (rows, cols) in [(1usize, 1usize), (2, 2), (4, 4), (8, 8)] {
        let cfg = ArchConfig {
            pe_rows: rows,
            pe_cols: cols,
            mixed_subarrays: rows.max(1),
            ..ArchConfig::paper()
        };
        let acc = CartesianAccelerator::cscnn().with_config(cfg.clone());
        let mut cells = vec![
            format!("{rows}x{cols}"),
            cfg.total_multipliers().to_string(),
        ];
        for model in &models {
            let time = runner.run_model(&acc, model).total_time_s();
            cells.push(format!("{:.3}", time * 1e3));
        }
        t.row(cells);
    }
    t.print();
    println!("\nexpected: near-linear scaling until fragmentation/imbalance and the");
    println!("DRAM bound flatten the curve (small nets saturate first).\n");

    // ---------------------------------------------------------------
    // 2) Multiplier-array aspect ratio at a fixed 16-multiplier budget.
    // ---------------------------------------------------------------
    println!("== sweep 2: multiplier array aspect ratio (Px x Py = 16) ==\n");
    let mut t = Table::new(&["shape", "AlexNet (ms)", "VGG16-C (ms)", "ResNet-18 (ms)"]);
    for (px, py) in [(2usize, 8usize), (4, 4), (8, 2), (16, 1)] {
        let cfg = ArchConfig {
            mult_px: px,
            mult_py: py,
            ..ArchConfig::paper()
        };
        let acc = CartesianAccelerator::cscnn().with_config(cfg);
        let mut cells = vec![format!("{px}x{py}")];
        for model in &models {
            let time = runner.run_model(&acc, model).total_time_s();
            cells.push(format!("{:.3}", time * 1e3));
        }
        t.row(cells);
    }
    t.print();
    println!("\nexpected: square-ish arrays fragment least; a 16x1 array wastes");
    println!("weight-vector slots whenever a channel has <16 stored non-zeros.\n");

    // ---------------------------------------------------------------
    // 3) Mixed-tiling sub-array count at a 4x4 PE array.
    // ---------------------------------------------------------------
    println!("== sweep 3: mixed-tiling sub-arrays (4x4 PE array) ==\n");
    let mut t = Table::new(&[
        "sub-arrays",
        "AlexNet (ms)",
        "VGG16-C (ms)",
        "ResNet-18 (ms)",
    ]);
    for subarrays in [1usize, 2, 4, 8, 16] {
        let cfg = ArchConfig {
            pe_rows: 4,
            pe_cols: 4,
            mixed_subarrays: subarrays,
            ..ArchConfig::paper()
        };
        let acc = CartesianAccelerator::cscnn().with_config(cfg);
        let mut cells = vec![subarrays.to_string()];
        for model in &models {
            let time = runner.run_model(&acc, model).total_time_s();
            cells.push(format!("{:.3}", time * 1e3));
        }
        t.row(cells);
    }
    t.print();
    println!("\nexpected: nearly flat — the adaptive per-layer inner split (§III-C's");
    println!("layer-wise tile sizing) compensates for the sub-array choice; the rigid");
    println!("strategies in Fig. 11 show the raw effect this adaptivity removes.");
}
