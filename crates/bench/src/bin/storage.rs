//! Weight-storage comparison: Deep Compression's full stack (prune →
//! cluster → Huffman) vs centrosymmetric half-storage, on a trained proxy
//! network — quantifying the paper's "compressed by about 2× … does not
//! impose indexing overhead" storage claim next to the heavier-machinery
//! alternative.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin storage
//! ```

use cscnn::nn::centrosymmetric;
use cscnn::nn::codebook;
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::models;
use cscnn::nn::pruning;
use cscnn::nn::trainer::{TrainConfig, Trainer};
use cscnn::sparse::centro;
use cscnn_bench::table::Table;

fn main() {
    println!("== weight storage: Deep Compression stack vs centrosymmetric ==\n");
    let data = SyntheticImages::generate(3, 16, 16, 4, 80, 0.12, 77);
    let (train, test) = data.split(0.2);
    let config = TrainConfig {
        epochs: 6,
        batch_size: 32,
        lr: 0.05,
        ..Default::default()
    };

    // Branch A: Deep Compression (prune + cluster + Huffman).
    let mut dc_net = models::convnet_s(4, 77);
    let trainer = Trainer::new(config);
    let _ = trainer.fit(&mut dc_net, &train, &test);
    for conv in dc_net.conv_layers_mut() {
        pruning::prune_conv(conv, 0.35);
    }
    let _ = trainer.fit(&mut dc_net, &train, &test);
    let mut dense_bits = 0u64;
    let mut rle_bits = 0u64;
    let mut clustered_bits = 0u64;
    let mut huffman_bits = 0u64;
    for conv in dc_net.conv_layers_mut() {
        let r = codebook::storage_report(&conv.weight().value, 8, 15);
        dense_bits += r.dense_bits;
        rle_bits += r.pruned_rle_bits;
        clustered_bits += r.clustered_bits;
        huffman_bits += r.huffman_total_bits;
    }

    // Branch B: CSCNN (+ pruning) half storage, no dual indices.
    let mut cs_net = models::convnet_s(4, 77);
    let _ = trainer.fit(&mut cs_net, &train, &test);
    centrosymmetric::centrosymmetrize(&mut cs_net).expect("finite weights");
    let _ = trainer.fit(&mut cs_net, &train, &test);
    let mut cs_unique_bits = 0u64;
    for conv in cs_net.conv_layers_mut() {
        let dims = conv.weight().value.shape().dims().to_vec();
        let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
        let unique = centro::unique_weight_count(r, s) as u64;
        // Unpruned centrosymmetric: unique values, positional (no index).
        cs_unique_bits += (k * c) as u64 * unique * 16;
    }
    for conv in cs_net.conv_layers_mut() {
        pruning::prune_conv(conv, 0.5);
    }
    let _ = trainer.fit(&mut cs_net, &train, &test);
    let mut cs_pruned_bits = 0u64;
    for conv in cs_net.conv_layers_mut() {
        let dims = conv.weight().value.shape().dims().to_vec();
        let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
        let wv = conv.weight().value.as_slice();
        let positions = centro::unique_positions(r, s);
        let mut nnz = 0u64;
        for slice_idx in 0..k * c {
            let base = slice_idx * r * s;
            nnz += positions
                .iter()
                .filter(|&&(u, v)| wv[base + u * s + v] != 0.0)
                .count() as u64;
        }
        // Pruned centrosymmetric: RLE over the unique half (16-bit value +
        // 4-bit run); duals need no index at all.
        cs_pruned_bits += nnz * 20;
    }

    let mut t = Table::new(&["representation", "bits", "vs dense", "machinery"]);
    let row = |t: &mut Table, name: &str, bits: u64, machinery: &str| {
        t.row(vec![
            name.to_string(),
            bits.to_string(),
            format!("{:.2}x", dense_bits as f64 / bits as f64),
            machinery.to_string(),
        ]);
    };
    row(&mut t, "dense 16-bit", dense_bits, "-");
    row(&mut t, "DC: prune + RLE", rle_bits, "indices");
    row(
        &mut t,
        "DC: + 256-entry codebook",
        clustered_bits,
        "indices + codebook",
    );
    row(
        &mut t,
        "DC: + Huffman",
        huffman_bits,
        "indices + codebook + decoder",
    );
    row(
        &mut t,
        "CSCNN (unique half)",
        cs_unique_bits,
        "none (positional)",
    );
    row(
        &mut t,
        "CSCNN + pruning (RLE)",
        cs_pruned_bits,
        "indices (half as many)",
    );
    t.print();

    println!("\nreading: the centrosymmetric halving is free of decode machinery and");
    println!("composes with pruning; Deep Compression compresses further but needs a");
    println!("codebook lookup and a Huffman decoder in the critical path.");
}
