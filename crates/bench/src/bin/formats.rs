//! Sparse-format storage comparison across densities: SCNN/CSCNN's
//! zero-run-length encoding vs SparTen's bitmask vs EIE's CSC — the
//! metadata trade-off behind Table IV's machines, with the density
//! crossovers made explicit.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin formats
//! ```

use cscnn::sparse::formats::storage_bits_comparison;
use cscnn::sparse::sample;
use cscnn_bench::table::Table;

fn main() {
    println!("== sparse weight-storage formats vs density ==");
    println!("(bits per dense position; 16-bit values, 4-bit run/index fields)\n");
    let mut t = Table::new(&[
        "density",
        "dense",
        "RLE (SCNN)",
        "bitmask (SparTen)",
        "CSC (EIE)",
        "winner",
    ]);
    let mut rng = sample::rng(42);
    let len = 64 * 64;
    for density in [0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00] {
        let dense = sample::bernoulli_slice(&mut rng, 64, 64, density).to_dense();
        let c = storage_bits_comparison(&dense);
        let per = |bits: u64| bits as f64 / len as f64;
        let candidates = [
            ("RLE", c.rle_bits),
            ("bitmask", c.bitmask_bits),
            ("CSC", c.csc_bits),
            ("dense", c.dense_bits),
        ];
        let winner = candidates
            .iter()
            .min_by_key(|(_, b)| *b)
            .map(|(n, _)| *n)
            .expect("non-empty");
        t.row(vec![
            format!("{:.0} %", density * 100.0),
            format!("{:.2}", per(c.dense_bits)),
            format!("{:.2}", per(c.rle_bits)),
            format!("{:.2}", per(c.bitmask_bits)),
            format!("{:.2}", per(c.csc_bits)),
            winner.to_string(),
        ]);
    }
    t.print();
    println!("\nreading: run/index encodings (SCNN/CSCNN, EIE) win in the pruned-conv");
    println!("regime (~5-35 % density); SparTen's bitmask wins at moderate-to-high");
    println!("density; above ~80 % nothing beats dense. CSCNN additionally halves the");
    println!("*value* payload via dual weights — orthogonal to the index format.");
}
