//! Table II — CIFAR-10 compression: accuracy and multiplication reduction.
//!
//! ```sh
//! cargo run --release -p cscnn-bench --bin table2 [-- --train]
//! ```
//!
//! Multiplication reductions are *measured* from the shape catalogs and
//! calibrated sparsity profiles; accuracy columns show the paper's reported
//! values. With `--train`, scaled-down proxy models (ConvNet-S / VGG-S) are
//! additionally trained on synthetic data to measure the accuracy *deltas*
//! of the CSCNN pipeline (see DESIGN.md §2 for the dataset substitution).

use cscnn::models::{catalog, CompressionScheme, ModelCompression};
use cscnn::nn::datasets::SyntheticImages;
use cscnn::nn::models;
use cscnn::nn::pruning::PruneConfig;
use cscnn::nn::trainer::TrainConfig;
use cscnn::CompressionPipeline;
use cscnn_bench::paper;
use cscnn_bench::table::{fmt_factor, fmt_pct, Table};

fn main() {
    println!("== Table II: compression methods on CIFAR-10 ==\n");
    let mut t = Table::new(&[
        "model",
        "technique",
        "top-1 base",
        "top-1",
        "drop",
        "paper mult red.",
        "measured",
    ]);
    for row in paper::table2_rows() {
        let measured = catalog::by_name(row.model).map(|model| {
            let scheme = match row.technique {
                "Deep compression" => Some(CompressionScheme::DeepCompression),
                "CSCNN" => Some(CompressionScheme::Cscnn),
                "CSCNN+Pruning" => Some(CompressionScheme::CscnnPruning),
                _ => None,
            };
            scheme.map(|s| ModelCompression::new(model, s).reduction())
        });
        let drop = match (row.top1_baseline, row.top1) {
            (Some(b), Some(a)) => Some(b - a),
            _ => None,
        };
        t.row(vec![
            row.model.to_string(),
            row.technique.to_string(),
            fmt_pct(row.top1_baseline),
            fmt_pct(row.top1),
            fmt_pct(drop),
            fmt_factor(row.mult_reduction),
            fmt_factor(measured.flatten()),
        ]);
    }
    t.print();
    println!("\naccuracy columns: paper-reported; reductions: measured from shapes + profiles.");

    if std::env::args().any(|a| a == "--train") {
        proxy_training();
    } else {
        println!("run with `-- --train` for the proxy accuracy experiment.");
    }
}

/// Trains scaled-down CIFAR proxies through the full CSCNN pipeline and
/// reports the accuracy trajectory (baseline → projected → retrained →
/// pruned), the quantity Table II's accuracy columns characterize.
fn proxy_training() {
    println!("\n-- proxy accuracy experiment (synthetic data, scaled models) --\n");
    let mut t = Table::new(&[
        "proxy",
        "baseline",
        "projected",
        "retrained",
        "pruned",
        "kept",
        "mult red.",
    ]);
    // The deeper VGG-S needs a gentler learning rate to converge.
    type Case = (&'static str, f32, cscnn::nn::Network, Vec<(usize, usize)>);
    let cases: Vec<Case> = vec![
        (
            "ConvNet-S",
            0.05,
            models::convnet_s(4, 1),
            models::convnet_s_conv_inputs(),
        ),
        (
            "VGG-S",
            0.01,
            models::vgg_s(4, 2),
            models::vgg_s_conv_inputs(),
        ),
    ];
    for (name, lr, net, conv_inputs) in cases {
        let config = TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr,
            ..Default::default()
        };
        let data = SyntheticImages::generate(3, 16, 16, 4, 80, 0.12, 9);
        let report = CompressionPipeline::new(config)
            .with_pruning(PruneConfig {
                conv_keep: 0.5,
                fc_keep: 0.25,
            })
            .run(net, &data, &conv_inputs)
            .expect("network lowers");
        t.row(vec![
            name.to_string(),
            format!("{:.1} %", 100.0 * report.baseline_accuracy),
            format!("{:.1} %", 100.0 * report.post_projection_accuracy),
            format!("{:.1} %", 100.0 * report.retrained_accuracy),
            format!(
                "{:.1} %",
                100.0 * report.pruned_accuracy.unwrap_or(f64::NAN)
            ),
            format!("{:.0} %", 100.0 * report.kept_fraction),
            format!("{:.1}x", report.mults.pruned_reduction()),
        ]);
    }
    t.print();
    println!("\nexpected shape: projected << baseline; retrained ~= baseline (paper §II-B).");
}
