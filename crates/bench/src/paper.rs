//! Paper-reported reference numbers, transcribed from the tables and the
//! text of the evaluation section, so each harness binary can print
//! "paper vs measured" side by side.

/// One compression-table row (Tables II/III).
#[derive(Clone, Copy, Debug)]
pub struct CompressionRow {
    /// Model name (catalog alias).
    pub model: &'static str,
    /// Technique label as printed in the paper.
    pub technique: &'static str,
    /// Baseline top-1 accuracy (%), if reported.
    pub top1_baseline: Option<f64>,
    /// Technique top-1 accuracy (%), if reported.
    pub top1: Option<f64>,
    /// Baseline top-5 accuracy (%), if reported.
    pub top5_baseline: Option<f64>,
    /// Technique top-5 accuracy (%), if reported.
    pub top5: Option<f64>,
    /// Reported multiplication reduction (×), if reported.
    pub mult_reduction: Option<f64>,
}

const fn row(
    model: &'static str,
    technique: &'static str,
    top1_baseline: Option<f64>,
    top1: Option<f64>,
    top5_baseline: Option<f64>,
    top5: Option<f64>,
    mult_reduction: Option<f64>,
) -> CompressionRow {
    CompressionRow {
        model,
        technique,
        top1_baseline,
        top1,
        top5_baseline,
        top5,
        mult_reduction,
    }
}

/// Table II (CIFAR-10), paper rows.
pub fn table2_rows() -> Vec<CompressionRow> {
    vec![
        row(
            "ConvNet",
            "Deep compression",
            Some(75.8),
            Some(75.7),
            None,
            None,
            Some(3.8),
        ),
        row(
            "ConvNet",
            "CSCNN",
            Some(75.8),
            Some(75.8),
            None,
            None,
            Some(1.7),
        ),
        row(
            "ConvNet",
            "CSCNN+Pruning",
            Some(75.8),
            Some(75.6),
            None,
            None,
            Some(5.8),
        ),
        row(
            "VGG16-CIFAR",
            "Deep compression",
            Some(92.8),
            Some(92.8),
            None,
            None,
            Some(5.3),
        ),
        row(
            "VGG16-CIFAR",
            "CGNet",
            Some(92.8),
            Some(92.4),
            None,
            None,
            Some(5.1),
        ),
        row(
            "VGG16-CIFAR",
            "CSCNN",
            Some(92.8),
            Some(92.8),
            None,
            None,
            Some(1.8),
        ),
        row(
            "VGG16-CIFAR",
            "CSCNN+Pruning",
            Some(92.8),
            Some(92.5),
            None,
            None,
            Some(7.2),
        ),
        row(
            "WideResNet",
            "CSCNN",
            Some(95.8),
            Some(95.4),
            None,
            None,
            Some(1.6),
        ),
    ]
}

/// Table III (ImageNet), paper rows for the techniques we reproduce.
pub fn table3_rows() -> Vec<CompressionRow> {
    vec![
        row(
            "ResNet-18",
            "Deep compression",
            Some(69.2),
            Some(69.0),
            Some(88.8),
            Some(88.5),
            Some(2.0),
        ),
        row(
            "ResNet-18",
            "CSCNN",
            Some(69.2),
            Some(68.6),
            Some(88.8),
            Some(88.1),
            Some(1.7),
        ),
        row(
            "ResNet-18",
            "CSCNN+Pruning",
            Some(69.2),
            Some(68.4),
            Some(88.8),
            Some(87.9),
            Some(2.8),
        ),
        row(
            "VGG16",
            "Deep compression",
            Some(68.5),
            Some(68.8),
            Some(88.7),
            Some(89.1),
            Some(3.0),
        ),
        row(
            "VGG16",
            "CSCNN",
            Some(68.5),
            Some(68.6),
            Some(88.7),
            Some(88.7),
            Some(1.8),
        ),
        row(
            "VGG16",
            "CSCNN+Pruning",
            Some(68.5),
            Some(68.4),
            Some(88.7),
            Some(88.4),
            Some(4.3),
        ),
        row(
            "AlexNet",
            "Deep compression",
            Some(57.2),
            Some(57.2),
            Some(80.3),
            Some(80.3),
            Some(2.2),
        ),
        row(
            "AlexNet",
            "CSCNN",
            Some(57.2),
            Some(57.2),
            Some(80.3),
            Some(80.1),
            Some(1.5),
        ),
        row(
            "AlexNet",
            "CSCNN+Pruning",
            Some(57.2),
            Some(57.0),
            Some(80.3),
            Some(79.9),
            Some(2.9),
        ),
        row(
            "SqueezeNet",
            "Deep compression",
            Some(57.5),
            Some(57.5),
            Some(80.3),
            Some(80.3),
            Some(4.2),
        ),
        row(
            "SqueezeNet",
            "CSCNN",
            Some(57.5),
            Some(57.2),
            Some(80.3),
            Some(80.1),
            Some(1.7),
        ),
        row(
            "SqueezeNet",
            "CSCNN+Pruning",
            Some(57.5),
            Some(57.0),
            Some(80.3),
            Some(79.9),
            Some(5.9),
        ),
        row(
            "ResNeXt-101",
            "CSCNN",
            Some(80.9),
            Some(80.1),
            Some(95.6),
            Some(94.5),
            Some(1.6),
        ),
        row(
            "ResNet-50",
            "Deep compression",
            Some(75.3),
            Some(74.9),
            Some(92.2),
            Some(91.7),
            Some(2.2),
        ),
        row(
            "ResNet-50",
            "CSCNN",
            Some(75.3),
            Some(75.1),
            Some(92.2),
            Some(92.0),
            Some(1.6),
        ),
        row(
            "ResNet-50",
            "CSCNN+Pruning",
            Some(75.3),
            Some(74.8),
            Some(92.2),
            Some(91.5),
            Some(2.8),
        ),
        row(
            "ResNet-152",
            "Deep compression",
            Some(77.0),
            Some(76.8),
            Some(93.3),
            Some(93.0),
            Some(2.3),
        ),
        row(
            "ResNet-152",
            "CSCNN",
            Some(77.0),
            Some(76.9),
            Some(93.3),
            Some(93.1),
            Some(1.5),
        ),
        row(
            "ResNet-152",
            "CSCNN+Pruning",
            Some(77.0),
            Some(76.6),
            Some(93.3),
            Some(92.8),
            Some(2.7),
        ),
        row(
            "ShuffleNet-V2",
            "Deep compression",
            Some(77.2),
            Some(76.7),
            Some(93.3),
            Some(92.6),
            Some(2.2),
        ),
        row(
            "ShuffleNet-V2",
            "CSCNN",
            Some(77.2),
            Some(76.9),
            Some(93.3),
            Some(92.7),
            Some(1.8),
        ),
        row(
            "ShuffleNet-V2",
            "CSCNN+Pruning",
            Some(77.2),
            Some(76.5),
            Some(93.3),
            Some(92.4),
            Some(3.2),
        ),
        row(
            "EfficientNet-B7",
            "Deep compression",
            Some(84.3),
            Some(84.0),
            Some(97.0),
            Some(96.8),
            Some(3.1),
        ),
        row(
            "EfficientNet-B7",
            "CSCNN",
            Some(84.3),
            Some(84.1),
            Some(97.0),
            Some(96.8),
            Some(1.7),
        ),
        row(
            "EfficientNet-B7",
            "CSCNN+Pruning",
            Some(84.3),
            Some(83.8),
            Some(97.0),
            Some(96.6),
            Some(4.3),
        ),
    ]
}

/// Headline geomean factors from the abstract / §V: CSCNN's gain over each
/// baseline as `(name, speedup, energy, edp)`; `None` where the paper does
/// not report the number.
pub fn headline_factors() -> Vec<(&'static str, f64, f64, Option<f64>)> {
    vec![
        ("DCNN", 3.7, 2.4, Some(8.9)),
        ("Cnvlutin", 2.8, 2.1, None),
        ("Cambricon-X", 2.1, 1.9, None),
        ("SCNN", 1.6, 1.7, Some(2.8)),
        ("SparTen", 1.3, 1.5, Some(2.0)),
        ("Cambricon-S", 1.5, 1.6, None),
        ("SIGMA", 1.6, 2.1, None),
        ("SpArch", 1.6, 2.0, None),
    ]
}

/// Table V reference values: `(component, scnn_mm2, cscnn_mm2)`.
pub fn table5_reference() -> Vec<(&'static str, f64, f64)> {
    vec![
        ("Total", 1.07, 1.26),
        ("MulArray", 0.05, 0.05),
        ("IB+OB", 0.41, 0.41),
        ("WB", 0.22, 0.14),
        ("AB", 0.14, 0.27),
        ("Scatter", 0.11, 0.22),
        ("CCU", 0.03, 0.05),
        ("PPU", 0.13, 0.13),
    ]
}

/// Fig. 11(a) reference: mixed tiling improves on planar by 1.28× and on
/// output-channel tiling by 1.07× (geomean over LeNet-5, ConvNet, AlexNet,
/// VGG16).
pub const FIG11_MIXED_OVER_PLANAR: f64 = 1.28;
/// See [`FIG11_MIXED_OVER_PLANAR`].
pub const FIG11_MIXED_OVER_OUTPUT_CHANNEL: f64 = 1.07;
/// Fig. 11(b): SCNN gains 1.2× from the tiling optimizations.
pub const FIG11_SCNN_TILING_GAIN: f64 = 1.2;

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn::models::catalog;

    #[test]
    fn every_reference_model_resolves_in_the_catalog() {
        for row in table2_rows().iter().chain(table3_rows().iter()) {
            assert!(
                catalog::by_name(row.model).is_some(),
                "unknown model {}",
                row.model
            );
        }
    }

    #[test]
    fn headline_covers_all_eight_baselines() {
        assert_eq!(headline_factors().len(), 8);
    }
}
