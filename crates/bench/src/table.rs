//! Minimal fixed-width table printer for the harness binaries.

/// A fixed-width text table with a header row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            widths: header.iter().map(|h| h.len()).collect(),
            header: header.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header's column count.
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string (first column left-aligned, the rest
    /// right-aligned).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = w));
                } else {
                    line.push_str(&format!("  {:>width$}", c, width = w));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &self.widths));
        out.push('\n');
        let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &self.widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats an optional factor like `2.8x` or `-`.
pub fn fmt_factor(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.1}x"))
        .unwrap_or_else(|| "-".to_string())
}

/// Formats an optional percentage like `88.5` or `-`.
pub fn fmt_pct(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.1}"))
        .unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer-name".into(), "12.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].contains("12.5"));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters_handle_missing_values() {
        assert_eq!(fmt_factor(None), "-");
        assert_eq!(fmt_factor(Some(2.75)), "2.8x");
        assert_eq!(fmt_pct(Some(88.49)), "88.5");
    }
}
