//! Zero-run-length compressed vectors (the SCNN/CSCNN storage format).

use crate::cast::{to_index, to_run};

/// A compressed sparse vector storing non-zero values and the count of zeros
/// preceding each one.
///
/// SCNN (and therefore CSCNN) encodes weight and activation fibers as a
/// stream of `(zero_run, value)` pairs where `zero_run` is a small fixed-width
/// field. When an actual run of zeros exceeds the field's maximum, an explicit
/// zero *value* is inserted as a "zero placeholder" and the run continues —
/// exactly the overflow mechanism described in the SCNN paper. `max_run`
/// parameterizes the field width (`15` models a 4-bit index field).
///
/// # Example
///
/// ```
/// use cscnn_sparse::RleVector;
///
/// let rle = RleVector::encode(&[0.0; 20], 15);
/// // Trailing zeros are implicit: an all-zero vector stores nothing.
/// assert_eq!(rle.nnz(), 0);
/// assert_eq!(rle.stored_entries(), 0);
/// assert_eq!(rle.decode(), vec![0.0; 20]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RleVector {
    /// `(zeros_before, value)` pairs. `value` may be `0.0` only for run
    /// overflow placeholders.
    entries: Vec<(u8, f32)>,
    len: usize,
    max_run: u8,
}

impl RleVector {
    /// Encodes a dense slice with the given maximum zero-run field value.
    ///
    /// # Panics
    ///
    /// Panics if `max_run == 0`.
    pub fn encode(dense: &[f32], max_run: u8) -> Self {
        assert!(max_run > 0, "max_run must be positive");
        let mut entries = Vec::new();
        let mut run: usize = 0;
        for &v in dense {
            if v == 0.0 {
                run += 1;
                continue;
            }
            while run > usize::from(max_run) {
                entries.push((max_run, 0.0));
                run -= usize::from(max_run);
                // The placeholder itself occupies one element position? No:
                // a placeholder is a zero *value*, so it consumes one zero
                // from the run.
                run = run.saturating_sub(1);
            }
            entries.push((to_run(run), v));
            run = 0;
        }
        // Trailing zeros need no entries: the logical length is stored, so
        // decode() recovers them for free (as real hardware does — the fiber
        // length is known from the layer shape).
        RleVector {
            entries,
            len: dense.len(),
            max_run,
        }
    }

    /// Number of genuinely non-zero values.
    pub fn nnz(&self) -> usize {
        self.entries.iter().filter(|(_, v)| *v != 0.0).count()
    }

    /// Number of stored `(run, value)` entries, including overflow
    /// placeholders. This is what determines storage cost and the number of
    /// values streamed through a sparse PE's front end.
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }

    /// Logical (dense) length of the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the logical vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fraction of non-zero elements.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.len as f64
        }
    }

    /// Storage size in bits given a value width and the run-field width
    /// implied by `max_run`.
    pub fn storage_bits(&self, value_bits: usize) -> usize {
        let run_bits = 8 - to_index(self.max_run.leading_zeros());
        self.entries.len() * (value_bits + run_bits)
    }

    /// Iterates over `(dense_index, value)` for all non-zero values.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        let mut pos = 0usize;
        self.entries.iter().filter_map(move |&(run, v)| {
            pos += usize::from(run);
            let idx = pos;
            pos += 1;
            (v != 0.0).then_some((idx, v))
        })
    }

    /// Reconstructs the dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        for (idx, v) in self.iter() {
            out[idx] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_mixed_vector() {
        let dense = vec![0.0, 1.5, 0.0, 0.0, -2.0, 3.0, 0.0];
        let rle = RleVector::encode(&dense, 15);
        assert_eq!(rle.decode(), dense);
        assert_eq!(rle.nnz(), 3);
        assert!((rle.density() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_inserts_placeholders() {
        let mut dense = vec![0.0f32; 40];
        dense[39] = 9.0;
        let rle = RleVector::encode(&dense, 15);
        assert_eq!(rle.nnz(), 1);
        // 39 zeros with a 4-bit field need ⌈…⌉ placeholders.
        assert!(rle.stored_entries() > 1);
        assert_eq!(rle.decode(), dense);
    }

    #[test]
    fn all_zero_round_trip() {
        let dense = vec![0.0f32; 33];
        let rle = RleVector::encode(&dense, 15);
        assert_eq!(rle.nnz(), 0);
        assert_eq!(rle.stored_entries(), 0);
        assert_eq!(rle.decode(), dense);
    }

    #[test]
    fn iter_yields_indices_in_order() {
        let dense = vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0];
        let rle = RleVector::encode(&dense, 3);
        let got: Vec<_> = rle.iter().collect();
        assert_eq!(got, vec![(0, 1.0), (2, 2.0), (5, 3.0)]);
    }

    #[test]
    fn storage_bits_accounts_for_run_field() {
        let dense = vec![1.0, 2.0, 3.0];
        let rle = RleVector::encode(&dense, 15);
        // 3 entries × (16 value bits + 4 run bits).
        assert_eq!(rle.storage_bits(16), 60);
    }

    #[test]
    fn small_run_field_still_round_trips() {
        for gap in 0..20 {
            let mut dense = vec![0.0f32; gap + 1];
            dense[gap] = 1.0;
            let rle = RleVector::encode(&dense, 3);
            assert_eq!(rle.decode(), dense, "gap={gap}");
        }
    }
}
