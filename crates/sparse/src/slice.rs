//! Coordinate-list view of a 2-D tensor slice.

use crate::cast::to_coord;

/// A sparse 2-D slice (filter slice `R×S` or activation tile `H×W`) stored as
/// a coordinate list in row-major order.
///
/// # Example
///
/// ```
/// use cscnn_sparse::SparseSlice;
///
/// let s = SparseSlice::from_dense(&[0.0, 2.0, 0.0, 4.0], 2, 2);
/// assert_eq!(s.nnz(), 2);
/// assert_eq!(s.get(0, 1), 2.0);
/// assert_eq!(s.get(1, 0), 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SparseSlice {
    rows: usize,
    cols: usize,
    /// `(row, col, value)` with `value != 0`, sorted row-major.
    entries: Vec<(u16, u16, f32)>,
}

impl SparseSlice {
    /// Builds from a dense row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != rows * cols` or an extent exceeds `u16::MAX`.
    pub fn from_dense(dense: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(dense.len(), rows * cols, "dense buffer length mismatch");
        assert!(rows <= usize::from(u16::MAX) && cols <= usize::from(u16::MAX));
        let mut entries = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v != 0.0 {
                    entries.push((to_coord(r), to_coord(c), v));
                }
            }
        }
        SparseSlice {
            rows,
            cols,
            entries,
        }
    }

    /// Builds directly from sorted coordinate entries.
    ///
    /// # Panics
    ///
    /// Panics if entries are out of range, contain zeros, or are not sorted
    /// strictly row-major.
    pub fn from_entries(entries: Vec<(u16, u16, f32)>, rows: usize, cols: usize) -> Self {
        let mut prev: Option<(u16, u16)> = None;
        for &(r, c, v) in &entries {
            assert!(
                usize::from(r) < rows && usize::from(c) < cols,
                "entry out of range"
            );
            assert!(v != 0.0, "explicit zero entry");
            if let Some(p) = prev {
                assert!((r, c) > p, "entries not strictly sorted");
            }
            prev = Some((r, c));
        }
        SparseSlice {
            rows,
            cols,
            entries,
        }
    }

    /// Row extent.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column extent.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Logical element count (`rows * cols`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the slice has zero logical elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of non-zero elements.
    pub fn density(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.len() as f64
        }
    }

    /// Value at `(row, col)`, zero if absent.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.entries
            .binary_search_by_key(&(to_coord(row), to_coord(col)), |&(r, c, _)| (r, c))
            .map(|i| self.entries[i].2)
            .unwrap_or(0.0)
    }

    /// Iterates over non-zero `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (usize::from(r), usize::from(c), v))
    }

    /// Reconstructs the dense row-major buffer.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        for &(r, c, v) in &self.entries {
            out[usize::from(r) * self.cols + usize::from(c)] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip() {
        let dense = vec![0.0, 1.0, 0.0, 0.0, -2.0, 0.0];
        let s = SparseSlice::from_dense(&dense, 2, 3);
        assert_eq!(s.to_dense(), dense);
        assert_eq!(s.nnz(), 2);
        assert!((s.density() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn get_returns_zero_for_absent() {
        let s = SparseSlice::from_dense(&[1.0, 0.0, 0.0, 0.0], 2, 2);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(1, 1), 0.0);
    }

    #[test]
    fn iter_is_row_major() {
        let s = SparseSlice::from_dense(&[0.0, 1.0, 2.0, 0.0, 0.0, 3.0], 3, 2);
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(0, 1, 1.0), (1, 0, 2.0), (2, 1, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    fn from_entries_rejects_unsorted() {
        let _ = SparseSlice::from_entries(vec![(1, 0, 1.0), (0, 0, 2.0)], 2, 2);
    }
}
