//! Seeded random sparse tensor synthesis.
//!
//! The simulator evaluates accelerators on workloads whose *sparsity
//! structure* matters (per-slice non-zero counts drive load balance and
//! fragmentation) but whose numeric values do not affect timing. These
//! helpers synthesize slices at a target density with a seeded RNG so every
//! experiment is reproducible.

use cscnn_rng::rngs::StdRng;
use cscnn_rng::{Rng, SeedableRng};

use crate::cast::to_coord;
use crate::centro::{dual, unique_positions};
use crate::SparseSlice;

/// Deterministic RNG for workload synthesis; `seed` identifies the
/// experiment, so equal seeds give identical workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a `rows × cols` slice where each element is independently non-zero
/// with probability `density`; non-zero values are uniform in `[0.1, 1.0]`
/// (magnitude only — timing models never read values, but keeping them
/// non-zero and bounded makes dense/sparse cross-checks meaningful).
///
/// # Panics
///
/// Panics if `density` is not within `[0, 1]`.
pub fn bernoulli_slice<R: Rng>(rng: &mut R, rows: usize, cols: usize, density: f64) -> SparseSlice {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut entries = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(density) {
                entries.push((to_coord(r), to_coord(c), rng.gen_range(0.1..=1.0f32)));
            }
        }
    }
    SparseSlice::from_entries(entries, rows, cols)
}

/// Samples a slice with *exactly* `nnz` non-zeros placed uniformly at random.
///
/// # Panics
///
/// Panics if `nnz > rows * cols`.
pub fn exact_nnz_slice<R: Rng>(rng: &mut R, rows: usize, cols: usize, nnz: usize) -> SparseSlice {
    let len = rows * cols;
    assert!(nnz <= len, "nnz {nnz} exceeds slice size {len}");
    // Floyd's algorithm for a uniform k-subset.
    let mut chosen = std::collections::BTreeSet::new();
    for j in (len - nnz)..len {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let entries = chosen
        .into_iter()
        .map(|i| {
            (
                to_coord(i / cols),
                to_coord(i % cols),
                rng.gen_range(0.1..=1.0f32),
            )
        })
        .collect();
    SparseSlice::from_entries(entries, rows, cols)
}

/// Samples a *centrosymmetric* sparse `rows × cols` filter slice at target
/// density: each dual pair is jointly non-zero with probability `density`
/// (so the dense-position density equals `density` while only the canonical
/// half carries independent values — exactly the structure CSCNN pruning
/// produces, where dual weights are pruned together).
///
/// # Panics
///
/// Panics if `density` is not within `[0, 1]`.
pub fn centro_slice<R: Rng>(rng: &mut R, rows: usize, cols: usize, density: f64) -> SparseSlice {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut dense = vec![0.0f32; rows * cols];
    for (u, v) in unique_positions(rows, cols) {
        if rng.gen_bool(density) {
            let w = rng.gen_range(0.1..=1.0f32);
            let (du, dv) = dual(u, v, rows, cols);
            dense[u * cols + v] = w;
            dense[du * cols + dv] = w;
        }
    }
    SparseSlice::from_dense(&dense, rows, cols)
}

/// Samples `count` non-zero counts for slices of `len` elements at the given
/// density (binomial). Used when only the *counts* matter (activation tiles
/// of large layers) and materializing coordinates would be wasteful.
pub fn binomial_counts<R: Rng>(rng: &mut R, count: usize, len: usize, density: f64) -> Vec<usize> {
    (0..count)
        .map(|_| (0..len).filter(|_| rng.gen_bool(density)).count())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centro::is_centrosymmetric;

    #[test]
    fn bernoulli_density_is_close_on_average() {
        let mut r = rng(1);
        let s = bernoulli_slice(&mut r, 100, 100, 0.3);
        assert!((s.density() - 0.3).abs() < 0.03);
    }

    #[test]
    fn exact_nnz_is_exact() {
        let mut r = rng(2);
        for nnz in [0usize, 1, 7, 25] {
            let s = exact_nnz_slice(&mut r, 5, 5, nnz);
            assert_eq!(s.nnz(), nnz);
        }
    }

    #[test]
    fn centro_slice_is_centrosymmetric_in_pattern_and_value() {
        let mut r = rng(3);
        let s = centro_slice(&mut r, 3, 3, 0.6);
        let dense = s.to_dense();
        assert!(is_centrosymmetric(&dense, 3, 3, 0.0));
    }

    #[test]
    fn equal_seeds_reproduce_workloads() {
        let a = bernoulli_slice(&mut rng(42), 10, 10, 0.5);
        let b = bernoulli_slice(&mut rng(42), 10, 10, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn binomial_counts_have_right_mean() {
        let counts = binomial_counts(&mut rng(4), 200, 100, 0.4);
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((mean - 40.0).abs() < 2.0, "mean={mean}");
    }
}
