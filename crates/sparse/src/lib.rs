#![warn(missing_docs)]

//! # cscnn-sparse
//!
//! Compressed-sparse data structures shared by the training stack and the
//! accelerator simulator:
//!
//! - [`RleVector`] — the zero-run-length encoding SCNN and CSCNN use for
//!   weights and activations (non-zero values plus the number of zeros
//!   between adjacent non-zeros, with bounded run fields).
//! - [`SparseSlice`] — a coordinate-list view of one 2-D tensor slice
//!   (an `R×S` filter slice or a `W×H` activation tile).
//! - [`centro`] — centrosymmetric filter arithmetic: the dual-coordinate map
//!   `(u,v) ↔ (R-1-u, S-1-v)`, the Eq. 5 mean projection, and the
//!   half-storage compressed representation that gives CSCNN its ~2×
//!   weight-storage reduction without index overhead.
//! - [`sample`] — seeded random sparse tensor synthesis used to build
//!   simulator workloads at profiled densities.
//!
//! # Example
//!
//! ```
//! use cscnn_sparse::RleVector;
//!
//! let dense = [0.0, 0.0, 3.0, 0.0, 5.0];
//! let rle = RleVector::encode(&dense, 15);
//! assert_eq!(rle.nnz(), 2);
//! assert_eq!(rle.decode(), dense);
//! ```

pub mod centro;
mod encoding;
pub mod formats;
pub mod sample;
mod slice;

pub use encoding::RleVector;
pub use slice::SparseSlice;
