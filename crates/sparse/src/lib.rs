#![warn(missing_docs)]
// Coordinate/storage exactness: narrowing casts in this crate must go
// through `cast`'s checked helpers (see docs/static_analysis.md). The
// workspace sets these clippy lints to "warn"; the accounting crates
// escalate.
#![deny(clippy::cast_possible_truncation)]
#![deny(clippy::cast_sign_loss)]
#![deny(clippy::cast_possible_wrap)]

//! # cscnn-sparse
//!
//! Compressed-sparse data structures shared by the training stack and the
//! accelerator simulator:
//!
//! - [`RleVector`] — the zero-run-length encoding SCNN and CSCNN use for
//!   weights and activations (non-zero values plus the number of zeros
//!   between adjacent non-zeros, with bounded run fields).
//! - [`SparseSlice`] — a coordinate-list view of one 2-D tensor slice
//!   (an `R×S` filter slice or a `W×H` activation tile).
//! - [`centro`] — centrosymmetric filter arithmetic: the dual-coordinate map
//!   `(u,v) ↔ (R-1-u, S-1-v)`, the Eq. 5 mean projection, and the
//!   half-storage compressed representation that gives CSCNN its ~2×
//!   weight-storage reduction without index overhead.
//! - [`sample`] — seeded random sparse tensor synthesis used to build
//!   simulator workloads at profiled densities.
//!
//! In the workspace's lowering chain this crate serves the *last* hop: when
//! `cscnn-sim` lowers an annotated `ModelIr` node into a `LayerWorkload`,
//! the sparse filter and activation structure is synthesized and stored in
//! these representations.
//!
//! # Example
//!
//! ```
//! use cscnn_sparse::RleVector;
//!
//! let dense = [0.0, 0.0, 3.0, 0.0, 5.0];
//! let rle = RleVector::encode(&dense, 15);
//! assert_eq!(rle.nnz(), 2);
//! assert_eq!(rle.decode(), dense);
//! ```

pub mod cast;
pub mod centro;
mod encoding;
pub mod formats;
pub mod sample;
mod slice;

pub use encoding::RleVector;
pub use slice::SparseSlice;
