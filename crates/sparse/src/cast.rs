//! Checked narrowing conversions for the sparse data structures.
//!
//! The same policy as `cscnn-sim`'s `util` module (see
//! `docs/static_analysis.md`): bare `as` narrowing casts are banned in this
//! crate by the `no-narrowing-cast` rule of `cscnn-lint`. Conversions go
//! through `try_from`-based helpers that panic on out-of-range values in
//! debug builds and saturate in release builds, so malformed sizes can
//! never silently wrap a coordinate or a storage count.
//!
//! This file is the one place in `cscnn-sparse` allowed to write the raw
//! casts (it is the allowlisted implementation of the rule).
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

/// Narrows to the `u16` coordinate width used by [`crate::SparseSlice`].
#[inline]
pub fn to_coord<T: TryInto<u16>>(x: T) -> u16 {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "coordinate out of u16 range");
            u16::MAX
        }
    }
}

/// Narrows to the `u8` zero-run / relative-index field width used by the
/// compressed encodings.
#[inline]
pub fn to_run<T: TryInto<u8>>(x: T) -> u8 {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "run field out of u8 range");
            u8::MAX
        }
    }
}

/// Converts an integer quantity into a `u64` storage-bit count.
#[inline]
pub fn to_bits<T: TryInto<u64>>(x: T) -> u64 {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "bit count out of u64 range");
            u64::MAX
        }
    }
}

/// Converts an integer quantity into a `usize` index or extent.
#[inline]
pub fn to_index<T: TryInto<usize>>(x: T) -> usize {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "index out of usize range");
            usize::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact_in_range() {
        assert_eq!(to_coord(65_535usize), 65_535);
        assert_eq!(to_run(255usize), 255);
        assert_eq!(to_bits(7usize), 7);
        assert_eq!(to_index(9u32), 9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of u8 range")]
    fn out_of_range_run_panics_in_debug() {
        let _ = to_run(256usize);
    }
}
