//! The sparse storage formats of the baseline accelerators.
//!
//! Table IV's machines differ not just in dataflow but in how they encode
//! sparsity; storage efficiency drives both their DRAM traffic and their
//! on-chip metadata energy:
//!
//! - [`crate::RleVector`] — SCNN/CSCNN's zero-run-length format
//!   (value + small run field per non-zero).
//! - [`BitmaskVector`] — SparTen's format: one presence bit per *dense*
//!   position plus packed non-zero values.
//! - [`CscVector`] — EIE's compressed-sparse-column style: packed non-zero
//!   values plus a 4-bit relative index per non-zero (with zero-padding
//!   entries when a gap exceeds the field, exactly like EIE).
//!
//! [`storage_bits_comparison`] computes the storage of all three at a given
//! density, exposing the crossover SparTen's paper argues about: bitmasks
//! win at moderate density (1 bit/position beats 4+ bits/non-zero), run
//! encodings win when very sparse.

use crate::cast::{to_bits, to_run};
use crate::RleVector;

/// SparTen-style bitmask encoding: a dense presence bitmap plus the packed
/// non-zero values.
#[derive(Clone, Debug, PartialEq)]
pub struct BitmaskVector {
    mask: Vec<bool>,
    values: Vec<f32>,
}

impl BitmaskVector {
    /// Encodes a dense slice.
    pub fn encode(dense: &[f32]) -> Self {
        let mask: Vec<bool> = dense.iter().map(|&v| v != 0.0).collect();
        let values = dense.iter().copied().filter(|&v| v != 0.0).collect();
        BitmaskVector { mask, values }
    }

    /// Number of non-zero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Logical (dense) length.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// `true` if the logical vector is empty.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Storage in bits: one mask bit per dense position + packed values.
    pub fn storage_bits(&self, value_bits: usize) -> u64 {
        to_bits(self.mask.len()) + to_bits(self.values.len() * value_bits)
    }

    /// Reconstructs the dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let mut vi = 0;
        self.mask
            .iter()
            .map(|&m| {
                if m {
                    let v = self.values[vi];
                    vi += 1;
                    v
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// The inner-join primitive SparTen builds on: positions where both
    /// vectors are non-zero (AND of the bitmasks), as (self_idx, other_idx)
    /// pairs into the packed value arrays.
    ///
    /// # Panics
    ///
    /// Panics if the logical lengths differ.
    pub fn inner_join(&self, other: &BitmaskVector) -> Vec<(usize, usize)> {
        assert_eq!(self.len(), other.len(), "inner join needs equal lengths");
        let mut pairs = Vec::new();
        let mut si = 0;
        let mut oi = 0;
        for i in 0..self.mask.len() {
            let a = self.mask[i];
            let b = other.mask[i];
            if a && b {
                pairs.push((si, oi));
            }
            si += usize::from(a);
            oi += usize::from(b);
        }
        pairs
    }
}

/// EIE-style compressed storage: packed non-zero values with a bounded
/// relative index per entry; gaps larger than the field insert explicit
/// zero padding entries (as in the EIE paper).
#[derive(Clone, Debug, PartialEq)]
pub struct CscVector {
    /// `(relative_gap, value)`; `value == 0.0` marks a padding entry.
    entries: Vec<(u8, f32)>,
    len: usize,
    index_bits: u32,
}

impl CscVector {
    /// Encodes a dense slice with `index_bits`-wide relative indices
    /// (EIE used 4).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 8.
    pub fn encode(dense: &[f32], index_bits: u32) -> Self {
        assert!((1..=8).contains(&index_bits), "index field of 1-8 bits");
        let max_gap = (1u32 << index_bits) - 1;
        let mut entries = Vec::new();
        let mut gap = 0u32;
        for &v in dense {
            if v == 0.0 {
                gap += 1;
                if gap > max_gap {
                    entries.push((to_run(max_gap), 0.0));
                    gap = 0;
                }
                continue;
            }
            entries.push((to_run(gap), v));
            gap = 0;
        }
        CscVector {
            entries,
            len: dense.len(),
            index_bits,
        }
    }

    /// Genuine non-zeros (padding excluded).
    pub fn nnz(&self) -> usize {
        self.entries.iter().filter(|(_, v)| *v != 0.0).count()
    }

    /// Stored entries including padding.
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the logical vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Storage in bits.
    pub fn storage_bits(&self, value_bits: usize) -> u64 {
        to_bits(self.entries.len() * (value_bits + crate::cast::to_index(self.index_bits)))
    }

    /// Reconstructs the dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        let mut pos = 0usize;
        for &(gap, v) in &self.entries {
            pos += usize::from(gap);
            if v != 0.0 {
                out[pos] = v;
            }
            pos += 1;
        }
        out
    }
}

/// Storage (bits) of the three formats for the same dense data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FormatComparison {
    /// SCNN/CSCNN zero-run-length.
    pub rle_bits: u64,
    /// SparTen bitmask.
    pub bitmask_bits: u64,
    /// EIE CSC.
    pub csc_bits: u64,
    /// Uncompressed.
    pub dense_bits: u64,
}

/// Encodes `dense` in all three formats at 16-bit values / 4-bit indices.
pub fn storage_bits_comparison(dense: &[f32]) -> FormatComparison {
    let rle = RleVector::encode(dense, 15);
    let bm = BitmaskVector::encode(dense);
    let csc = CscVector::encode(dense, 4);
    FormatComparison {
        rle_bits: to_bits(rle.storage_bits(16)),
        bitmask_bits: bm.storage_bits(16),
        csc_bits: csc.storage_bits(16),
        dense_bits: to_bits(dense.len() * 16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample;

    #[test]
    fn bitmask_round_trips() {
        let dense = vec![0.0, 1.5, 0.0, 0.0, -2.0, 3.0];
        let bm = BitmaskVector::encode(&dense);
        assert_eq!(bm.decode(), dense);
        assert_eq!(bm.nnz(), 3);
        // 6 mask bits + 3×16 value bits.
        assert_eq!(bm.storage_bits(16), 6 + 48);
    }

    #[test]
    fn csc_round_trips_with_padding() {
        let mut dense = vec![0.0f32; 40];
        dense[0] = 1.0;
        dense[39] = 2.0; // gap of 38 > 15 → padding entries
        let csc = CscVector::encode(&dense, 4);
        assert_eq!(csc.decode(), dense);
        assert_eq!(csc.nnz(), 2);
        assert!(csc.stored_entries() > 2, "padding inserted");
    }

    #[test]
    fn inner_join_finds_matching_positions() {
        let a = BitmaskVector::encode(&[1.0, 0.0, 2.0, 3.0, 0.0]);
        let b = BitmaskVector::encode(&[0.0, 5.0, 6.0, 7.0, 8.0]);
        let pairs = a.inner_join(&b);
        // Matches at dense positions 2 and 3.
        assert_eq!(pairs, vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn format_crossover_matches_the_literature() {
        // Moderately sparse (50 %): bitmask wins (1 bit/position beats
        // 4 bits/nnz when nnz is half of positions… plus equal value bits).
        let mut rng = sample::rng(5);
        let moderate = sample::bernoulli_slice(&mut rng, 32, 32, 0.5).to_dense();
        let m = storage_bits_comparison(&moderate);
        assert!(m.bitmask_bits < m.rle_bits, "bitmask wins at 50%: {m:?}");
        assert!(m.bitmask_bits < m.dense_bits);
        // Sparse (12 %): per-non-zero encodings win — this is the regime
        // pruned conv layers live in. (At *extreme* sparsity the 4-bit run
        // field overflows into padding entries and the bitmask catches up
        // again; a wider run field moves that boundary.)
        let sparse = sample::bernoulli_slice(&mut rng, 32, 32, 0.12).to_dense();
        let s = storage_bits_comparison(&sparse);
        assert!(s.rle_bits < s.bitmask_bits, "rle wins at 12%: {s:?}");
        assert!(s.csc_bits < s.bitmask_bits);
    }

    #[test]
    fn all_formats_agree_on_random_data() {
        let mut rng = sample::rng(6);
        for density in [0.1, 0.4, 0.9] {
            let dense = sample::bernoulli_slice(&mut rng, 16, 16, density).to_dense();
            assert_eq!(BitmaskVector::encode(&dense).decode(), dense);
            assert_eq!(CscVector::encode(&dense, 4).decode(), dense);
            assert_eq!(RleVector::encode(&dense, 15).decode(), dense);
        }
    }
}
