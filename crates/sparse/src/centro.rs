//! Centrosymmetric filter arithmetic (paper §II).
//!
//! A filter slice `W` of size `R×S` is *centrosymmetric* when
//! `W(u, v) == W(R-1-u, S-1-v)` for all positions (Eq. 2). The pair of
//! positions `(u,v)` and `(R-1-u, S-1-v)` are called *dual weights*; for odd
//! `R·S` the central position is its own dual.
//!
//! This module provides the dual-coordinate map, the canonical "unique half"
//! enumeration used by the compressed representation, the Eq. 5 mean
//! projection used to initialize CSCNN training, and the Eq. 7 gradient tying
//! used during retraining.

/// The dual coordinate of `(u, v)` in an `r × s` slice: `(r-1-u, s-1-v)`.
///
/// # Panics
///
/// Panics (in debug builds) when the coordinate is out of range.
#[inline]
pub fn dual(u: usize, v: usize, r: usize, s: usize) -> (usize, usize) {
    debug_assert!(u < r && v < s, "coordinate ({u},{v}) out of {r}x{s}");
    (r - 1 - u, s - 1 - v)
}

/// `true` when `(u, v)` is its own dual (the center of an odd-sized slice).
#[inline]
pub fn is_self_dual(u: usize, v: usize, r: usize, s: usize) -> bool {
    dual(u, v, r, s) == (u, v)
}

/// Number of independent weights in a centrosymmetric `r × s` slice:
/// `⌈r·s / 2⌉`.
pub fn unique_weight_count(r: usize, s: usize) -> usize {
    (r * s).div_ceil(2)
}

/// Enumerates the canonical half of an `r × s` slice: every position whose
/// row-major linear index is ≤ its dual's. The list has
/// [`unique_weight_count`] entries and is in row-major order.
pub fn unique_positions(r: usize, s: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(unique_weight_count(r, s));
    for u in 0..r {
        for v in 0..s {
            let (du, dv) = dual(u, v, r, s);
            if (u, v) <= (du, dv) {
                out.push((u, v));
            }
        }
    }
    out
}

/// Checks the centrosymmetric constraint (Eq. 2) within `tol`.
///
/// # Panics
///
/// Panics if `dense.len() != r * s`.
pub fn is_centrosymmetric(dense: &[f32], r: usize, s: usize, tol: f32) -> bool {
    assert_eq!(dense.len(), r * s, "slice length mismatch");
    unique_positions(r, s).iter().all(|&(u, v)| {
        let (du, dv) = dual(u, v, r, s);
        (dense[u * s + v] - dense[du * s + dv]).abs() <= tol
    })
}

/// Eq. 5 projection: replaces each dual-weight pair by its mean, producing
/// the centrosymmetric initialization of CSCNN training.
///
/// # Panics
///
/// Panics if `dense.len() != r * s`.
pub fn project_mean(dense: &[f32], r: usize, s: usize) -> Vec<f32> {
    assert_eq!(dense.len(), r * s, "slice length mismatch");
    let mut out = dense.to_vec();
    for (u, v) in unique_positions(r, s) {
        let (du, dv) = dual(u, v, r, s);
        let m = 0.5 * (dense[u * s + v] + dense[du * s + dv]);
        out[u * s + v] = m;
        out[du * s + dv] = m;
    }
    // Postcondition (Eq. 2): the projection must land exactly on the
    // centrosymmetric subspace — both members of a pair were assigned the
    // same `m`, so exact equality is required, not a tolerance.
    debug_assert!(
        is_centrosymmetric(&out, r, s, 0.0),
        "project_mean produced a non-centrosymmetric slice"
    );
    out
}

/// Eq. 7 gradient tying: sets each gradient (and its dual) to half the sum of
/// the pair, making the gradient centrosymmetric. Updating both tied copies
/// with this averaged value is equivalent to updating one shared weight with
/// the full chain-rule sum.
///
/// # Panics
///
/// Panics if `grad.len() != r * s`.
pub fn tie_gradients(grad: &mut [f32], r: usize, s: usize) {
    assert_eq!(grad.len(), r * s, "gradient length mismatch");
    for (u, v) in unique_positions(r, s) {
        let (du, dv) = dual(u, v, r, s);
        let m = 0.5 * (grad[u * s + v] + grad[du * s + dv]);
        grad[u * s + v] = m;
        grad[du * s + dv] = m;
    }
    // Postcondition (Eq. 7): a tied gradient is itself centrosymmetric, so
    // updates can never push a filter off the constraint surface.
    debug_assert!(
        is_centrosymmetric(grad, r, s, 0.0),
        "tie_gradients produced a non-centrosymmetric gradient"
    );
}

/// Compressed storage for one centrosymmetric `r × s` filter slice: only the
/// canonical half is stored, in [`unique_positions`] order.
///
/// Because the mapping from stored index to both dense coordinates is purely
/// positional, no per-weight index metadata is needed — the property the
/// paper highlights ("it does not impose indexing overhead").
///
/// # Example
///
/// ```
/// use cscnn_sparse::centro::CentroFilter;
///
/// let dense = vec![1.0, 2.0, 3.0, 4.0, 5.0, 4.0, 3.0, 2.0, 1.0];
/// let cf = CentroFilter::from_dense(&dense, 3, 3).unwrap();
/// assert_eq!(cf.stored_len(), 5);
/// assert_eq!(cf.expand(), dense);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CentroFilter {
    rows: usize,
    cols: usize,
    half: Vec<f32>,
}

impl CentroFilter {
    /// Compresses a dense slice, verifying the constraint first.
    ///
    /// Returns `None` when the slice is not centrosymmetric (within
    /// `1e-6`), in which case it cannot be stored in half form.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != rows * cols`.
    pub fn from_dense(dense: &[f32], rows: usize, cols: usize) -> Option<Self> {
        if !is_centrosymmetric(dense, rows, cols, 1e-6) {
            return None;
        }
        let half = unique_positions(rows, cols)
            .into_iter()
            .map(|(u, v)| dense[u * cols + v])
            .collect();
        Some(CentroFilter { rows, cols, half })
    }

    /// Builds from already-unique values in [`unique_positions`] order.
    ///
    /// # Panics
    ///
    /// Panics if `half.len() != unique_weight_count(rows, cols)`.
    pub fn from_half(half: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(
            half.len(),
            unique_weight_count(rows, cols),
            "half-storage length mismatch"
        );
        CentroFilter { rows, cols, half }
    }

    /// Number of stored (independent) weights.
    pub fn stored_len(&self) -> usize {
        self.half.len()
    }

    /// Row extent of the dense slice.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column extent of the dense slice.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The stored canonical-half values.
    pub fn half(&self) -> &[f32] {
        &self.half
    }

    /// Number of stored weights that are non-zero (pruning-aware).
    pub fn stored_nnz(&self) -> usize {
        self.half.iter().filter(|v| **v != 0.0).count()
    }

    /// Expands back to the dense `rows × cols` slice.
    pub fn expand(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for ((u, v), &w) in unique_positions(self.rows, self.cols)
            .into_iter()
            .zip(&self.half)
        {
            let (du, dv) = dual(u, v, self.rows, self.cols);
            out[u * self.cols + v] = w;
            out[du * self.cols + dv] = w;
        }
        // Half-form storage is centrosymmetric by construction (Eq. 2);
        // verify the positional expansion preserved that.
        debug_assert!(
            is_centrosymmetric(&out, self.rows, self.cols, 0.0),
            "expanded CentroFilter violates W(u,v) == W(R-1-u,S-1-v)"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_is_involutive() {
        for r in 1..=5 {
            for s in 1..=5 {
                for u in 0..r {
                    for v in 0..s {
                        let (du, dv) = dual(u, v, r, s);
                        assert_eq!(dual(du, dv, r, s), (u, v));
                    }
                }
            }
        }
    }

    #[test]
    fn unique_count_matches_formula() {
        assert_eq!(unique_weight_count(3, 3), 5);
        assert_eq!(unique_weight_count(2, 2), 2);
        assert_eq!(unique_weight_count(5, 5), 13);
        assert_eq!(unique_weight_count(1, 1), 1);
        for r in 1..=7 {
            for s in 1..=7 {
                assert_eq!(unique_positions(r, s).len(), unique_weight_count(r, s));
            }
        }
    }

    #[test]
    fn center_of_odd_slice_is_self_dual() {
        assert!(is_self_dual(1, 1, 3, 3));
        assert!(!is_self_dual(0, 0, 3, 3));
        // Even slices have no self-dual position.
        for u in 0..2 {
            for v in 0..2 {
                assert!(!is_self_dual(u, v, 2, 2));
            }
        }
    }

    #[test]
    fn projection_produces_centrosymmetric_slice() {
        let dense: Vec<f32> = (0..9).map(|x| x as f32).collect();
        let proj = project_mean(&dense, 3, 3);
        assert!(is_centrosymmetric(&proj, 3, 3, 0.0));
        // Every projected pair is the mean of the originals: all become 4.0
        // here because dense[i] + dense[8-i] == 8.
        assert!(proj.iter().all(|&x| (x - 4.0).abs() < 1e-6));
    }

    #[test]
    fn projection_is_idempotent() {
        let dense: Vec<f32> = (0..15).map(|x| (x as f32).sin()).collect();
        let once = project_mean(&dense, 3, 5);
        let twice = project_mean(&once, 3, 5);
        assert_eq!(once, twice);
    }

    #[test]
    fn gradient_tying_preserves_total_update() {
        let mut g: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let before: f32 = g.iter().sum();
        tie_gradients(&mut g, 3, 3);
        let after: f32 = g.iter().sum();
        assert!((before - after).abs() < 1e-5);
        assert!(is_centrosymmetric(&g, 3, 3, 0.0));
        // Pair (0,0)/(2,2): (1+9)/2 = 5.
        assert_eq!(g[0], 5.0);
        assert_eq!(g[8], 5.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of 3x3")]
    fn dual_rejects_out_of_range_coordinates_in_debug() {
        let _ = dual(3, 0, 3, 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-centrosymmetric gradient")]
    fn tie_gradients_detects_nan_poisoning_in_debug() {
        // A NaN gradient cannot be tied into a centrosymmetric pair
        // (NaN != NaN); the Eq. 7 postcondition must catch it rather than
        // let a poisoned update silently break the constraint surface.
        let mut g = vec![0.0f32; 9];
        g[0] = f32::NAN;
        tie_gradients(&mut g, 3, 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-centrosymmetric slice")]
    fn project_mean_detects_nan_poisoning_in_debug() {
        let mut d = vec![1.0f32; 9];
        d[4] = f32::NAN;
        let _ = project_mean(&d, 3, 3);
    }

    #[test]
    fn centro_filter_rejects_asymmetric_input() {
        let dense: Vec<f32> = (0..9).map(|x| x as f32).collect();
        assert!(CentroFilter::from_dense(&dense, 3, 3).is_none());
    }

    #[test]
    fn centro_filter_round_trips_pruned_slice() {
        // Centrosymmetric with zeros: dual zeros stay paired.
        let dense = vec![0.0, 2.0, 0.0, 3.0, 7.0, 3.0, 0.0, 2.0, 0.0];
        let cf = CentroFilter::from_dense(&dense, 3, 3).expect("slice is centrosymmetric");
        assert_eq!(cf.expand(), dense);
        assert_eq!(cf.stored_len(), 5);
        assert_eq!(cf.stored_nnz(), 3);
    }
}
