//! Per-layer sparsity profiles.
//!
//! The paper's compression tables report overall multiplication-reduction
//! factors; its simulator consumes per-layer weight/activation densities.
//! Real per-layer numbers are not published, so profiles here are
//! *calibrated*: a plausible depth-dependent shape (early layers denser,
//! deep layers and FC layers much sparser — the universal Deep Compression
//! observation) whose global scale is solved by bisection so the model-level
//! reduction matches the paper's reported factor. See DESIGN.md §2.

use crate::{LayerKind, ModelDesc};

/// Per-layer density assignments for one model under one compression scheme.
#[derive(Clone, Debug, PartialEq)]
pub struct SparsityProfile {
    /// Density of *stored* weights per layer (fraction of non-zeros among
    /// the weights the scheme keeps: all weights for dense/DC, unique
    /// weights for CSCNN schemes).
    pub weight_density: Vec<f64>,
    /// Density of each layer's *input* activations (post-ReLU of the
    /// previous layer; the first layer sees the dense input image).
    pub activation_density: Vec<f64>,
}

impl SparsityProfile {
    /// Fully dense weights with the standard activation profile.
    pub fn dense(model: &ModelDesc) -> Self {
        SparsityProfile {
            weight_density: vec![1.0; model.layers.len()],
            activation_density: activation_profile(model),
        }
    }

    /// Unpruned CSCNN: stored (unique) weights are fully dense; the
    /// reduction comes from the centrosymmetric structure alone.
    pub fn cscnn(model: &ModelDesc) -> Self {
        Self::dense(model)
    }

    /// Deep-Compression magnitude pruning calibrated to `target_reduction`
    /// (overall `dense_mults / pruned_mults`).
    ///
    /// # Panics
    ///
    /// Panics if `target_reduction < 1`.
    pub fn deep_compression(model: &ModelDesc, target_reduction: f64) -> Self {
        assert!(target_reduction >= 1.0, "reduction must be >= 1");
        let keep = calibrate(model, target_reduction, false);
        SparsityProfile {
            weight_density: keep,
            activation_density: activation_profile(model),
        }
    }

    /// CSCNN + pruning calibrated to `target_reduction`: densities apply to
    /// *unique* weights of eligible layers, whose count is already halved
    /// by the structure.
    ///
    /// # Panics
    ///
    /// Panics if `target_reduction` is below the structural reduction the
    /// centrosymmetric constraint alone provides (the pruning keep fraction
    /// would exceed 1).
    pub fn cscnn_pruned(model: &ModelDesc, target_reduction: f64) -> Self {
        assert!(target_reduction >= 1.0, "reduction must be >= 1");
        let keep = calibrate(model, target_reduction, true);
        SparsityProfile {
            weight_density: keep,
            activation_density: activation_profile(model),
        }
    }
}

/// Depth-dependent input-activation densities: the first layer sees the
/// dense image; deeper layers see increasingly sparse post-ReLU maps
/// (roughly 80 % → 48 % non-zero, the range SCNN/Cnvlutin report for
/// ImageNet CNNs).
pub fn activation_profile(model: &ModelDesc) -> Vec<f64> {
    let n = model.layers.len();
    (0..n)
        .map(|i| {
            if i == 0 {
                1.0
            } else {
                let frac = i as f64 / n.max(2) as f64;
                0.80 - 0.32 * frac
            }
        })
        .collect()
}

/// Relative prunability shape: early conv layers keep more, deep conv
/// layers keep less, FC layers keep far less (Deep Compression's universal
/// finding). Returned values are *relative* multipliers, scaled globally by
/// the calibration.
fn prunability_shape(model: &ModelDesc) -> Vec<f64> {
    let n = model.layers.len();
    model
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let frac = i as f64 / n.max(2) as f64;
            match l.kind {
                LayerKind::FullyConnected => 0.35,
                // Depthwise layers are tiny and sensitive; keep them denser.
                LayerKind::Depthwise => 1.5,
                LayerKind::Conv => 1.3 - 0.6 * frac,
            }
        })
        .collect()
}

/// Solves for per-layer keep fractions achieving the target reduction by
/// bisecting a global scale on the prunability shape.
fn calibrate(model: &ModelDesc, target: f64, centro: bool) -> Vec<f64> {
    let shape = prunability_shape(model);
    let keeps_at = |scale: f64| -> Vec<f64> {
        shape
            .iter()
            .map(|&s| (scale * s).clamp(0.01, 1.0))
            .collect()
    };
    let reduction_at = |keeps: &[f64]| -> f64 {
        let dense: f64 = model.layers.iter().map(|l| l.dense_mults() as f64).sum();
        let compressed: f64 = model
            .layers
            .iter()
            .zip(keeps)
            .map(|(l, &k)| {
                let stored = if centro {
                    l.centro_weights() as f64
                } else {
                    l.weights() as f64
                };
                stored * k * l.output_pixels() as f64
            })
            .sum();
        dense / compressed
    };
    let mut lo = 0.001f64;
    let mut hi = 1.0f64;
    // reduction is decreasing in scale; check feasibility at scale=1.
    let max_feasible = reduction_at(&keeps_at(lo));
    let min_feasible = reduction_at(&keeps_at(hi));
    assert!(
        target <= max_feasible * 1.0001,
        "target {target} exceeds the feasible reduction {max_feasible:.2} for {}",
        model.name
    );
    if target <= min_feasible {
        // Structure alone (or nothing) already reduces at least this much.
        return keeps_at(hi);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if reduction_at(&keeps_at(mid)) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    keeps_at(0.5 * (lo + hi))
}

/// Paper-reported multiplication-reduction targets (Tables II and III).
///
/// Returns `(deep_compression, cscnn_pruned)` for known models; models
/// without a published number get representative defaults.
pub fn paper_reduction_targets(model_name: &str) -> (f64, f64) {
    match model_name {
        "LeNet-5" => (3.0, 4.0),
        "ConvNet" => (3.8, 5.8),
        "VGG16-CIFAR" => (5.3, 7.2),
        "WideResNet" => (2.5, 3.0),
        "ResNet-18" => (2.0, 2.8),
        "VGG16" => (3.0, 4.3),
        "AlexNet" => (2.2, 2.9),
        "SqueezeNet" => (4.2, 5.9),
        "ResNeXt-101" => (2.2, 2.9),
        "ResNet-50" => (2.2, 2.8),
        "ResNet-152" => (2.3, 2.7),
        "ShuffleNet-V2" => (2.2, 3.2),
        "EfficientNet-B7" => (3.1, 4.3),
        _ => (2.5, 3.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn activation_profile_starts_dense_and_decays() {
        let m = catalog::vgg16();
        let a = activation_profile(&m);
        assert_eq!(a[0], 1.0);
        assert!(a[1] > *a.last().expect("non-empty"));
        assert!(a.iter().all(|&d| (0.0..=1.0).contains(&d)));
    }

    #[test]
    fn deep_compression_hits_target_reduction() {
        for (model, target) in [
            (catalog::alexnet(), 2.2),
            (catalog::vgg16(), 3.0),
            (catalog::resnet18(), 2.0),
        ] {
            let p = SparsityProfile::deep_compression(&model, target);
            let dense: f64 = model.layers.iter().map(|l| l.dense_mults() as f64).sum();
            let compressed: f64 = model
                .layers
                .iter()
                .zip(&p.weight_density)
                .map(|(l, &k)| l.weights() as f64 * k * l.output_pixels() as f64)
                .sum();
            let red = dense / compressed;
            assert!(
                (red - target).abs() / target < 0.02,
                "{}: got {red:.3}, want {target}",
                model.name
            );
        }
    }

    #[test]
    fn cscnn_pruned_hits_target_reduction() {
        let model = catalog::vgg16();
        let p = SparsityProfile::cscnn_pruned(&model, 4.3);
        let dense: f64 = model.layers.iter().map(|l| l.dense_mults() as f64).sum();
        let compressed: f64 = model
            .layers
            .iter()
            .zip(&p.weight_density)
            .map(|(l, &k)| l.centro_weights() as f64 * k * l.output_pixels() as f64)
            .sum();
        let red = dense / compressed;
        assert!((red - 4.3).abs() / 4.3 < 0.02, "got {red:.3}");
    }

    #[test]
    fn fc_layers_are_pruned_harder_than_conv() {
        let model = catalog::alexnet();
        let p = SparsityProfile::deep_compression(&model, 2.2);
        let fc_density = p.weight_density.last().expect("fc layer");
        let conv_density = p.weight_density[1];
        assert!(*fc_density < conv_density);
    }

    #[test]
    fn calibration_is_monotone_in_target() {
        let model = catalog::resnet50();
        let p1 = SparsityProfile::deep_compression(&model, 1.5);
        let p2 = SparsityProfile::deep_compression(&model, 3.0);
        for (a, b) in p1.weight_density.iter().zip(&p2.weight_density) {
            assert!(a >= b, "higher target must prune at least as much");
        }
    }

    #[test]
    fn targets_exist_for_all_suite_models() {
        for m in catalog::evaluation_suite() {
            let (dc, cp) = paper_reduction_targets(&m.name);
            assert!(dc > 1.0 && cp > 1.0);
        }
    }
}
