//! Sequential classics: LeNet-5, cuda-convnet ConvNet, AlexNet, VGG-16.
//!
//! Each model is authored as typed IR (`*_ir`) and its `ModelDesc` is
//! obtained by the `Ir → ModelDesc` geometry lowering, so catalog models
//! flow through the same pipeline as trained networks.

use crate::lower::to_model_desc;
use crate::{LayerNode, ModelDesc, ModelIr};

/// LeNet-5 for MNIST (`1×28×28`) as typed IR.
pub fn lenet5_ir() -> ModelIr {
    ModelIr::new(
        "LeNet-5",
        vec![
            LayerNode::conv("C1", 1, 6, 5, 5, 28, 28, 1, 2), // → 28x28
            LayerNode::conv("C3", 6, 16, 5, 5, 14, 14, 1, 0), // → 10x10 (after 2x2 pool)
            LayerNode::fc("F5", 16 * 5 * 5, 120),
            LayerNode::fc("F6", 120, 84),
            LayerNode::fc("F7", 84, 10),
        ],
    )
}

/// LeNet-5 for MNIST (`1×28×28`).
pub fn lenet5() -> ModelDesc {
    to_model_desc(&lenet5_ir()).expect("catalog model has weight layers")
}

/// The cuda-convnet "ConvNet" for CIFAR-10 (`3×32×32`) as typed IR: three
/// 5×5 conv layers with pooling, one FC classifier.
pub fn convnet_ir() -> ModelIr {
    ModelIr::new(
        "ConvNet",
        vec![
            LayerNode::conv("conv1", 3, 32, 5, 5, 32, 32, 1, 2), // → 32x32
            LayerNode::conv("conv2", 32, 32, 5, 5, 16, 16, 1, 2), // → 16x16
            LayerNode::conv("conv3", 32, 64, 5, 5, 8, 8, 1, 2),  // → 8x8
            LayerNode::fc("fc", 64 * 4 * 4, 10),
        ],
    )
}

/// The cuda-convnet "ConvNet" for CIFAR-10 (`3×32×32`).
pub fn convnet() -> ModelDesc {
    to_model_desc(&convnet_ir()).expect("catalog model has weight layers")
}

/// AlexNet for ImageNet (`3×224×224`, the classic Krizhevsky two-tower
/// shapes: C2/C4/C5 are 2-way grouped) as typed IR.
///
/// C1 has stride 4, which makes it ineligible for the centrosymmetric
/// constraint (paper §II-A) — the source of the Fig. 8 C1 behaviour.
pub fn alexnet_ir() -> ModelIr {
    ModelIr::new(
        "AlexNet",
        vec![
            LayerNode::conv("C1", 3, 96, 11, 11, 224, 224, 4, 2), // → 55x55
            LayerNode::grouped("C2", 96, 256, 5, 5, 27, 27, 1, 2, 2), // → 27x27
            LayerNode::conv("C3", 256, 384, 3, 3, 13, 13, 1, 1),  // → 13x13
            LayerNode::grouped("C4", 384, 384, 3, 3, 13, 13, 1, 1, 2),
            LayerNode::grouped("C5", 384, 256, 3, 3, 13, 13, 1, 1, 2),
            LayerNode::fc("FC6", 256 * 6 * 6, 4096),
            LayerNode::fc("FC7", 4096, 4096),
            LayerNode::fc("FC8", 4096, 1000),
        ],
    )
}

/// AlexNet for ImageNet (`3×224×224`).
pub fn alexnet() -> ModelDesc {
    to_model_desc(&alexnet_ir()).expect("catalog model has weight layers")
}

/// VGG-16 for ImageNet (`3×224×224`) as typed IR: thirteen 3×3 conv
/// layers, three FC.
pub fn vgg16_ir() -> ModelIr {
    let mut nodes = Vec::new();
    let blocks: [(usize, usize, usize, usize); 13] = [
        // (c, k, input h/w, index-in-block) flattened per conv layer.
        (3, 64, 224, 1),
        (64, 64, 224, 2),
        (64, 128, 112, 1),
        (128, 128, 112, 2),
        (128, 256, 56, 1),
        (256, 256, 56, 2),
        (256, 256, 56, 3),
        (256, 512, 28, 1),
        (512, 512, 28, 2),
        (512, 512, 28, 3),
        (512, 512, 14, 1),
        (512, 512, 14, 2),
        (512, 512, 14, 3),
    ];
    let mut stage = 1;
    let mut prev_hw = 0;
    for (c, k, hw, idx) in blocks {
        if hw != prev_hw {
            if prev_hw != 0 {
                stage += 1;
            }
            prev_hw = hw;
        }
        nodes.push(LayerNode::conv(
            &format!("conv{stage}_{idx}"),
            c,
            k,
            3,
            3,
            hw,
            hw,
            1,
            1,
        ));
    }
    nodes.push(LayerNode::fc("FC6", 512 * 7 * 7, 4096));
    nodes.push(LayerNode::fc("FC7", 4096, 4096));
    nodes.push(LayerNode::fc("FC8", 4096, 1000));
    ModelIr::new("VGG16", nodes)
}

/// VGG-16 for ImageNet (`3×224×224`).
pub fn vgg16() -> ModelDesc {
    to_model_desc(&vgg16_ir()).expect("catalog model has weight layers")
}

/// VGG-16 adapted for CIFAR-10 (`3×32×32`, 13 conv layers + one FC), the
/// variant in Table II, as typed IR.
pub fn vgg16_cifar_ir() -> ModelIr {
    let mut nodes = Vec::new();
    let blocks: [(usize, usize, usize, usize); 13] = [
        (3, 64, 32, 1),
        (64, 64, 32, 2),
        (64, 128, 16, 1),
        (128, 128, 16, 2),
        (128, 256, 8, 1),
        (256, 256, 8, 2),
        (256, 256, 8, 3),
        (256, 512, 4, 1),
        (512, 512, 4, 2),
        (512, 512, 4, 3),
        (512, 512, 2, 1),
        (512, 512, 2, 2),
        (512, 512, 2, 3),
    ];
    let mut stage = 1;
    let mut prev_hw = 0;
    for (c, k, hw, idx) in blocks {
        if hw != prev_hw {
            if prev_hw != 0 {
                stage += 1;
            }
            prev_hw = hw;
        }
        nodes.push(LayerNode::conv(
            &format!("conv{stage}_{idx}"),
            c,
            k,
            3,
            3,
            hw,
            hw,
            1,
            1,
        ));
    }
    nodes.push(LayerNode::fc("FC", 512, 10));
    ModelIr::new("VGG16-CIFAR", nodes)
}

/// VGG-16 adapted for CIFAR-10 (`3×32×32`).
pub fn vgg16_cifar() -> ModelDesc {
    to_model_desc(&vgg16_cifar_ir()).expect("catalog model has weight layers")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_mac_count_is_canonical() {
        // Classic grouped AlexNet is ~0.66 GMACs conv + ~59 MMACs FC.
        let m = alexnet();
        let conv: u64 = m.conv_layers().map(|l| l.dense_mults()).sum();
        let fc: u64 = m.fc_layers().map(|l| l.dense_mults()).sum();
        assert!((580_000_000..780_000_000).contains(&conv), "conv={conv}");
        assert_eq!(fc, (9216 * 4096 + 4096 * 4096 + 4096 * 1000) as u64);
    }

    #[test]
    fn vgg16_mac_count_is_canonical() {
        // VGG-16 is ~15.3 GMACs of conv.
        let conv: u64 = vgg16().conv_layers().map(|l| l.dense_mults()).sum();
        assert!(
            (14_500_000_000..16_000_000_000).contains(&conv),
            "conv={conv}"
        );
    }

    #[test]
    fn vgg16_weight_count_is_canonical() {
        // ~138 M parameters total, ~14.7 M of them convolutional.
        let m = vgg16();
        let conv: u64 = m.conv_layers().map(|l| l.weights()).sum();
        assert!((14_000_000..15_500_000).contains(&conv), "conv={conv}");
        assert!((130_000_000..145_000_000).contains(&m.weights()));
    }

    #[test]
    fn lenet_layer_chain_is_consistent() {
        let m = lenet5();
        assert_eq!(m.layers[0].output_dim(), (28, 28));
        assert_eq!(m.layers[1].output_dim(), (10, 10));
    }

    #[test]
    fn alexnet_only_c1_is_strided() {
        let m = alexnet();
        let strided: Vec<_> = m
            .conv_layers()
            .filter(|l| l.stride > 1)
            .map(|l| l.name.clone())
            .collect();
        assert_eq!(strided, vec!["C1"]);
    }
}
