//! Shape catalogs of the benchmark CNNs.
//!
//! Each model is authored as typed IR: the `*_ir` function returns a
//! [`crate::ModelIr`] and the plain function lowers it to a
//! [`crate::ModelDesc`] listing every weight-bearing layer of the network
//! with its exact geometry, from which MAC counts, storage and simulator
//! workloads are derived. Shapes follow the canonical published
//! architectures (torchvision conventions where the paper does not
//! specify).

mod classic;
mod extra;
mod mobile;
mod resnet;

pub use classic::{
    alexnet, alexnet_ir, convnet, convnet_ir, lenet5, lenet5_ir, vgg16, vgg16_cifar,
    vgg16_cifar_ir, vgg16_ir,
};
pub use extra::{googlenet, googlenet_ir, mobilenet_v1, mobilenet_v1_ir};
pub use mobile::{
    efficientnet_b7, efficientnet_b7_ir, shufflenet_v2, shufflenet_v2_ir, squeezenet, squeezenet_ir,
};
pub use resnet::{
    resnet152, resnet152_ir, resnet18, resnet18_ir, resnet50, resnet50_ir, resnext101,
    resnext101_ir, wide_resnet28_10, wide_resnet28_10_ir,
};

use crate::ModelDesc;

/// All ImageNet-scale models used in the accelerator evaluation (Fig. 7/9).
pub fn evaluation_suite() -> Vec<ModelDesc> {
    vec![
        lenet5(),
        convnet(),
        alexnet(),
        vgg16(),
        resnet18(),
        resnet50(),
        resnet152(),
        shufflenet_v2(),
        efficientnet_b7(),
    ]
}

/// Looks a model up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<ModelDesc> {
    let lower = name.to_ascii_lowercase();
    let model = match lower.as_str() {
        "lenet5" | "lenet-5" => lenet5(),
        "convnet" => convnet(),
        "alexnet" => alexnet(),
        "vgg16" | "vgg-16" => vgg16(),
        "vgg16-cifar" => vgg16_cifar(),
        "resnet18" | "resnet-18" => resnet18(),
        "resnet50" | "resnet-50" => resnet50(),
        "resnet152" | "resnet-152" => resnet152(),
        "resnext101" | "resnext-101" => resnext101(),
        "wideresnet" | "wrn-28-10" => wide_resnet28_10(),
        "squeezenet" => squeezenet(),
        "googlenet" => googlenet(),
        "mobilenet" | "mobilenetv1" | "mobilenet-v1" => mobilenet_v1(),
        "shufflenetv2" | "shufflenet-v2" => shufflenet_v2(),
        "efficientnetb7" | "efficientnet-b7" => efficientnet_b7(),
        _ => return None,
    };
    Some(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_aliases() {
        assert_eq!(by_name("AlexNet").map(|m| m.name), Some("AlexNet".into()));
        assert_eq!(
            by_name("resnet-50").map(|m| m.name),
            Some("ResNet-50".into())
        );
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn evaluation_suite_has_nine_models() {
        assert_eq!(evaluation_suite().len(), 9);
    }

    /// Spatial chaining sanity for *sequential* models: each conv layer's
    /// input extent must be producible from the previous layer's output
    /// (allowing pooling — i.e. input never larger than previous output).
    /// Branchy models (ResNets etc.) list parallel branches in sequence, so
    /// the monotonicity argument only applies to the sequential catalogs.
    #[test]
    fn layer_chains_never_grow_spatially() {
        for model in [lenet5(), convnet(), alexnet(), vgg16(), vgg16_cifar()] {
            let mut prev: Option<(usize, usize)> = None;
            for layer in model.conv_layers() {
                if let Some((ph, pw)) = prev {
                    assert!(
                        layer.h <= ph && layer.w <= pw,
                        "{}/{}: input {}x{} grew beyond previous output {}x{}",
                        model.name,
                        layer.name,
                        layer.h,
                        layer.w,
                        ph,
                        pw
                    );
                }
                prev = Some(layer.output_dim());
            }
        }
    }
}
