//! Additional common benchmarks beyond the paper's own suite: GoogLeNet
//! (evaluated by SCNN, the paper's direct baseline) and MobileNetV1 — so
//! downstream users can run the standard sparse-accelerator workloads.
//!
//! Authored as typed IR (`*_ir`); the `ModelDesc` variants lower via
//! `Ir → ModelDesc`. GoogLeNet carries its real Inception topology: the
//! four branches of every module fan out from the module input and merge
//! in a `Concat` join, so the simulator can overlap them.

use crate::lower::to_model_desc;
use crate::{IrBuilder, LayerNode, ModelDesc, ModelIr};

/// Appends one Inception module: the four parallel branches of GoogLeNet
/// (`1×1`, `1×1→3×3`, `1×1→5×5`, `pool→1×1`), fanning out from `prev` and
/// merging in a `Concat` join. Returns the join index and output channels.
#[allow(clippy::too_many_arguments)]
fn inception(
    g: &mut IrBuilder,
    prev: usize,
    name: &str,
    cin: usize,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pool_proj: usize,
    hw: usize,
) -> (usize, usize) {
    let n = |part: &str| format!("{name}/{part}");
    let b1 = g.push_after(
        LayerNode::conv(&n("1x1"), cin, c1, 1, 1, hw, hw, 1, 0),
        &[prev],
    );
    let r3 = g.push_after(
        LayerNode::conv(&n("3x3_reduce"), cin, c3r, 1, 1, hw, hw, 1, 0),
        &[prev],
    );
    let b3 = g.push_after(
        LayerNode::conv(&n("3x3"), c3r, c3, 3, 3, hw, hw, 1, 1),
        &[r3],
    );
    let r5 = g.push_after(
        LayerNode::conv(&n("5x5_reduce"), cin, c5r, 1, 1, hw, hw, 1, 0),
        &[prev],
    );
    let b5 = g.push_after(
        LayerNode::conv(&n("5x5"), c5r, c5, 5, 5, hw, hw, 1, 2),
        &[r5],
    );
    let bp = g.push_after(
        LayerNode::conv(&n("pool_proj"), cin, pool_proj, 1, 1, hw, hw, 1, 0),
        &[prev],
    );
    let cat = g.push_after(LayerNode::concat(&n("concat")), &[b1, b3, b5, bp]);
    (cat, c1 + c3 + c5 + pool_proj)
}

/// GoogLeNet (Inception v1) for ImageNet (`3×224×224`) as typed IR — the
/// workload SCNN's own evaluation used alongside AlexNet and VGG.
pub fn googlenet_ir() -> ModelIr {
    let mut g = IrBuilder::new("GoogLeNet");
    let conv1 = g.push(LayerNode::conv("conv1", 3, 64, 7, 7, 224, 224, 2, 3)); // → 112
                                                                               // maxpool → 56
    let reduce = g.push_after(
        LayerNode::conv("conv2_reduce", 64, 64, 1, 1, 56, 56, 1, 0),
        &[conv1],
    );
    let mut tail = g.push_after(
        LayerNode::conv("conv2", 64, 192, 3, 3, 56, 56, 1, 1),
        &[reduce],
    );
    // maxpool → 28
    let mut c = 192;
    (tail, c) = inception(&mut g, tail, "inception_3a", c, 64, 96, 128, 16, 32, 32, 28);
    (tail, c) = inception(
        &mut g,
        tail,
        "inception_3b",
        c,
        128,
        128,
        192,
        32,
        96,
        64,
        28,
    );
    // maxpool → 14
    (tail, c) = inception(
        &mut g,
        tail,
        "inception_4a",
        c,
        192,
        96,
        208,
        16,
        48,
        64,
        14,
    );
    (tail, c) = inception(
        &mut g,
        tail,
        "inception_4b",
        c,
        160,
        112,
        224,
        24,
        64,
        64,
        14,
    );
    (tail, c) = inception(
        &mut g,
        tail,
        "inception_4c",
        c,
        128,
        128,
        256,
        24,
        64,
        64,
        14,
    );
    (tail, c) = inception(
        &mut g,
        tail,
        "inception_4d",
        c,
        112,
        144,
        288,
        32,
        64,
        64,
        14,
    );
    (tail, c) = inception(
        &mut g,
        tail,
        "inception_4e",
        c,
        256,
        160,
        320,
        32,
        128,
        128,
        14,
    );
    // maxpool → 7
    (tail, c) = inception(
        &mut g,
        tail,
        "inception_5a",
        c,
        256,
        160,
        320,
        32,
        128,
        128,
        7,
    );
    (tail, c) = inception(
        &mut g,
        tail,
        "inception_5b",
        c,
        384,
        192,
        384,
        48,
        128,
        128,
        7,
    );
    g.push_after(LayerNode::fc("fc", c, 1000), &[tail]);
    g.finish().expect("catalog GoogLeNet topology is valid")
}

/// GoogLeNet (Inception v1) for ImageNet (`3×224×224`).
pub fn googlenet() -> ModelDesc {
    to_model_desc(&googlenet_ir()).expect("catalog model has weight layers")
}

/// MobileNetV1 (×1.0) for ImageNet (`3×224×224`) as typed IR: depthwise-
/// separable stacks — the canonical pointwise-dominated workload.
pub fn mobilenet_v1_ir() -> ModelIr {
    let mut nodes = vec![LayerNode::conv("conv1", 3, 32, 3, 3, 224, 224, 2, 1)]; // → 112
                                                                                 // (cin, cout, stride, input hw) per depthwise-separable block.
    let blocks: [(usize, usize, usize, usize); 13] = [
        (32, 64, 1, 112),
        (64, 128, 2, 112),
        (128, 128, 1, 56),
        (128, 256, 2, 56),
        (256, 256, 1, 28),
        (256, 512, 2, 28),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 1024, 2, 14),
        (1024, 1024, 1, 7),
    ];
    for (i, &(cin, cout, stride, hw)) in blocks.iter().enumerate() {
        let out_hw = hw / stride;
        nodes.push(LayerNode::grouped(
            &format!("dw{}", i + 1),
            cin,
            cin,
            3,
            3,
            hw,
            hw,
            stride,
            1,
            cin,
        ));
        nodes.push(LayerNode::conv(
            &format!("pw{}", i + 1),
            cin,
            cout,
            1,
            1,
            out_hw,
            out_hw,
            1,
            0,
        ));
    }
    nodes.push(LayerNode::fc("fc", 1024, 1000));
    ModelIr::new("MobileNetV1", nodes)
}

/// MobileNetV1 (×1.0) for ImageNet (`3×224×224`).
pub fn mobilenet_v1() -> ModelDesc {
    to_model_desc(&mobilenet_v1_ir()).expect("catalog model has weight layers")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_mac_count_is_canonical() {
        // ~1.5 GMACs.
        let total = googlenet().dense_mults();
        assert!(
            (1_300_000_000..1_800_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn googlenet_has_nine_inception_modules() {
        let m = googlenet();
        let modules: std::collections::BTreeSet<String> = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("inception_"))
            .map(|l| l.name.split('/').next().expect("module prefix").to_string())
            .collect();
        assert_eq!(modules.len(), 9);
        // Each module contributes six conv layers.
        let inception_layers = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("inception_"))
            .count();
        assert_eq!(inception_layers, 9 * 6);
    }

    #[test]
    fn googlenet_modules_concat_four_branches() {
        let ir = googlenet_ir();
        assert!(!ir.is_linear());
        ir.validate().expect("valid inception topology");
        let concats: Vec<usize> = ir
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_join())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(concats.len(), 9, "one concat per module");
        for i in concats {
            assert_eq!(ir.predecessors(i).len(), 4, "node {i}");
        }
    }

    #[test]
    fn mobilenet_mac_count_is_canonical() {
        // ~570 MMACs.
        let total = mobilenet_v1().dense_mults();
        assert!((450_000_000..680_000_000).contains(&total), "total={total}");
    }

    #[test]
    fn mobilenet_is_pointwise_dominated() {
        let m = mobilenet_v1();
        let pw: u64 = m
            .layers
            .iter()
            .filter(|l| l.r == 1 && l.s == 1)
            .map(|l| l.dense_mults())
            .sum();
        assert!(
            pw as f64 / m.dense_mults() as f64 > 0.9,
            "pointwise carries >90% of MACs"
        );
    }
}
