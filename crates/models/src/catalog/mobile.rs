//! Compact/mobile families: SqueezeNet, ShuffleNet-V2, EfficientNet-B7.
//!
//! Authored as typed IR (`*_ir`); the `ModelDesc` variants lower via
//! `Ir → ModelDesc`.

use crate::lower::to_model_desc;
use crate::{LayerNode, ModelDesc, ModelIr};

/// Appends a SqueezeNet fire module: 1×1 squeeze, then parallel 1×1 and 3×3
/// expands.
fn fire(
    nodes: &mut Vec<LayerNode>,
    idx: usize,
    cin: usize,
    squeeze: usize,
    expand: usize,
    hw: usize,
) {
    let name = |part: &str| format!("fire{idx}/{part}");
    nodes.push(LayerNode::conv(
        &name("squeeze1x1"),
        cin,
        squeeze,
        1,
        1,
        hw,
        hw,
        1,
        0,
    ));
    nodes.push(LayerNode::conv(
        &name("expand1x1"),
        squeeze,
        expand,
        1,
        1,
        hw,
        hw,
        1,
        0,
    ));
    nodes.push(LayerNode::conv(
        &name("expand3x3"),
        squeeze,
        expand,
        3,
        3,
        hw,
        hw,
        1,
        1,
    ));
}

/// SqueezeNet 1.0 for ImageNet (`3×224×224`) as typed IR.
pub fn squeezenet_ir() -> ModelIr {
    let mut nodes = vec![LayerNode::conv("conv1", 3, 96, 7, 7, 224, 224, 2, 0)]; // → 109
                                                                                 // maxpool 3/2 → 54.
    fire(&mut nodes, 2, 96, 16, 64, 54);
    fire(&mut nodes, 3, 128, 16, 64, 54);
    fire(&mut nodes, 4, 128, 32, 128, 54);
    // maxpool → 27.
    fire(&mut nodes, 5, 256, 32, 128, 27);
    fire(&mut nodes, 6, 256, 48, 192, 27);
    fire(&mut nodes, 7, 384, 48, 192, 27);
    fire(&mut nodes, 8, 384, 64, 256, 27);
    // maxpool → 13.
    fire(&mut nodes, 9, 512, 64, 256, 13);
    nodes.push(LayerNode::conv("conv10", 512, 1000, 1, 1, 13, 13, 1, 0));
    ModelIr::new("SqueezeNet", nodes)
}

/// SqueezeNet 1.0 for ImageNet (`3×224×224`).
pub fn squeezenet() -> ModelDesc {
    to_model_desc(&squeezenet_ir()).expect("catalog model has weight layers")
}

/// Appends one ShuffleNet-V2 stage: a stride-2 downsample unit followed by
/// `units - 1` stride-1 units. Returns the stage's output spatial extent.
fn shuffle_stage(
    nodes: &mut Vec<LayerNode>,
    stage: usize,
    cin: usize,
    cout: usize,
    units: usize,
    hw: usize,
) -> usize {
    let half = cout / 2;
    let out_hw = hw / 2;
    let name = |u: usize, part: &str| format!("stage{stage}_{u}/{part}");
    // Downsample unit: two branches, both stride 2.
    nodes.push(LayerNode::grouped(
        &name(0, "b1_dw"),
        cin,
        cin,
        3,
        3,
        hw,
        hw,
        2,
        1,
        cin,
    ));
    nodes.push(LayerNode::conv(
        &name(0, "b1_pw"),
        cin,
        half,
        1,
        1,
        out_hw,
        out_hw,
        1,
        0,
    ));
    nodes.push(LayerNode::conv(
        &name(0, "b2_pw1"),
        cin,
        half,
        1,
        1,
        hw,
        hw,
        1,
        0,
    ));
    nodes.push(LayerNode::grouped(
        &name(0, "b2_dw"),
        half,
        half,
        3,
        3,
        hw,
        hw,
        2,
        1,
        half,
    ));
    nodes.push(LayerNode::conv(
        &name(0, "b2_pw2"),
        half,
        half,
        1,
        1,
        out_hw,
        out_hw,
        1,
        0,
    ));
    // Stride-1 units: only one branch carries weights (the other half of the
    // channels passes through the channel shuffle).
    for u in 1..units {
        nodes.push(LayerNode::conv(
            &name(u, "pw1"),
            half,
            half,
            1,
            1,
            out_hw,
            out_hw,
            1,
            0,
        ));
        nodes.push(LayerNode::grouped(
            &name(u, "dw"),
            half,
            half,
            3,
            3,
            out_hw,
            out_hw,
            1,
            1,
            half,
        ));
        nodes.push(LayerNode::conv(
            &name(u, "pw2"),
            half,
            half,
            1,
            1,
            out_hw,
            out_hw,
            1,
            0,
        ));
    }
    out_hw
}

/// ShuffleNet-V2 ×1.0 for ImageNet (`3×224×224`) as typed IR.
pub fn shufflenet_v2_ir() -> ModelIr {
    let mut nodes = vec![LayerNode::conv("conv1", 3, 24, 3, 3, 224, 224, 2, 1)]; // → 112
                                                                                 // maxpool → 56.
    let mut hw = 56;
    hw = shuffle_stage(&mut nodes, 2, 24, 116, 4, hw);
    hw = shuffle_stage(&mut nodes, 3, 116, 232, 8, hw);
    hw = shuffle_stage(&mut nodes, 4, 232, 464, 4, hw);
    nodes.push(LayerNode::conv("conv5", 464, 1024, 1, 1, hw, hw, 1, 0));
    nodes.push(LayerNode::fc("fc", 1024, 1000));
    ModelIr::new("ShuffleNet-V2", nodes)
}

/// ShuffleNet-V2 ×1.0 for ImageNet (`3×224×224`).
pub fn shufflenet_v2() -> ModelDesc {
    to_model_desc(&shufflenet_v2_ir()).expect("catalog model has weight layers")
}

/// Rounds a scaled channel count to the nearest multiple of 8 (the
/// EfficientNet `round_filters` rule, never dropping below 90 %).
fn round_filters(c: usize, width: f64) -> usize {
    let scaled = c as f64 * width;
    let mut new = ((scaled + 4.0) / 8.0).floor() as usize * 8;
    if (new as f64) < 0.9 * scaled {
        new += 8;
    }
    new.max(8)
}

/// EfficientNet-B7 for ImageNet (`3×600×600`) as typed IR: B0's MBConv
/// stages scaled by width 2.0 and depth 3.1. Squeeze-excite sub-layers are
/// omitted (they contribute < 1 % of MACs; documented in DESIGN.md).
pub fn efficientnet_b7_ir() -> ModelIr {
    const WIDTH: f64 = 2.0;
    const DEPTH: f64 = 3.1;
    // B0 stage table: (expand, channels, repeats, stride, kernel).
    const STAGES: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let stem = round_filters(32, WIDTH);
    let mut nodes = vec![LayerNode::conv("stem", 3, stem, 3, 3, 600, 600, 2, 1)]; // → 300
    let mut hw = 300;
    let mut cin = stem;
    for (si, &(t, c, n, s, k)) in STAGES.iter().enumerate() {
        let cout = round_filters(c, WIDTH);
        let repeats = (n as f64 * DEPTH).ceil() as usize;
        for b in 0..repeats {
            let stride = if b == 0 { s } else { 1 };
            let name = |part: &str| format!("mb{}_{b}/{part}", si + 1);
            let expanded = cin * t;
            if t != 1 {
                nodes.push(LayerNode::conv(
                    &name("expand"),
                    cin,
                    expanded,
                    1,
                    1,
                    hw,
                    hw,
                    1,
                    0,
                ));
            }
            nodes.push(LayerNode::grouped(
                &name("dw"),
                expanded,
                expanded,
                k,
                k,
                hw,
                hw,
                stride,
                (k - 1) / 2,
                expanded,
            ));
            let out_hw = if stride == 2 { hw.div_ceil(2) } else { hw };
            nodes.push(LayerNode::conv(
                &name("project"),
                expanded,
                cout,
                1,
                1,
                out_hw,
                out_hw,
                1,
                0,
            ));
            cin = cout;
            hw = out_hw;
        }
    }
    let head = round_filters(1280, WIDTH);
    nodes.push(LayerNode::conv("head", cin, head, 1, 1, hw, hw, 1, 0));
    nodes.push(LayerNode::fc("fc", head, 1000));
    ModelIr::new("EfficientNet-B7", nodes)
}

/// EfficientNet-B7 for ImageNet (`3×600×600`).
pub fn efficientnet_b7() -> ModelDesc {
    to_model_desc(&efficientnet_b7_ir()).expect("catalog model has weight layers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn squeezenet_mac_count_is_canonical() {
        // ~0.8 GMACs.
        let total = squeezenet().dense_mults();
        assert!(
            (600_000_000..1_000_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn shufflenet_mac_count_is_canonical() {
        // ~146 MMACs.
        let total = shufflenet_v2().dense_mults();
        assert!((110_000_000..180_000_000).contains(&total), "total={total}");
    }

    #[test]
    fn efficientnet_b7_mac_count_is_canonical() {
        // torchvision reports 37.75 GMACs for EfficientNet-B7 at 600x600;
        // we omit squeeze-excite (<1 % of MACs), so expect ~35-39 G.
        let total = efficientnet_b7().dense_mults();
        assert!(
            (34_000_000_000..40_000_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn depthwise_layers_are_marked() {
        let m = shufflenet_v2();
        assert!(m.layers.iter().any(|l| l.kind == LayerKind::Depthwise));
        let e = efficientnet_b7();
        assert!(e.layers.iter().any(|l| l.kind == LayerKind::Depthwise));
    }

    #[test]
    fn round_filters_matches_reference_rule() {
        assert_eq!(round_filters(32, 2.0), 64);
        assert_eq!(round_filters(1280, 2.0), 2560);
        assert_eq!(round_filters(16, 1.0), 16);
        // 0.9 floor: 24·1.1 = 26.4 → nearest 8 is 24, 24 ≥ 23.76 → 24.
        assert_eq!(round_filters(24, 1.1), 24);
    }

    #[test]
    fn fire_modules_have_paired_expands() {
        let m = squeezenet();
        let e1: Vec<_> = m
            .layers
            .iter()
            .filter(|l| l.name.contains("expand1x1"))
            .collect();
        let e3: Vec<_> = m
            .layers
            .iter()
            .filter(|l| l.name.contains("expand3x3"))
            .collect();
        assert_eq!(e1.len(), 8);
        assert_eq!(e3.len(), 8);
        for (a, b) in e1.iter().zip(&e3) {
            assert_eq!(a.k, b.k, "expand widths match");
        }
    }
}
