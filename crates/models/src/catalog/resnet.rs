//! Residual families: ResNet-18/50/152, ResNeXt-101, WideResNet-28-10.
//!
//! Authored as typed IR (`*_ir`); the `ModelDesc` variants lower via
//! `Ir → ModelDesc`.

use crate::lower::to_model_desc;
use crate::{LayerNode, ModelDesc, ModelIr};

/// Builds a basic-block stage (two 3×3 convs per block).
///
/// `h` is the stage's input spatial extent; the first block applies `stride`
/// (and a 1×1 projection shortcut when stride ≠ 1 or channels change).
fn basic_stage(
    nodes: &mut Vec<LayerNode>,
    stage: usize,
    blocks: usize,
    cin: usize,
    cout: usize,
    h: usize,
    stride: usize,
) -> usize {
    let mut c = cin;
    let mut hw = h;
    for b in 0..blocks {
        let s = if b == 0 { stride } else { 1 };
        let name = |part: &str| format!("conv{stage}_{b}_{part}");
        nodes.push(LayerNode::conv(&name("a"), c, cout, 3, 3, hw, hw, s, 1));
        let out_hw = hw / s;
        nodes.push(LayerNode::conv(
            &name("b"),
            cout,
            cout,
            3,
            3,
            out_hw,
            out_hw,
            1,
            1,
        ));
        if b == 0 && (s != 1 || c != cout) {
            nodes.push(LayerNode::conv(&name("ds"), c, cout, 1, 1, hw, hw, s, 0));
        }
        c = cout;
        hw = out_hw;
    }
    hw
}

/// Builds a bottleneck stage (1×1 reduce, 3×3, 1×1 expand ×4), optionally
/// grouped in the 3×3 (ResNeXt).
#[allow(clippy::too_many_arguments)]
fn bottleneck_stage(
    nodes: &mut Vec<LayerNode>,
    stage: usize,
    blocks: usize,
    cin: usize,
    width: usize,
    cout: usize,
    h: usize,
    stride: usize,
    groups: usize,
) -> usize {
    let mut c = cin;
    let mut hw = h;
    for b in 0..blocks {
        let s = if b == 0 { stride } else { 1 };
        let name = |part: &str| format!("conv{stage}_{b}_{part}");
        nodes.push(LayerNode::conv(&name("1x1a"), c, width, 1, 1, hw, hw, 1, 0));
        nodes.push(LayerNode::grouped(
            &name("3x3"),
            width,
            width,
            3,
            3,
            hw,
            hw,
            s,
            1,
            groups,
        ));
        let out_hw = hw / s;
        nodes.push(LayerNode::conv(
            &name("1x1b"),
            width,
            cout,
            1,
            1,
            out_hw,
            out_hw,
            1,
            0,
        ));
        if b == 0 && (s != 1 || c != cout) {
            nodes.push(LayerNode::conv(&name("ds"), c, cout, 1, 1, hw, hw, s, 0));
        }
        c = cout;
        hw = out_hw;
    }
    hw
}

/// ResNet-18 for ImageNet (`3×224×224`) as typed IR.
pub fn resnet18_ir() -> ModelIr {
    let mut nodes = vec![LayerNode::conv("conv1", 3, 64, 7, 7, 224, 224, 2, 3)];
    // maxpool 112 → 56.
    let mut hw = 56;
    hw = basic_stage(&mut nodes, 2, 2, 64, 64, hw, 1);
    hw = basic_stage(&mut nodes, 3, 2, 64, 128, hw, 2);
    hw = basic_stage(&mut nodes, 4, 2, 128, 256, hw, 2);
    let _ = basic_stage(&mut nodes, 5, 2, 256, 512, hw, 2);
    nodes.push(LayerNode::fc("fc", 512, 1000));
    ModelIr::new("ResNet-18", nodes)
}

/// ResNet-18 for ImageNet (`3×224×224`).
pub fn resnet18() -> ModelDesc {
    to_model_desc(&resnet18_ir()).expect("catalog model has weight layers")
}

/// ResNet-50 for ImageNet as typed IR.
pub fn resnet50_ir() -> ModelIr {
    resnet_bottleneck("ResNet-50", &[3, 4, 6, 3], 1)
}

/// ResNet-50 for ImageNet.
pub fn resnet50() -> ModelDesc {
    to_model_desc(&resnet50_ir()).expect("catalog model has weight layers")
}

/// ResNet-152 for ImageNet as typed IR.
pub fn resnet152_ir() -> ModelIr {
    resnet_bottleneck("ResNet-152", &[3, 8, 36, 3], 1)
}

/// ResNet-152 for ImageNet.
pub fn resnet152() -> ModelDesc {
    to_model_desc(&resnet152_ir()).expect("catalog model has weight layers")
}

/// ResNeXt-101 (32×4d) for ImageNet as typed IR: ResNet-101 stage depths
/// with 32-way grouped 3×3 convs and doubled internal width.
pub fn resnext101_ir() -> ModelIr {
    let depths = [3usize, 4, 23, 3];
    let mut nodes = vec![LayerNode::conv("conv1", 3, 64, 7, 7, 224, 224, 2, 3)];
    let mut hw = 56;
    let mut cin = 64;
    // 32x4d: internal widths 128/256/512/1024, outputs 256/512/1024/2048.
    let widths = [128usize, 256, 512, 1024];
    let couts = [256usize, 512, 1024, 2048];
    for (i, &blocks) in depths.iter().enumerate() {
        let stride = if i == 0 { 1 } else { 2 };
        hw = bottleneck_stage(
            &mut nodes,
            i + 2,
            blocks,
            cin,
            widths[i],
            couts[i],
            hw,
            stride,
            32,
        );
        cin = couts[i];
    }
    nodes.push(LayerNode::fc("fc", 2048, 1000));
    ModelIr::new("ResNeXt-101", nodes)
}

/// ResNeXt-101 (32×4d) for ImageNet.
pub fn resnext101() -> ModelDesc {
    to_model_desc(&resnext101_ir()).expect("catalog model has weight layers")
}

fn resnet_bottleneck(name: &str, depths: &[usize; 4], groups: usize) -> ModelIr {
    let mut nodes = vec![LayerNode::conv("conv1", 3, 64, 7, 7, 224, 224, 2, 3)];
    let mut hw = 56;
    let mut cin = 64;
    let widths = [64usize, 128, 256, 512];
    let couts = [256usize, 512, 1024, 2048];
    for (i, &blocks) in depths.iter().enumerate() {
        let stride = if i == 0 { 1 } else { 2 };
        hw = bottleneck_stage(
            &mut nodes,
            i + 2,
            blocks,
            cin,
            widths[i],
            couts[i],
            hw,
            stride,
            groups,
        );
        cin = couts[i];
    }
    nodes.push(LayerNode::fc("fc", 2048, 1000));
    ModelIr::new(name, nodes)
}

/// WideResNet-28-10 for CIFAR-10 (`3×32×32`), the Table II entry, as typed
/// IR.
pub fn wide_resnet28_10_ir() -> ModelIr {
    let mut nodes = vec![LayerNode::conv("conv1", 3, 16, 3, 3, 32, 32, 1, 1)];
    let mut hw = 32;
    hw = basic_stage(&mut nodes, 2, 4, 16, 160, hw, 1);
    hw = basic_stage(&mut nodes, 3, 4, 160, 320, hw, 2);
    let _ = basic_stage(&mut nodes, 4, 4, 320, 640, hw, 2);
    nodes.push(LayerNode::fc("fc", 640, 10));
    ModelIr::new("WideResNet", nodes)
}

/// WideResNet-28-10 for CIFAR-10 (`3×32×32`).
pub fn wide_resnet28_10() -> ModelDesc {
    to_model_desc(&wide_resnet28_10_ir()).expect("catalog model has weight layers")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_mac_count_is_canonical() {
        // ~1.8 GMACs.
        let total = resnet18().dense_mults();
        assert!(
            (1_600_000_000..2_000_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn resnet50_mac_count_is_canonical() {
        // ~4.1 GMACs.
        let total = resnet50().dense_mults();
        assert!(
            (3_700_000_000..4_400_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn resnet152_mac_count_is_canonical() {
        // ~11.5 GMACs.
        let total = resnet152().dense_mults();
        assert!(
            (10_500_000_000..12_500_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn resnet152_has_50_blocks_worth_of_layers() {
        // 1 stem + 3·(3+8+36+3) bottleneck convs + 4 downsamples + fc.
        let m = resnet152();
        let convs = m.conv_layers().count();
        assert_eq!(convs, 1 + 3 * 50 + 4);
    }

    #[test]
    fn resnext_groups_reduce_weights() {
        let rx = resnext101();
        let grouped: Vec<_> = rx.layers.iter().filter(|l| l.groups == 32).collect();
        assert!(!grouped.is_empty());
        // A grouped 3x3 at width 128 has 128·4·9 weights, not 128·128·9.
        let first = grouped[0];
        assert_eq!(first.weights(), (first.k * (first.c / 32) * 9) as u64);
    }

    #[test]
    fn wide_resnet_parameter_count_is_canonical() {
        // WRN-28-10 has ~36.5 M parameters.
        let w = wide_resnet28_10().weights();
        assert!((35_000_000..38_000_000).contains(&w), "w={w}");
    }

    #[test]
    fn final_stage_spatial_extent_is_seven() {
        for m in [resnet18(), resnet50(), resnet152()] {
            let last_conv = m
                .conv_layers()
                .last()
                .expect("model has conv layers")
                .clone();
            assert_eq!(last_conv.output_dim().0, 7, "{}", m.name);
        }
    }
}
