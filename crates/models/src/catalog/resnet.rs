//! Residual families: ResNet-18/50/152, ResNeXt-101, WideResNet-28-10.
//!
//! Authored as typed IR (`*_ir`) with *real skip topology*: each residual
//! block's shortcut is an explicit edge into an `Add` join, so the
//! downsample projection (or identity skip) is a genuine parallel branch
//! the simulator can overlap with the main path. The `ModelDesc` variants
//! lower via `Ir → ModelDesc`, which flattens the DAG in list order — the
//! weight-bearing layer sequence (and thus every MAC/weight count) is
//! identical to the historical linear authoring.

use crate::lower::to_model_desc;
use crate::{IrBuilder, LayerNode, ModelDesc, ModelIr};

/// Builds a basic-block stage (two 3×3 convs per block), wiring each
/// block's skip edge into an `Add` join. Returns the join node index that
/// tails the stage and the output spatial extent.
///
/// `prev` is the node feeding the stage; `h` is the stage's input spatial
/// extent; the first block applies `stride` (and a 1×1 projection shortcut
/// when stride ≠ 1 or channels change — otherwise the skip is the identity
/// edge from `prev`).
#[allow(clippy::too_many_arguments)]
fn basic_stage(
    g: &mut IrBuilder,
    prev: usize,
    stage: usize,
    blocks: usize,
    cin: usize,
    cout: usize,
    h: usize,
    stride: usize,
) -> (usize, usize) {
    let mut c = cin;
    let mut hw = h;
    let mut tail = prev;
    for b in 0..blocks {
        let s = if b == 0 { stride } else { 1 };
        let name = |part: &str| format!("conv{stage}_{b}_{part}");
        let a = g.push_after(
            LayerNode::conv(&name("a"), c, cout, 3, 3, hw, hw, s, 1),
            &[tail],
        );
        let out_hw = hw / s;
        let main = g.push_after(
            LayerNode::conv(&name("b"), cout, cout, 3, 3, out_hw, out_hw, 1, 1),
            &[a],
        );
        let skip = if b == 0 && (s != 1 || c != cout) {
            g.push_after(
                LayerNode::conv(&name("ds"), c, cout, 1, 1, hw, hw, s, 0),
                &[tail],
            )
        } else {
            tail
        };
        tail = g.push_after(LayerNode::add(&name("add")), &[main, skip]);
        c = cout;
        hw = out_hw;
    }
    (tail, hw)
}

/// Builds a bottleneck stage (1×1 reduce, 3×3, 1×1 expand ×4), optionally
/// grouped in the 3×3 (ResNeXt), with explicit skip edges per block.
/// Returns the stage's tail join index and output spatial extent.
#[allow(clippy::too_many_arguments)]
fn bottleneck_stage(
    g: &mut IrBuilder,
    prev: usize,
    stage: usize,
    blocks: usize,
    cin: usize,
    width: usize,
    cout: usize,
    h: usize,
    stride: usize,
    groups: usize,
) -> (usize, usize) {
    let mut c = cin;
    let mut hw = h;
    let mut tail = prev;
    for b in 0..blocks {
        let s = if b == 0 { stride } else { 1 };
        let name = |part: &str| format!("conv{stage}_{b}_{part}");
        let reduce = g.push_after(
            LayerNode::conv(&name("1x1a"), c, width, 1, 1, hw, hw, 1, 0),
            &[tail],
        );
        let mid = g.push_after(
            LayerNode::grouped(&name("3x3"), width, width, 3, 3, hw, hw, s, 1, groups),
            &[reduce],
        );
        let out_hw = hw / s;
        let expand = g.push_after(
            LayerNode::conv(&name("1x1b"), width, cout, 1, 1, out_hw, out_hw, 1, 0),
            &[mid],
        );
        let skip = if b == 0 && (s != 1 || c != cout) {
            g.push_after(
                LayerNode::conv(&name("ds"), c, cout, 1, 1, hw, hw, s, 0),
                &[tail],
            )
        } else {
            tail
        };
        tail = g.push_after(LayerNode::add(&name("add")), &[expand, skip]);
        c = cout;
        hw = out_hw;
    }
    (tail, hw)
}

/// ResNet-18 for ImageNet (`3×224×224`) as typed IR, with explicit skip
/// edges per residual block.
pub fn resnet18_ir() -> ModelIr {
    let mut g = IrBuilder::new("ResNet-18");
    let stem = g.push(LayerNode::conv("conv1", 3, 64, 7, 7, 224, 224, 2, 3));
    // maxpool 112 → 56.
    let mut hw = 56;
    let mut tail = stem;
    (tail, hw) = basic_stage(&mut g, tail, 2, 2, 64, 64, hw, 1);
    (tail, hw) = basic_stage(&mut g, tail, 3, 2, 64, 128, hw, 2);
    (tail, hw) = basic_stage(&mut g, tail, 4, 2, 128, 256, hw, 2);
    (tail, _) = basic_stage(&mut g, tail, 5, 2, 256, 512, hw, 2);
    g.push_after(LayerNode::fc("fc", 512, 1000), &[tail]);
    g.finish().expect("catalog ResNet-18 topology is valid")
}

/// ResNet-18 for ImageNet (`3×224×224`).
pub fn resnet18() -> ModelDesc {
    to_model_desc(&resnet18_ir()).expect("catalog model has weight layers")
}

/// ResNet-50 for ImageNet as typed IR.
pub fn resnet50_ir() -> ModelIr {
    resnet_bottleneck("ResNet-50", &[3, 4, 6, 3], 1)
}

/// ResNet-50 for ImageNet.
pub fn resnet50() -> ModelDesc {
    to_model_desc(&resnet50_ir()).expect("catalog model has weight layers")
}

/// ResNet-152 for ImageNet as typed IR.
pub fn resnet152_ir() -> ModelIr {
    resnet_bottleneck("ResNet-152", &[3, 8, 36, 3], 1)
}

/// ResNet-152 for ImageNet.
pub fn resnet152() -> ModelDesc {
    to_model_desc(&resnet152_ir()).expect("catalog model has weight layers")
}

/// ResNeXt-101 (32×4d) for ImageNet as typed IR: ResNet-101 stage depths
/// with 32-way grouped 3×3 convs and doubled internal width.
pub fn resnext101_ir() -> ModelIr {
    // 32x4d: internal widths 128/256/512/1024, outputs 256/512/1024/2048.
    bottleneck_family("ResNeXt-101", &[3, 4, 23, 3], &[128, 256, 512, 1024], 32)
}

/// ResNeXt-101 (32×4d) for ImageNet.
pub fn resnext101() -> ModelDesc {
    to_model_desc(&resnext101_ir()).expect("catalog model has weight layers")
}

fn resnet_bottleneck(name: &str, depths: &[usize; 4], groups: usize) -> ModelIr {
    bottleneck_family(name, depths, &[64, 128, 256, 512], groups)
}

/// Shared ImageNet bottleneck scaffold (stem, four stages, classifier)
/// parameterized by depth, internal width, and 3×3 grouping.
fn bottleneck_family(
    name: &str,
    depths: &[usize; 4],
    widths: &[usize; 4],
    groups: usize,
) -> ModelIr {
    let mut g = IrBuilder::new(name);
    let mut tail = g.push(LayerNode::conv("conv1", 3, 64, 7, 7, 224, 224, 2, 3));
    let mut hw = 56;
    let mut cin = 64;
    let couts = [256usize, 512, 1024, 2048];
    for (i, &blocks) in depths.iter().enumerate() {
        let stride = if i == 0 { 1 } else { 2 };
        (tail, hw) = bottleneck_stage(
            &mut g,
            tail,
            i + 2,
            blocks,
            cin,
            widths[i],
            couts[i],
            hw,
            stride,
            groups,
        );
        cin = couts[i];
    }
    g.push_after(LayerNode::fc("fc", 2048, 1000), &[tail]);
    g.finish()
        .unwrap_or_else(|e| panic!("catalog {name} topology is valid: {e}"))
}

/// WideResNet-28-10 for CIFAR-10 (`3×32×32`), the Table II entry, as typed
/// IR.
pub fn wide_resnet28_10_ir() -> ModelIr {
    let mut g = IrBuilder::new("WideResNet");
    let mut tail = g.push(LayerNode::conv("conv1", 3, 16, 3, 3, 32, 32, 1, 1));
    let mut hw = 32;
    (tail, hw) = basic_stage(&mut g, tail, 2, 4, 16, 160, hw, 1);
    (tail, hw) = basic_stage(&mut g, tail, 3, 4, 160, 320, hw, 2);
    (tail, _) = basic_stage(&mut g, tail, 4, 4, 320, 640, hw, 2);
    g.push_after(LayerNode::fc("fc", 640, 10), &[tail]);
    g.finish().expect("catalog WideResNet topology is valid")
}

/// WideResNet-28-10 for CIFAR-10 (`3×32×32`).
pub fn wide_resnet28_10() -> ModelDesc {
    to_model_desc(&wide_resnet28_10_ir()).expect("catalog model has weight layers")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_mac_count_is_canonical() {
        // ~1.8 GMACs.
        let total = resnet18().dense_mults();
        assert!(
            (1_600_000_000..2_000_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn resnet50_mac_count_is_canonical() {
        // ~4.1 GMACs.
        let total = resnet50().dense_mults();
        assert!(
            (3_700_000_000..4_400_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn resnet152_mac_count_is_canonical() {
        // ~11.5 GMACs.
        let total = resnet152().dense_mults();
        assert!(
            (10_500_000_000..12_500_000_000).contains(&total),
            "total={total}"
        );
    }

    #[test]
    fn resnet152_has_50_blocks_worth_of_layers() {
        // 1 stem + 3·(3+8+36+3) bottleneck convs + 4 downsamples + fc.
        let m = resnet152();
        let convs = m.conv_layers().count();
        assert_eq!(convs, 1 + 3 * 50 + 4);
    }

    #[test]
    fn resnext_groups_reduce_weights() {
        let rx = resnext101();
        let grouped: Vec<_> = rx.layers.iter().filter(|l| l.groups == 32).collect();
        assert!(!grouped.is_empty());
        // A grouped 3x3 at width 128 has 128·4·9 weights, not 128·128·9.
        let first = grouped[0];
        assert_eq!(first.weights(), (first.k * (first.c / 32) * 9) as u64);
    }

    #[test]
    fn wide_resnet_parameter_count_is_canonical() {
        // WRN-28-10 has ~36.5 M parameters.
        let w = wide_resnet28_10().weights();
        assert!((35_000_000..38_000_000).contains(&w), "w={w}");
    }

    #[test]
    fn residual_irs_carry_real_skip_topology() {
        for ir in [
            resnet18_ir(),
            resnet50_ir(),
            resnet152_ir(),
            resnext101_ir(),
            wide_resnet28_10_ir(),
        ] {
            assert!(!ir.is_linear(), "{} must carry edges", ir.name);
            ir.validate().unwrap_or_else(|e| panic!("{}: {e}", ir.name));
            let joins = ir.nodes.iter().filter(|n| n.is_join()).count();
            assert!(joins > 0, "{} has Add joins", ir.name);
            // Every join merges exactly a main path and a skip.
            for (i, node) in ir.nodes.iter().enumerate() {
                if node.is_join() {
                    assert_eq!(ir.predecessors(i).len(), 2, "{} node {i}", ir.name);
                }
            }
        }
    }

    #[test]
    fn resnet18_has_one_add_per_block() {
        let ir = resnet18_ir();
        let adds = ir.nodes.iter().filter(|n| n.is_join()).count();
        assert_eq!(adds, 8, "2 blocks x 4 stages");
    }

    #[test]
    fn final_stage_spatial_extent_is_seven() {
        for m in [resnet18(), resnet50(), resnet152()] {
            let last_conv = m
                .conv_layers()
                .last()
                .expect("model has conv layers")
                .clone();
            assert_eq!(last_conv.output_dim().0, 7, "{}", m.name);
        }
    }
}
