#![warn(missing_docs)]

//! # cscnn-models
//!
//! Layer-shape catalogs of the CNNs the paper evaluates (Tables II/III and
//! Figs. 7–11), per-layer sparsity profiles, and the multiplication-
//! reduction arithmetic behind the compression tables.
//!
//! Unlike `cscnn-nn`, nothing here is trainable: a [`ModelDesc`] is a pure
//! description — layer geometry, stride, grouping — from which MAC counts,
//! weight counts, centrosymmetric eligibility and simulator workloads are
//! derived.
//!
//! [`ModelDesc`] is the *catalog-side entry point* of the workspace's
//! lowering chain: [`lower::to_ir`] raises a descriptor into the typed
//! `cscnn-ir` `ModelIr` (the hub every representation meets at), and
//! [`lower::to_model_desc`] lowers back losslessly for the round-trip
//! tests.
//!
//! # Example
//!
//! ```
//! use cscnn_models::catalog;
//!
//! let alexnet = catalog::alexnet();
//! // AlexNet C1 has stride 4, so it is not centrosymmetric-eligible.
//! assert!(!alexnet.layers[0].centro_eligible());
//! assert!(alexnet.layers[1].centro_eligible());
//! ```

pub mod catalog;
mod layer;
pub mod lower;
pub mod mults;
pub mod sparsity;

pub use cscnn_ir::{IrBuilder, IrEdge, IrError, LayerNode, ModelIr, TopologyError};
pub use layer::{LayerDesc, LayerKind, ModelDesc};
pub use mults::{CompressionScheme, ModelCompression};
pub use sparsity::SparsityProfile;
