//! Lowering passes between the typed IR and the geometry catalog.
//!
//! `Ir → ModelDesc` ([`to_model_desc`]) validates the graph topology, then
//! keeps the weight-bearing nodes in (topological) list order and drops
//! the shape-routing and join ones — flattening a DAG into the sequential
//! geometry view; `ModelDesc → Ir` ([`to_ir`]) raises a descriptor back to
//! a linear-chain IR, and is an exact right inverse, so
//! `to_model_desc(&to_ir(&desc)) == Ok(desc)` holds bit-identically for
//! every catalog model (see `tests/integration_ir.rs`).

use cscnn_ir::{IrError, LayerNode, ModelIr};

use crate::layer::{LayerDesc, LayerKind, ModelDesc};

/// Lowers one IR node to its geometry descriptor, or `None` for nodes that
/// carry no weights (pool / activation / flatten / norm / dropout, and the
/// `Add` / `Concat` joins — merges move data, not MACs).
pub fn layer_desc(node: &LayerNode) -> Option<LayerDesc> {
    match node {
        LayerNode::Conv { name, geom, .. } | LayerNode::Depthwise { name, geom, .. } => {
            Some(LayerDesc::grouped(
                name,
                geom.c,
                geom.k,
                geom.r,
                geom.s,
                geom.h,
                geom.w,
                geom.stride,
                geom.padding,
                geom.groups,
            ))
        }
        LayerNode::FullyConnected {
            name,
            inputs,
            outputs,
            ..
        } => Some(LayerDesc::fc(name, *inputs, *outputs)),
        _ => None,
    }
}

/// `Ir → ModelDesc` geometry lowering: validates the topology, then keeps
/// the weight-bearing nodes in list order (which validation guarantees is
/// a topological order, so the flattened view is a legal schedule).
///
/// # Errors
///
/// [`IrError::BadTopology`] if the graph is malformed;
/// [`IrError::EmptyModel`] if the IR has no weight-bearing nodes.
pub fn to_model_desc(ir: &ModelIr) -> Result<ModelDesc, IrError> {
    ir.validate().map_err(|error| IrError::BadTopology {
        model: ir.name.clone(),
        error,
    })?;
    let layers: Vec<LayerDesc> = ir.nodes.iter().filter_map(layer_desc).collect();
    if layers.is_empty() {
        return Err(IrError::EmptyModel {
            model: ir.name.clone(),
        });
    }
    Ok(ModelDesc::new(&ir.name, layers))
}

/// `ModelDesc → Ir` raising: one weight-bearing node per descriptor.
///
/// Depthwise inference is deterministic on both sides (`groups == c == k
/// > 1`), so this is a bit-exact right inverse of [`to_model_desc`].
pub fn to_ir(model: &ModelDesc) -> ModelIr {
    let nodes = model
        .layers
        .iter()
        .map(|l| match l.kind {
            LayerKind::FullyConnected => LayerNode::fc(&l.name, l.c, l.k),
            LayerKind::Conv | LayerKind::Depthwise => LayerNode::grouped(
                &l.name, l.c, l.k, l.r, l.s, l.h, l.w, l.stride, l.padding, l.groups,
            ),
        })
        .collect();
    ModelIr::new(&model.name, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_ir::{ActivationKind, PoolKind};

    #[test]
    fn weightless_nodes_are_dropped_by_geometry_lowering() {
        let ir = ModelIr::new(
            "m",
            vec![
                LayerNode::conv("C1", 1, 6, 5, 5, 28, 28, 1, 2),
                LayerNode::Activation {
                    kind: ActivationKind::Relu,
                },
                LayerNode::Pool {
                    kind: PoolKind::Max,
                    window: 2,
                    stride: 2,
                },
                LayerNode::Flatten,
                LayerNode::fc("F5", 1176, 10),
            ],
        );
        let desc = to_model_desc(&ir).expect("has weight layers");
        assert_eq!(desc.layers.len(), 2);
        assert_eq!(desc.layers[0].name, "C1");
        assert_eq!(desc.layers[1].kind, LayerKind::FullyConnected);
    }

    #[test]
    fn empty_ir_reports_model_name() {
        let ir = ModelIr::new("hollow", vec![LayerNode::Flatten]);
        let err = to_model_desc(&ir).expect_err("no weight layers");
        assert_eq!(
            err,
            IrError::EmptyModel {
                model: "hollow".into()
            }
        );
    }

    #[test]
    fn malformed_topology_is_rejected_before_flattening() {
        // An Add join in an implicit chain has fan-in 1 — invalid.
        let ir = ModelIr::new(
            "res",
            vec![
                LayerNode::conv("C1", 1, 4, 3, 3, 8, 8, 1, 1),
                LayerNode::add("join"),
            ],
        );
        let err = to_model_desc(&ir).expect_err("starved join");
        assert!(
            matches!(err, IrError::BadTopology { ref model, .. } if model == "res"),
            "{err}"
        );
        assert!(err.to_string().contains("join"), "{err}");
    }

    #[test]
    fn dag_ir_flattens_in_list_order() {
        let mut g = cscnn_ir::IrBuilder::new("diamond");
        let stem = g.push(LayerNode::conv("a", 1, 4, 3, 3, 8, 8, 1, 1));
        let branch = g.push_after(LayerNode::conv("b", 4, 4, 3, 3, 8, 8, 1, 1), &[stem]);
        let join = g.push_after(LayerNode::add("j"), &[branch]);
        g.edge(stem, join);
        let ir = g.finish().expect("valid diamond");
        let desc = to_model_desc(&ir).expect("flattens");
        let names: Vec<_> = desc.layers.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["a", "b"], "joins are dropped, order preserved");
    }

    #[test]
    fn round_trip_preserves_grouping_and_kind() {
        let desc = ModelDesc::new(
            "g",
            vec![
                LayerDesc::conv("C1", 3, 96, 11, 11, 224, 224, 4, 2),
                LayerDesc::grouped("C2", 96, 256, 5, 5, 27, 27, 1, 2, 2),
                LayerDesc::grouped("dw", 116, 116, 3, 3, 28, 28, 1, 1, 116),
                LayerDesc::fc("FC", 1024, 1000),
            ],
        );
        let back = to_model_desc(&to_ir(&desc)).expect("round trip");
        assert_eq!(back, desc);
        assert_eq!(back.layers[2].kind, LayerKind::Depthwise);
    }
}
