//! Layer and model descriptors.

use std::fmt;

/// The kind of a weight-bearing layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard (possibly grouped) 2-D convolution.
    Conv,
    /// Depthwise convolution (`groups == in_channels`).
    Depthwise,
    /// Fully-connected layer (modeled as `1×1` conv over a `1×1` map).
    FullyConnected,
}

/// Geometry of one weight-bearing layer.
///
/// Uses the paper's notation: `C`/`K` input/output channels, `R×S` kernel,
/// `H×W` *input* spatial extent.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerDesc {
    /// Human-readable layer name (e.g. `"C1"`, `"conv4_2"`).
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Input channels (`C`).
    pub c: usize,
    /// Output channels (`K`).
    pub k: usize,
    /// Kernel height (`R`).
    pub r: usize,
    /// Kernel width (`S`).
    pub s: usize,
    /// Input feature-map height (`H`).
    pub h: usize,
    /// Input feature-map width (`W`).
    pub w: usize,
    /// Stride (both spatial dims).
    pub stride: usize,
    /// Zero padding (both spatial dims).
    pub padding: usize,
    /// Convolution groups (1 = dense conv; `c` = depthwise).
    pub groups: usize,
}

impl LayerDesc {
    /// A standard convolution layer descriptor.
    ///
    /// # Panics
    ///
    /// Panics on zero extents or when `c % groups != 0 || k % groups != 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: &str,
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        h: usize,
        w: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self::grouped(name, c, k, r, s, h, w, stride, padding, 1)
    }

    /// A grouped convolution layer descriptor.
    ///
    /// # Panics
    ///
    /// Panics on zero extents or indivisible groups.
    #[allow(clippy::too_many_arguments)]
    pub fn grouped(
        name: &str,
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        h: usize,
        w: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> Self {
        assert!(c > 0 && k > 0 && r > 0 && s > 0 && h > 0 && w > 0 && stride > 0 && groups > 0);
        assert!(
            c.is_multiple_of(groups) && k.is_multiple_of(groups),
            "channels must divide groups: c={c} k={k} groups={groups}"
        );
        let kind = if groups == c && groups == k && groups > 1 {
            LayerKind::Depthwise
        } else {
            LayerKind::Conv
        };
        LayerDesc {
            name: name.to_string(),
            kind,
            c,
            k,
            r,
            s,
            h,
            w,
            stride,
            padding,
            groups,
        }
    }

    /// A fully-connected layer descriptor (`in → out`).
    ///
    /// # Panics
    ///
    /// Panics on zero extents.
    pub fn fc(name: &str, inputs: usize, outputs: usize) -> Self {
        assert!(inputs > 0 && outputs > 0);
        LayerDesc {
            name: name.to_string(),
            kind: LayerKind::FullyConnected,
            c: inputs,
            k: outputs,
            r: 1,
            s: 1,
            h: 1,
            w: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    /// Output spatial extent `(H', W')`.
    pub fn output_dim(&self) -> (usize, usize) {
        let ph = self.h + 2 * self.padding;
        let pw = self.w + 2 * self.padding;
        assert!(
            ph >= self.r && pw >= self.s,
            "layer {}: padded input smaller than kernel",
            self.name
        );
        (
            (ph - self.r) / self.stride + 1,
            (pw - self.s) / self.stride + 1,
        )
    }

    /// Number of output pixels `H'·W'`.
    pub fn output_pixels(&self) -> u64 {
        let (oh, ow) = self.output_dim();
        (oh * ow) as u64
    }

    /// Number of weights (grouping-aware): `K·(C/groups)·R·S`.
    pub fn weights(&self) -> u64 {
        (self.k * (self.c / self.groups) * self.r * self.s) as u64
    }

    /// Dense multiply count per inference: `weights · H'·W'`.
    pub fn dense_mults(&self) -> u64 {
        self.weights() * self.output_pixels()
    }

    /// Whether the centrosymmetric constraint applies (paper §II-A):
    /// unit-stride convolution with a multi-weight kernel. FC layers and
    /// strided convolutions are excluded; `1×1` kernels gain nothing.
    pub fn centro_eligible(&self) -> bool {
        self.kind != LayerKind::FullyConnected && self.stride == 1 && self.r * self.s > 1
    }

    /// Number of independent weights under the centrosymmetric constraint:
    /// `⌈R·S/2⌉` per kernel slice for eligible layers, all weights otherwise.
    pub fn centro_weights(&self) -> u64 {
        if self.centro_eligible() {
            let unique = (self.r * self.s).div_ceil(2);
            (self.k * (self.c / self.groups)) as u64 * unique as u64
        } else {
            self.weights()
        }
    }

    /// Input activation element count `C·H·W`.
    pub fn input_activations(&self) -> u64 {
        (self.c * self.h * self.w) as u64
    }

    /// Output activation element count `K·H'·W'`.
    pub fn output_activations(&self) -> u64 {
        self.k as u64 * self.output_pixels()
    }
}

impl fmt::Display for LayerDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{}x{}x{} over {}x{} (stride {}, pad {}, groups {})",
            self.name,
            self.k,
            self.c,
            self.r,
            self.s,
            self.h,
            self.w,
            self.stride,
            self.padding,
            self.groups
        )
    }
}

/// A whole benchmark network: its name and weight-bearing layers in order.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelDesc {
    /// Canonical model name (`"AlexNet"`, `"VGG16"`, …).
    pub name: String,
    /// Weight-bearing layers in execution order.
    pub layers: Vec<LayerDesc>,
}

impl ModelDesc {
    /// Creates a model descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: &str, layers: Vec<LayerDesc>) -> Self {
        assert!(!layers.is_empty(), "model must have at least one layer");
        ModelDesc {
            name: name.to_string(),
            layers,
        }
    }

    /// Total dense multiply count per inference.
    pub fn dense_mults(&self) -> u64 {
        self.layers.iter().map(|l| l.dense_mults()).sum()
    }

    /// Total weight count.
    pub fn weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weights()).sum()
    }

    /// Convolutional (non-FC) layers only.
    pub fn conv_layers(&self) -> impl Iterator<Item = &LayerDesc> {
        self.layers
            .iter()
            .filter(|l| l.kind != LayerKind::FullyConnected)
    }

    /// Fully-connected layers only.
    pub fn fc_layers(&self) -> impl Iterator<Item = &LayerDesc> {
        self.layers
            .iter()
            .filter(|l| l.kind == LayerKind::FullyConnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_c1_shape_math() {
        // 96 filters of 11x11x3, stride 4, 224x224 input with pad 2 → 55x55.
        let c1 = LayerDesc::conv("C1", 3, 96, 11, 11, 224, 224, 4, 2);
        assert_eq!(c1.output_dim(), (55, 55));
        assert_eq!(c1.weights(), 96 * 3 * 11 * 11);
        assert_eq!(c1.dense_mults(), 96 * 3 * 11 * 11 * 55 * 55);
        assert!(!c1.centro_eligible(), "stride 4 is ineligible");
    }

    #[test]
    fn fc_layer_is_ineligible_and_one_mult_per_weight() {
        let fc = LayerDesc::fc("FC6", 9216, 4096);
        assert!(!fc.centro_eligible());
        assert_eq!(fc.dense_mults(), fc.weights());
        assert_eq!(fc.weights(), 9216 * 4096);
    }

    #[test]
    fn centro_weights_halve_odd_kernels() {
        let conv = LayerDesc::conv("c", 64, 128, 3, 3, 56, 56, 1, 1);
        assert!(conv.centro_eligible());
        // 5 unique of 9 weights.
        assert_eq!(conv.centro_weights(), 128 * 64 * 5);
        let ratio = conv.weights() as f64 / conv.centro_weights() as f64;
        assert!((ratio - 1.8).abs() < 1e-12);
    }

    #[test]
    fn depthwise_detection_and_weight_count() {
        let dw = LayerDesc::grouped("dw", 116, 116, 3, 3, 28, 28, 1, 1, 116);
        assert_eq!(dw.kind, LayerKind::Depthwise);
        assert_eq!(dw.weights(), 116 * 9);
    }

    #[test]
    fn grouped_conv_weight_count() {
        // ResNeXt-style: 256→256, groups 32 → each group 8→8.
        let g = LayerDesc::grouped("gc", 256, 256, 3, 3, 56, 56, 1, 1, 32);
        assert_eq!(g.weights(), 256 * 8 * 9);
        assert_eq!(g.kind, LayerKind::Conv);
    }

    #[test]
    #[should_panic(expected = "channels must divide groups")]
    fn grouped_conv_rejects_indivisible_channels() {
        let _ = LayerDesc::grouped("bad", 10, 10, 3, 3, 8, 8, 1, 1, 3);
    }
}
