//! Multiplication-reduction arithmetic (the math behind Tables II/III).

use crate::sparsity::{paper_reduction_targets, SparsityProfile};
use crate::ModelDesc;

/// A compression scheme from Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompressionScheme {
    /// No compression.
    Dense,
    /// Deep Compression magnitude pruning (Han et al.).
    DeepCompression,
    /// Centrosymmetric filters only (no pruning).
    Cscnn,
    /// Centrosymmetric filters + magnitude pruning.
    CscnnPruning,
}

impl CompressionScheme {
    /// Whether stored-weight counts are halved by the centrosymmetric
    /// structure under this scheme.
    pub fn uses_centrosymmetric(self) -> bool {
        matches!(
            self,
            CompressionScheme::Cscnn | CompressionScheme::CscnnPruning
        )
    }

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            CompressionScheme::Dense => "Dense",
            CompressionScheme::DeepCompression => "Deep compression",
            CompressionScheme::Cscnn => "CSCNN",
            CompressionScheme::CscnnPruning => "CSCNN+Pruning",
        }
    }
}

/// A model paired with a compression scheme and its calibrated sparsity
/// profile — enough to answer every "how many multiplications / weights"
/// question in the compression tables and to feed the simulator.
#[derive(Clone, Debug)]
pub struct ModelCompression {
    /// The network shapes.
    pub model: ModelDesc,
    /// The scheme applied.
    pub scheme: CompressionScheme,
    /// Calibrated per-layer densities.
    pub profile: SparsityProfile,
}

impl ModelCompression {
    /// Builds the scheme's calibrated profile for `model`, using the
    /// paper-reported reduction targets for the pruned schemes.
    pub fn new(model: ModelDesc, scheme: CompressionScheme) -> Self {
        let (dc_target, cp_target) = paper_reduction_targets(&model.name);
        let profile = match scheme {
            CompressionScheme::Dense => SparsityProfile::dense(&model),
            CompressionScheme::Cscnn => SparsityProfile::cscnn(&model),
            CompressionScheme::DeepCompression => {
                SparsityProfile::deep_compression(&model, dc_target)
            }
            CompressionScheme::CscnnPruning => SparsityProfile::cscnn_pruned(&model, cp_target),
        };
        ModelCompression {
            model,
            scheme,
            profile,
        }
    }

    /// Stored weights in layer `i` under this scheme (pruning- and
    /// structure-aware).
    pub fn stored_weights(&self, i: usize) -> f64 {
        let l = &self.model.layers[i];
        let base = if self.scheme.uses_centrosymmetric() {
            l.centro_weights() as f64
        } else {
            l.weights() as f64
        };
        base * self.profile.weight_density[i]
    }

    /// Multiplications required for layer `i` (zero-activation savings
    /// deliberately excluded, per the tables' footnote).
    pub fn layer_mults(&self, i: usize) -> f64 {
        self.stored_weights(i) * self.model.layers[i].output_pixels() as f64
    }

    /// Total multiplications for the model under this scheme.
    pub fn total_mults(&self) -> f64 {
        (0..self.model.layers.len())
            .map(|i| self.layer_mults(i))
            .sum()
    }

    /// Overall multiplication-reduction factor vs dense.
    pub fn reduction(&self) -> f64 {
        self.model.dense_mults() as f64 / self.total_mults()
    }

    /// Total stored weight count (for storage comparisons).
    pub fn total_stored_weights(&self) -> f64 {
        (0..self.model.layers.len())
            .map(|i| self.stored_weights(i))
            .sum()
    }

    /// Weight-storage compression factor vs dense.
    pub fn weight_compression(&self) -> f64 {
        self.model.weights() as f64 / self.total_stored_weights()
    }
}

/// Multiplication reduction Winograd `F(2×2, 3×3)` would deliver on this
/// model: eligible layers (unit-stride dense 3×3 convolutions) drop to 4
/// multiplications per output (2.25× fewer); everything else is unchanged.
///
/// The comparison the paper's §VI-C gestures at: Winograd's algebraic reuse
/// is stronger per eligible layer than the centrosymmetric 1.8×, but it
/// cannot exploit weight sparsity (the transformed kernels densify) and
/// does not halve storage — whereas centrosymmetric reuse composes with
/// pruning.
pub fn winograd_reduction(model: &ModelDesc) -> f64 {
    let dense = model.dense_mults() as f64;
    let reduced: f64 = model
        .layers
        .iter()
        .map(|l| {
            let m = l.dense_mults() as f64;
            // Winograd applies per group, so grouped/depthwise 3x3s
            // qualify too; only stride and kernel size matter.
            let eligible =
                l.kind != crate::LayerKind::FullyConnected && l.stride == 1 && l.r == 3 && l.s == 3;
            if eligible {
                m * 4.0 / 9.0
            } else {
                m
            }
        })
        .sum();
    dense / reduced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn vgg16_cscnn_reduction_matches_paper_headline() {
        // All of VGG-16's conv layers are unit-stride 3x3 → exactly 1.8x on
        // conv; FC layers dilute it slightly. Paper reports 1.8x.
        let mc = ModelCompression::new(catalog::vgg16(), CompressionScheme::Cscnn);
        let red = mc.reduction();
        assert!((1.75..=1.80).contains(&red), "red={red:.3}");
    }

    #[test]
    fn alexnet_cscnn_reduction_close_to_paper() {
        // Paper reports 1.5x; C1 (stride 4) and the FC layers are
        // ineligible. Expect ~1.5-1.65.
        let mc = ModelCompression::new(catalog::alexnet(), CompressionScheme::Cscnn);
        let red = mc.reduction();
        assert!((1.45..=1.70).contains(&red), "red={red:.3}");
    }

    #[test]
    fn resnet18_cscnn_reduction_close_to_paper() {
        // Paper reports 1.7x. With torchvision shapes (stride on the first
        // 3x3 of each stage, which disqualifies it) the structural bound is
        // ~1.58; the paper's variant presumably strides elsewhere. Accept
        // the 1.55-1.85 band — ordering vs other schemes is what matters.
        let mc = ModelCompression::new(catalog::resnet18(), CompressionScheme::Cscnn);
        let red = mc.reduction();
        assert!((1.55..=1.85).contains(&red), "red={red:.3}");
    }

    #[test]
    fn pruned_schemes_hit_paper_targets() {
        for model in catalog::evaluation_suite() {
            let (dc_t, cp_t) = paper_reduction_targets(&model.name);
            let dc = ModelCompression::new(model.clone(), CompressionScheme::DeepCompression);
            assert!(
                (dc.reduction() - dc_t).abs() / dc_t < 0.02,
                "{} DC: {} vs {}",
                model.name,
                dc.reduction(),
                dc_t
            );
            let cp = ModelCompression::new(model.clone(), CompressionScheme::CscnnPruning);
            assert!(
                (cp.reduction() - cp_t).abs() / cp_t < 0.02,
                "{} CSCNN+P: {} vs {}",
                model.name,
                cp.reduction(),
                cp_t
            );
        }
    }

    #[test]
    fn winograd_reduction_peaks_on_all_3x3_models() {
        // VGG-16 is all unit-stride 3x3 conv: close to the full 2.25x
        // (diluted only by FC layers).
        let vgg = winograd_reduction(&catalog::vgg16());
        assert!((2.1..=2.25).contains(&vgg), "vgg={vgg}");
        // Pointwise-dominated models gain almost nothing.
        let shuffle = winograd_reduction(&catalog::shufflenet_v2());
        assert!(shuffle < 1.1, "shuffle={shuffle}");
        // AlexNet: C1 (stride 4, 11x11) and C2 (5x5) are ineligible.
        let alex = winograd_reduction(&catalog::alexnet());
        assert!((1.2..=1.8).contains(&alex), "alex={alex}");
    }

    #[test]
    fn dense_scheme_is_identity() {
        let mc = ModelCompression::new(catalog::lenet5(), CompressionScheme::Dense);
        assert!((mc.reduction() - 1.0).abs() < 1e-9);
        assert!((mc.weight_compression() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cscnn_weight_compression_near_two_for_vgg() {
        let mc = ModelCompression::new(catalog::vgg16_cifar(), CompressionScheme::Cscnn);
        // Conv weights halve (1.8x for 3x3); the single small FC barely
        // dilutes it.
        let wc = mc.weight_compression();
        assert!((1.7..=1.85).contains(&wc), "wc={wc:.3}");
    }
}
