//! Minimal, std-only JSON for the CSCNN workspace.
//!
//! The simulator's exports (reports, Chrome traces, roofline data) and its
//! config ingestion need exactly one serialization format, and the build
//! environment is fully offline, so this crate provides the small subset of
//! JSON machinery the workspace uses with zero dependencies:
//!
//! - [`Value`]: an ordered-keys JSON document model (insertion order is
//!   preserved so exports are byte-stable run to run — part of the repo's
//!   determinism contract).
//! - [`to_string`] / [`to_string_pretty`]: serialization of any [`ToJson`]
//!   type.
//! - [`from_str`]: strict recursive-descent parsing into any [`FromJson`]
//!   type (including [`Value`] itself).
//! - [`impl_to_json!`] / [`impl_from_json!`]: field-list macros replacing
//!   the former `serde` derives for plain structs.
//!
//! The function names deliberately mirror `serde_json` so call sites read
//! the same as before the workspace went dependency-free.
//!
//! Relative to the workspace's lowering chain this crate is a leaf: it
//! depends on nothing and serializes the chain's endpoints — `cscnn-ir`'s
//! on-disk `ModelIr` artifacts at the front, and `cscnn-sim`'s run reports
//! and batch summaries at the back.

#![warn(missing_docs)]

use std::fmt;

/// A parsed or constructed JSON document.
///
/// Numbers keep their original flavor (`U64`/`I64`/`F64`) so integer
/// counters survive a round trip exactly. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A number with a fractional part or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The element at `idx`, if this is an array long enough.
    pub fn get_idx(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any number flavor).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric view as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric view as `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) => i64::try_from(n).ok(),
            Value::I64(n) => Some(n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (key/value pairs in insertion order).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_idx(idx).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_int_eq {
    ($($t:ty),+) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64().is_some_and(|n| i64::try_from(*other).is_ok_and(|o| n == o))
                    || self.as_u64().is_some_and(|n| u64::try_from(*other).is_ok_and(|o| n == o))
            }
        }
    )+};
}

impl_int_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A parse or conversion failure, with a byte offset when parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
    at: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            at: None,
        }
    }

    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Error {
            msg: msg.into(),
            at: Some(pos),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(pos) => write!(f, "{} at byte {}", self.msg, pos),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Conversion into a JSON [`Value`]. Implement via [`impl_to_json!`] for
/// plain structs, or by hand when field names differ from JSON keys.
pub trait ToJson {
    /// Builds the JSON document model for `self`.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::F64(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )+};
}

impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
    )+};
}

impl_to_json_int!(i8, i16, i32, i64);

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

/// Serializes to compact JSON (no whitespace).
///
/// The `Result` return mirrors the `serde_json` signature; with this
/// crate's document model serialization itself cannot fail.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (2-space indent), matching the layout the
/// workspace's exports used under `cscnn_json::to_string_pretty`.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Obj(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
            let (k, v) = &pairs[i];
            write_escaped(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; `null` is the conventional stand-in.
        out.push_str("null");
        return;
    }
    let s = n.to_string();
    out.push_str(&s);
    // `Display` for a whole float prints no fractional part ("4"); keep the
    // number flavor visible so a round trip stays a float.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Conversion out of a JSON [`Value`]. Implement via [`impl_from_json!`]
/// for plain structs.
pub trait FromJson: Sized {
    /// Reads `Self` from the document model.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected a boolean"))
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected a string"))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected a number"))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        f64::from_json(v).map(|n| n as f32)
    }
}

macro_rules! impl_from_json_uint {
    ($($t:ty),+) => {$(
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::new("expected a non-negative integer"))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )+};
}

impl_from_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_from_json_int {
    ($($t:ty),+) => {$(
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::new("expected an integer"))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )+};
}

impl_from_json_int!(i8, i16, i32, i64, isize);

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::new("expected an array"))?;
        items.iter().map(T::from_json).collect()
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

/// Parses a JSON document into any [`FromJson`] type (commonly [`Value`]).
/// Strict: rejects trailing garbage, unterminated literals, and bad
/// escapes, with a byte offset in the error.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    T::from_json(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::at("expected a JSON value", self.pos)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::at(format!("expected '{word}'"), self.pos))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => return Err(Error::at("invalid escape", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Advance one full UTF-8 character (input is &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| (b & 0xc0) == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::at("invalid UTF-8", start))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let hex = |p: &mut Self| -> Result<u32, Error> {
            let start = p.pos;
            let slice = p
                .bytes
                .get(p.pos..p.pos + 4)
                .ok_or_else(|| Error::at("truncated \\u escape", start))?;
            let s = std::str::from_utf8(slice).map_err(|_| Error::at("bad \\u escape", start))?;
            let n = u32::from_str_radix(s, 16).map_err(|_| Error::at("bad \\u escape", start))?;
            p.pos += 4;
            Ok(n)
        };
        let first = hex(self)?;
        // Surrogate pair handling for characters outside the BMP.
        if (0xd800..0xdc00).contains(&first) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(Error::at("unpaired surrogate", self.pos));
            }
            self.pos += 2;
            let second = hex(self)?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(Error::at("invalid low surrogate", self.pos));
            }
            let code = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
            char::from_u32(code).ok_or_else(|| Error::at("invalid surrogate pair", self.pos))
        } else {
            char::from_u32(first).ok_or_else(|| Error::at("invalid \\u escape", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("bad number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at("bad number", start))
    }
}

// ---------------------------------------------------------------------------
// Struct impl macros (the derive replacements)
// ---------------------------------------------------------------------------

/// Implements [`ToJson`] for a plain struct by listing its fields; each
/// becomes an object key of the same name, in the listed order:
///
/// ```
/// struct Point { x: f64, y: f64 }
/// cscnn_json::impl_to_json!(Point { x, y });
/// let json = cscnn_json::to_string(&Point { x: 1.0, y: 2.0 }).unwrap();
/// assert_eq!(json, r#"{"x":1.0,"y":2.0}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Obj(vec![
                    $((
                        stringify!($field).to_owned(),
                        $crate::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }
    };
}

/// Implements [`FromJson`] for a plain struct by listing its fields; every
/// field must be present in the object (strict, like the former `serde`
/// derive without defaults):
///
/// ```
/// #[derive(PartialEq, Debug)]
/// struct Point { x: f64, y: f64 }
/// cscnn_json::impl_from_json!(Point { x, y });
/// let p: Point = cscnn_json::from_str(r#"{"x":1.0,"y":2.0}"#).unwrap();
/// assert_eq!(p, Point { x: 1.0, y: 2.0 });
/// ```
#[macro_export]
macro_rules! impl_from_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok(Self {
                    $($field: $crate::FromJson::from_json(
                        v.get(stringify!($field)).ok_or_else(|| {
                            $crate::Error::missing_field(stringify!($field))
                        })?,
                    )?,)+
                })
            }
        }
    };
}

impl Error {
    /// Error for a struct field absent from the JSON object (used by
    /// [`impl_from_json!`]).
    pub fn missing_field(name: &str) -> Self {
        Error::new(format!("missing field '{name}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.25", "1e3"] {
            let v: Value = from_str(text).expect(text);
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).expect(&back);
            assert_eq!(v, v2, "round trip of {text}");
        }
        assert_eq!(from_str::<Value>("42").unwrap(), Value::U64(42));
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn number_flavors_are_preserved() {
        assert_eq!(to_string(&Value::U64(4)).unwrap(), "4");
        assert_eq!(to_string(&Value::F64(4.0)).unwrap(), "4.0");
        assert_eq!(to_string(&Value::F64(0.125)).unwrap(), "0.125");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "a\"b\\c\nd\te\u{08}\u{0c}\u{1}ü∀";
        let json = to_string(&original).unwrap();
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back.as_str(), Some(original));
        let v: Value = from_str(r#""\u0041\u00fc\ud834\udd1e""#).unwrap();
        assert_eq!(v.as_str(), Some("Aü𝄞"));
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v: Value = from_str(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn indexing_and_comparisons_work() {
        let v: Value = from_str(r#"[{"name":"pe0","tid":0,"ts":1.5}]"#).unwrap();
        assert_eq!(v[0]["name"], "pe0");
        assert!(v[0]["tid"] == 0);
        assert_eq!(v[0]["ts"].as_f64(), Some(1.5));
        assert!(v[0]["missing"].is_null());
        assert!(v[7].is_null());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\"1}",
            "1 2",
            "[1 2]",
            "nulll",
            "+1",
            "--3",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn struct_macros_round_trip() {
        #[derive(Debug, PartialEq)]
        struct Cfg {
            pes: usize,
            rate: f64,
            label: String,
        }
        impl_to_json!(Cfg { pes, rate, label });
        impl_from_json!(Cfg { pes, rate, label });
        let cfg = Cfg {
            pes: 64,
            rate: 0.5,
            label: "paper".to_owned(),
        };
        let json = to_string(&cfg).unwrap();
        assert_eq!(json, r#"{"pes":64,"rate":0.5,"label":"paper"}"#);
        let back: Cfg = from_str(&json).unwrap();
        assert_eq!(back, cfg);
        let err = from_str::<Cfg>(r#"{"pes":64,"rate":0.5}"#).unwrap_err();
        assert!(err.to_string().contains("label"), "{err}");
    }

    #[test]
    fn integers_accept_cross_flavor_reads() {
        // A config hand-written with "cycle_time": 1 (integer) must still
        // read into an f64 field.
        assert_eq!(f64::from_json(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_json(&Value::I64(3)).unwrap(), 3);
        assert!(u64::from_json(&Value::I64(-3)).is_err());
        assert!(u8::from_json(&Value::U64(300)).is_err());
    }
}
