//! `cscnn-lint` CLI: lint the workspace and report violations.
//!
//! ```text
//! cargo run -p cscnn-lint [-- --format json] [--root PATH] [--allowlist PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cscnn_lint::{lint_workspace, to_json, Allowlist};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(f @ ("human" | "json")) => format = f.to_string(),
                    _ => return usage("--format needs `human` or `json`"),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "--allowlist" => {
                i += 1;
                match args.get(i) {
                    Some(p) => allow_path = Some(PathBuf::from(p)),
                    None => return usage("--allowlist needs a path"),
                }
            }
            "--help" | "-h" => {
                println!(
                    "cscnn-lint: workspace invariant linter\n\n\
                     usage: cscnn-lint [--format human|json] [--root PATH] [--allowlist PATH]\n\n\
                     Rules and rationale: docs/static_analysis.md"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown option `{other}`")),
        }
        i += 1;
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("cscnn-lint: could not find the workspace root (no Cargo.toml with [workspace] above the current directory); pass --root");
            return ExitCode::from(2);
        }
    };
    // A root with no manifest would scan zero files and report "clean";
    // refuse it so a typo'd --root cannot silently pass.
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "cscnn-lint: {} has no Cargo.toml; not a workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }
    let allow_path = allow_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let allow = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cscnn-lint: cannot read {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cscnn-lint: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::default()
    };

    let outcome = match lint_workspace(&root, &allow) {
        Ok(o) => o,
        Err(e) => {
            eprintln!(
                "cscnn-lint: I/O error while scanning {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        println!("{}", to_json(&outcome.violations));
    } else {
        for d in &outcome.violations {
            println!("{d}");
        }
        for (path, rule) in allow.unused(&outcome.suppressed) {
            eprintln!(
                "cscnn-lint: warning: stale allowlist entry `{path}:{rule}` suppressed nothing"
            );
        }
        if outcome.violations.is_empty() {
            println!(
                "cscnn-lint: clean ({} allowlist entr{} in effect)",
                outcome.suppressed.len(),
                if outcome.suppressed.len() == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
        } else {
            eprintln!("cscnn-lint: {} violation(s)", outcome.violations.len());
        }
    }

    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cscnn-lint: {msg}\nusage: cscnn-lint [--format human|json] [--root PATH] [--allowlist PATH]");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
