//! `cscnn-lint` — a workspace invariant linter for the CSCNN reproduction.
//!
//! The simulator's credibility rests on its cycle/byte/energy accounting
//! being exact and its runs being replayable. This crate enforces those
//! properties statically, with repo-specific rules that `clippy` cannot
//! express (see `docs/static_analysis.md` for the rationale of each rule):
//!
//! 1. `no-narrowing-cast` — bare `as <int>` casts are forbidden in
//!    `crates/sim/src` and `crates/sparse/src`; conversions go through the
//!    checked helpers in `cscnn_sim::util` / `cscnn_sparse::cast`.
//! 2. `no-panic-in-hot-path` — `.unwrap()` / `.expect(` / `panic!` are
//!    forbidden in the PE, DRAM, baseline and tensor-kernel hot paths;
//!    those paths return typed errors (`assert!` remains available for
//!    contract checks).
//! 3. `seeded-rng-only` — `thread_rng(`, `from_entropy(` and
//!    `SystemTime::now` are forbidden everywhere: every simulation run must
//!    be reproducible from its seed.
//! 4. `deterministic-sum` — unordered `.sum::<f32>()` / `.sum::<f64>()`
//!    is forbidden in the energy/report paths; fixed-order accumulation
//!    goes through `cscnn_sim::util::det_sum`.
//! 5. `validated-config` — every `pub` field-bearing config struct in
//!    `sim/config.rs` must define `validate()` and reference it from a
//!    constructor.
//! 6. `no-downcast-outside-nn` — `as_any_mut` / `downcast_mut` are
//!    forbidden outside `crates/nn/src`: layers expose typed accessors
//!    (`as_conv_mut`, `as_linear_mut`) and lower to `cscnn_ir::LayerNode`
//!    via `describe()`, so no other crate may peek behind the `Layer`
//!    trait with `Any`.
//!
//! The analysis is deliberately lexical (a comment/string-aware line
//! scanner, not a parser): the rules are phrased so that false positives
//! are rare, and the escape hatch is an explicit allowlist entry in
//! `lint-allow.txt` with a justification comment — which is exactly the
//! audit trail we want for every exception.
//!
//! Code after the first `#[cfg(test)]` line of a file is exempt from all
//! rules: test modules sit at the bottom of each file by repo convention,
//! and tests may unwrap/panic freely.
//!
//! The linter stands *outside* the workspace's lowering chain
//! (`Network`/`ModelDesc` → `ModelIr` → `LayerWorkload` → simulation): it
//! never lowers anything itself, it audits the source of the crates that
//! do.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Maximum number of allowlist entries; more than this means the lint has
/// stopped being enforced and the allowlist has become a second rulebook.
pub const MAX_ALLOWLIST_ENTRIES: usize = 15;

/// Names of every rule, in diagnostic order.
pub const RULES: [&str; 6] = [
    "no-narrowing-cast",
    "no-panic-in-hot-path",
    "seeded-rng-only",
    "deterministic-sum",
    "validated-config",
    "no-downcast-outside-nn",
];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Parsed `lint-allow.txt`: `path:rule` entries that suppress diagnostics.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

/// A malformed allowlist is a hard error (a silently ignored entry would
/// un-suppress or over-suppress without anyone noticing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowlistError(pub String);

impl fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allowlist error: {}", self.0)
    }
}

impl std::error::Error for AllowlistError {}

impl Allowlist {
    /// Parses allowlist text: one `path:rule` per line, `#` comments and
    /// blank lines ignored. Every entry must name a known rule, and the
    /// total must not exceed [`MAX_ALLOWLIST_ENTRIES`].
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((path, rule)) = line.rsplit_once(':') else {
                return Err(AllowlistError(format!(
                    "line {}: expected `path:rule`, got `{line}`",
                    i + 1
                )));
            };
            if !RULES.contains(&rule) {
                return Err(AllowlistError(format!(
                    "line {}: unknown rule `{rule}` (known: {})",
                    i + 1,
                    RULES.join(", ")
                )));
            }
            entries.push((path.trim().to_string(), rule.to_string()));
        }
        if entries.len() > MAX_ALLOWLIST_ENTRIES {
            return Err(AllowlistError(format!(
                "{} entries exceed the {MAX_ALLOWLIST_ENTRIES}-entry budget; \
                 fix violations instead of allowlisting them",
                entries.len()
            )));
        }
        Ok(Allowlist { entries })
    }

    /// True if diagnostics of `rule` in `file` are suppressed.
    pub fn allows(&self, file: &str, rule: &str) -> bool {
        self.entries.iter().any(|(p, r)| p == file && r == rule)
    }

    /// Entries that suppressed nothing in this run (stale exceptions).
    pub fn unused<'a>(&'a self, suppressed: &[(String, &str)]) -> Vec<&'a (String, String)> {
        self.entries
            .iter()
            .filter(|(p, r)| !suppressed.iter().any(|(sp, sr)| sp == p && sr == r))
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Result of linting a file set: surviving violations plus the
/// `(file, rule)` pairs an allowlist entry actually suppressed.
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Diagnostic>,
    /// Which `(file, rule)` pairs were suppressed (for staleness checks).
    pub suppressed: Vec<(String, &'static str)>,
}

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// Per-file scanner state that must survive across lines.
#[derive(Default)]
struct ScanState {
    /// Inside a `/* ... */` block comment (nesting tracked, as in Rust).
    block_comment_depth: usize,
}

/// Rewrites one source line into its "code view": string/char literal
/// contents blanked, `//` comments and `/* */` comment spans removed.
/// Keeping the surrounding quotes lets token boundaries survive.
fn code_view(line: &str, state: &mut ScanState) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if state.block_comment_depth > 0 {
            if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                state.block_comment_depth -= 1;
                i += 2;
            } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                state.block_comment_depth += 1;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
            '/' if bytes.get(i + 1) == Some(&'*') => {
                state.block_comment_depth += 1;
                i += 2;
            }
            '"' => {
                // Blank the literal's contents. Escapes are honoured;
                // unterminated strings (rare multi-line literals) blank to
                // end of line, which is conservative for every rule.
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' => i += 2,
                        '"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Char literal or lifetime. A lifetime (`'a`) has no
                // closing quote before a non-ident char; copy it through.
                let rest: String = bytes[i..].iter().take(4).collect();
                let is_char_literal = rest.len() >= 3
                    && (bytes.get(i + 1) == Some(&'\\') || bytes.get(i + 2) == Some(&'\''));
                if is_char_literal {
                    out.push('\'');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '\'' => {
                                out.push('\'');
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Splits a code-view line into identifier-ish tokens with byte positions.
fn tokens(line: &str) -> Vec<&str> {
    line.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
        .collect()
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const NARROW_TARGETS: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

fn in_narrowing_scope(file: &str) -> bool {
    file.starts_with("crates/sim/src/") || file.starts_with("crates/sparse/src/")
}

fn in_hot_path_scope(file: &str) -> bool {
    file == "crates/sim/src/dram.rs"
        || file.starts_with("crates/sim/src/pe")
        || file.starts_with("crates/sim/src/baselines/")
        || file.starts_with("crates/tensor/src/")
}

fn in_det_sum_scope(file: &str) -> bool {
    file == "crates/sim/src/energy.rs" || file == "crates/sim/src/report.rs"
}

fn in_downcast_scope(file: &str) -> bool {
    !file.starts_with("crates/nn/src/")
}

/// Lints one file's source. `file` is the workspace-relative path with
/// `/` separators; it selects which rules apply.
pub fn lint_file(file: &str, source: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut state = ScanState::default();
    let mut in_test = false;
    let mut code_lines: Vec<String> = Vec::with_capacity(source.lines().count());

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        if raw.trim_start().starts_with("#[cfg(test)]") {
            in_test = true;
        }
        let code = code_view(raw, &mut state);
        if in_test {
            code_lines.push(String::new());
            continue;
        }
        code_lines.push(code.clone());

        // Rule 1: no-narrowing-cast.
        if in_narrowing_scope(file) {
            let toks = tokens(&code);
            for pair in toks.windows(2) {
                if pair[0] == "as" && NARROW_TARGETS.contains(&pair[1]) {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: line_no,
                        rule: "no-narrowing-cast",
                        message: format!(
                            "bare `as {}` cast in accounting code; use the checked \
                             helpers in `cscnn_sim::util` / `cscnn_sparse::cast` \
                             (or `u64::from`/`usize::from` for widening)",
                            pair[1]
                        ),
                    });
                }
            }
        }

        // Rule 2: no-panic-in-hot-path.
        if in_hot_path_scope(file) {
            for pat in [".unwrap()", ".expect(", "panic!"] {
                if code.contains(pat) {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: line_no,
                        rule: "no-panic-in-hot-path",
                        message: format!(
                            "`{pat}` in a simulator/kernel hot path; return a typed \
                             error (`SimError`) instead (`assert!` is permitted for \
                             contract checks)"
                        ),
                    });
                }
            }
        }

        // Rule 3: seeded-rng-only (all files).
        for pat in ["thread_rng(", "from_entropy(", "SystemTime::now"] {
            if code.contains(pat) {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: line_no,
                    rule: "seeded-rng-only",
                    message: format!(
                        "`{pat}` makes runs unreproducible; derive randomness from \
                         an explicit seed (`StdRng::seed_from_u64`)"
                    ),
                });
            }
        }

        // Rule 4: deterministic-sum.
        if in_det_sum_scope(file) {
            for pat in [".sum::<f32>()", ".sum::<f64>()"] {
                if code.contains(pat) {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: line_no,
                        rule: "deterministic-sum",
                        message: format!(
                            "unordered float `{pat}` in an energy/report path; use \
                             `cscnn_sim::util::det_sum` for fixed-order, compensated \
                             accumulation"
                        ),
                    });
                }
            }
        }

        // Rule 6: no-downcast-outside-nn.
        if in_downcast_scope(file) {
            for tok in tokens(&code) {
                if tok == "as_any_mut" || tok == "downcast_mut" {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: line_no,
                        rule: "no-downcast-outside-nn",
                        message: format!(
                            "`{tok}` outside `crates/nn/src`; use the typed layer \
                             accessors (`as_conv_mut`, `as_linear_mut`) or lower \
                             through `cscnn_ir::LayerNode` via `describe()`"
                        ),
                    });
                }
            }
        }
    }

    // Rule 5: validated-config (whole-file analysis).
    if file == "crates/sim/src/config.rs" {
        diags.extend(check_validated_config(file, &code_lines));
    }

    diags
}

/// Rule 5: every `pub` field-bearing struct in the config file must have a
/// `validate()` defined in its `impl` block and referenced at least once
/// more there (the constructor's `debug_assert!(cfg.validate().is_ok())`
/// or equivalent).
fn check_validated_config(file: &str, code_lines: &[String]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let joined = code_lines.join("\n");
    let mut search = 0;
    while let Some(pos) = joined[search..].find("pub struct ") {
        let abs = search + pos;
        search = abs + "pub struct ".len();
        let rest = &joined[abs + "pub struct ".len()..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let line_no = joined[..abs].matches('\n').count() + 1;
        // Field-bearing? Look inside the struct's brace block.
        let Some(body) = brace_block(&joined[abs..]) else {
            continue;
        };
        if !body.contains("pub ") {
            continue; // marker/newtype without public fields: out of scope
        }
        // Find `impl Name` and its extent (to the next top-level `impl`).
        let impl_needle = format!("impl {name}");
        let Some(impl_pos) = joined.find(&impl_needle) else {
            diags.push(missing_validate(file, line_no, &name, "no `impl` block"));
            continue;
        };
        let after = &joined[impl_pos + impl_needle.len()..];
        let impl_body = match after.find("\nimpl ") {
            Some(end) => &after[..end],
            None => after,
        };
        if !impl_body.contains("fn validate(") {
            diags.push(missing_validate(file, line_no, &name, "no `fn validate()`"));
        } else if impl_body.matches("validate(").count() < 2 {
            diags.push(missing_validate(
                file,
                line_no,
                &name,
                "`validate()` is never called from a constructor",
            ));
        }
    }
    diags
}

fn missing_validate(file: &str, line: usize, name: &str, why: &str) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule: "validated-config",
        message: format!(
            "config struct `{name}`: {why}; every public config must define \
             `validate()` and call it from its constructor"
        ),
    }
}

/// Returns the `{ ... }` block starting at the first `{` in `s`.
fn brace_block(s: &str) -> Option<&str> {
    let open = s.find('{')?;
    let mut depth = 0usize;
    for (i, c) in s[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Collects every `.rs` file under `crates/*/src` and `tests/`, as
/// workspace-relative `/`-separated paths, sorted for stable output.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    let tests_dir = root.join("tests");
    if tests_dir.is_dir() {
        walk_rs(&tests_dir, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root` against `allow`.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<LintOutcome> {
    let mut outcome = LintOutcome::default();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        for diag in lint_file(&rel, &source) {
            if allow.allows(&diag.file, diag.rule) {
                let pair = (diag.file.clone(), diag.rule);
                if !outcome.suppressed.contains(&pair) {
                    outcome.suppressed.push(pair);
                }
            } else {
                outcome.violations.push(diag);
            }
        }
    }
    Ok(outcome)
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

/// Renders diagnostics as a JSON object (hand-rolled: this crate is
/// dependency-free so the lint gate can never fail to build).
pub fn to_json(violations: &[Diagnostic]) -> String {
    let mut s = String::from("{\"violations\":[");
    for (i, d) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        ));
    }
    s.push_str(&format!("],\"count\":{}}}", violations.len()));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_view_strips_comments_and_strings() {
        let mut st = ScanState::default();
        assert_eq!(code_view("let x = 1; // as u32", &mut st), "let x = 1; ");
        assert_eq!(code_view("let s = \"as u32\";", &mut st), "let s = \"\";");
        assert_eq!(code_view("a /* as u32 */ b", &mut st), "a  b");
        // Block comments span lines.
        assert_eq!(code_view("x /* open", &mut st), "x ");
        assert_eq!(code_view("still closed */ y as u8", &mut st), " y as u8");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let mut st = ScanState::default();
        let v = code_view("fn f<'a>(x: &'a str) -> &'a str { x }", &mut st);
        assert!(v.contains("'a"), "{v}");
    }

    #[test]
    fn allowlist_rejects_unknown_rules_and_oversize() {
        assert!(Allowlist::parse("a.rs:not-a-rule").is_err());
        let big: String = (0..16)
            .map(|i| format!("f{i}.rs:seeded-rng-only\n"))
            .collect();
        assert!(Allowlist::parse(&big).is_err());
        let ok = Allowlist::parse("# why\ncrates/sim/src/util.rs:no-narrowing-cast\n")
            .expect("valid allowlist");
        assert_eq!(ok.len(), 1);
        assert!(ok.allows("crates/sim/src/util.rs", "no-narrowing-cast"));
        assert!(!ok.allows("crates/sim/src/util.rs", "seeded-rng-only"));
    }

    #[test]
    fn json_output_is_well_formed() {
        let d = Diagnostic {
            file: "a\"b.rs".into(),
            line: 3,
            rule: "seeded-rng-only",
            message: "tab\there".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("\\\""));
        assert!(j.contains("\\t"));
        assert!(j.ends_with("\"count\":1}"));
    }
}
