//! Fixture tests for every `cscnn-lint` rule, plus the keystone test that
//! the real workspace passes with the committed allowlist.
//!
//! Each fixture is a small source snippet handed to `lint_file` under a
//! path that puts it in the rule's scope; the paired negative fixture
//! shows the approved alternative not firing.

use std::path::Path;

use cscnn_lint::{lint_file, lint_workspace, Allowlist};

fn rules_fired(file: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_file(file, src).into_iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

// --- Rule 1: no-narrowing-cast ------------------------------------------

#[test]
fn narrowing_cast_fires_in_sim_scope() {
    let src = "fn f(x: usize) -> u32 { x as u32 }\n";
    let diags = lint_file("crates/sim/src/pe.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "no-narrowing-cast"),
        "{diags:?}"
    );
    assert_eq!(
        diags
            .iter()
            .find(|d| d.rule == "no-narrowing-cast")
            .map(|d| d.line),
        Some(1)
    );
}

#[test]
fn narrowing_cast_exempts_floats_tests_comments_and_other_crates() {
    // `as f64` is the approved way to enter float arithmetic.
    assert!(rules_fired("crates/sim/src/pe.rs", "let y = x as f64;\n").is_empty());
    // Casts inside the trailing test module are fine.
    let test_mod = "#[cfg(test)]\nmod tests { fn g(x: usize) { let _ = x as u8; } }\n";
    assert!(rules_fired("crates/sim/src/pe.rs", test_mod).is_empty());
    // Comments and strings never fire.
    assert!(rules_fired("crates/sim/src/pe.rs", "// x as u32\nlet s = \"as u32\";\n").is_empty());
    // The nn crate is out of rule-1 scope.
    assert!(rules_fired("crates/nn/src/layers.rs", "let y = x as u32;\n").is_empty());
}

// --- Rule 2: no-panic-in-hot-path ---------------------------------------

#[test]
fn panic_in_hot_path_fires() {
    for pat in [
        "let v = m.get(&k).unwrap();",
        "let v = m.get(&k).expect(\"k\");",
        "panic!(\"boom\")",
    ] {
        let src = format!("fn f() {{ {pat} }}\n");
        assert_eq!(
            rules_fired("crates/sim/src/pe_detailed.rs", &src),
            vec!["no-panic-in-hot-path"],
            "{pat}"
        );
        assert_eq!(
            rules_fired("crates/tensor/src/conv.rs", &src),
            vec!["no-panic-in-hot-path"],
            "{pat}"
        );
    }
}

#[test]
fn asserts_and_cold_paths_do_not_fire() {
    // `assert!` is explicitly permitted for contract checks.
    let src = "fn f(x: usize) { assert!(x > 0, \"x\"); }\n";
    assert!(rules_fired("crates/sim/src/dram.rs", src).is_empty());
    // `unwrap_or` is not `unwrap()`.
    assert!(rules_fired("crates/sim/src/pe.rs", "let y = o.unwrap_or(0);\n").is_empty());
    // config.rs is not a hot path.
    assert!(rules_fired("crates/sim/src/report.rs", "let y = o.unwrap();\n").is_empty());
}

// --- Rule 3: seeded-rng-only --------------------------------------------

#[test]
fn unseeded_rng_fires_everywhere() {
    for pat in [
        "let mut r = thread_rng();",
        "let r = StdRng::from_entropy();",
        "let t = SystemTime::now();",
    ] {
        let src = format!("fn f() {{ {pat} }}\n");
        // Fires even in crates with no other rules in scope.
        assert_eq!(
            rules_fired("crates/nn/src/trainer.rs", &src),
            vec!["seeded-rng-only"],
            "{pat}"
        );
        assert_eq!(
            rules_fired("tests/integration_sim.rs", &src),
            vec!["seeded-rng-only"],
            "{pat}"
        );
    }
}

#[test]
fn seeded_rng_does_not_fire() {
    let src = "let mut r = StdRng::seed_from_u64(42);\nlet t = Instant::now();\n";
    assert!(rules_fired("crates/nn/src/trainer.rs", src).is_empty());
}

// --- Rule 4: deterministic-sum ------------------------------------------

#[test]
fn float_sum_fires_in_energy_and_report() {
    let src = "fn f(v: &[f64]) -> f64 { v.iter().copied().sum::<f64>() }\n";
    assert_eq!(
        rules_fired("crates/sim/src/energy.rs", src),
        vec!["deterministic-sum"]
    );
    let src32 = "fn f(v: &[f32]) -> f32 { v.iter().copied().sum::<f32>() }\n";
    assert_eq!(
        rules_fired("crates/sim/src/report.rs", src32),
        vec!["deterministic-sum"]
    );
}

#[test]
fn integer_sums_and_other_files_are_exempt() {
    // Integer summation is associative: order cannot change the result.
    let src = "fn f(v: &[u64]) -> u64 { v.iter().copied().sum::<u64>() }\n";
    assert!(rules_fired("crates/sim/src/energy.rs", src).is_empty());
    // Float sums outside the energy/report accounting are out of scope.
    let f = "fn f(v: &[f64]) -> f64 { v.iter().copied().sum::<f64>() }\n";
    assert!(rules_fired("crates/sim/src/roofline.rs", f).is_empty());
}

// --- Rule 5: validated-config -------------------------------------------

#[test]
fn config_struct_without_validate_fires() {
    let src = "\
pub struct BadConfig {
    pub knob: usize,
}

impl BadConfig {
    pub fn new() -> Self {
        BadConfig { knob: 1 }
    }
}
";
    let diags = lint_file("crates/sim/src/config.rs", src);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "validated-config" && d.message.contains("BadConfig")),
        "{diags:?}"
    );
}

#[test]
fn config_struct_with_unreferenced_validate_fires() {
    let src = "\
pub struct HalfConfig {
    pub knob: usize,
}

impl HalfConfig {
    pub fn new() -> Self {
        HalfConfig { knob: 1 }
    }
    pub fn validate(&self) -> Result<(), ()> {
        Ok(())
    }
}
";
    let diags = lint_file("crates/sim/src/config.rs", src);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "validated-config" && d.message.contains("never called")),
        "{diags:?}"
    );
}

#[test]
fn config_struct_with_wired_validate_passes() {
    let src = "\
pub struct GoodConfig {
    pub knob: usize,
}

impl GoodConfig {
    pub fn new() -> Self {
        let cfg = GoodConfig { knob: 1 };
        debug_assert!(cfg.validate().is_ok());
        cfg
    }
    pub fn validate(&self) -> Result<(), ()> {
        Ok(())
    }
}
";
    assert!(rules_fired("crates/sim/src/config.rs", src).is_empty());
}

// --- Rule 6: no-downcast-outside-nn -------------------------------------

#[test]
fn downcast_fires_outside_nn() {
    let src = "fn f(l: &mut dyn Layer) {\n    \
               let c = l.as_any_mut().downcast_mut::<Conv2d>();\n}\n";
    let diags = lint_file("crates/core/src/bridge.rs", src);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "no-downcast-outside-nn" && d.line == 2),
        "{diags:?}"
    );
    // Fires in root integration tests too.
    assert_eq!(
        rules_fired("tests/integration_ir.rs", src),
        vec!["no-downcast-outside-nn"]
    );
}

#[test]
fn downcast_is_allowed_inside_nn_and_typed_accessors_pass() {
    let src = "fn f(l: &mut dyn Layer) {\n    \
               let c = l.as_any_mut().downcast_mut::<Conv2d>();\n}\n";
    // The nn crate owns the Layer trait and may implement the accessors.
    assert!(rules_fired("crates/nn/src/layers.rs", src).is_empty());
    // The typed replacement never fires anywhere.
    let typed = "fn f(l: &mut dyn Layer) { let c = l.as_conv_mut(); }\n";
    assert!(rules_fired("crates/core/src/bridge.rs", typed).is_empty());
    // Comments, strings, and trailing test modules are exempt.
    let masked = "// l.as_any_mut().downcast_mut::<Conv2d>()\n\
                  let s = \"downcast_mut\";\n\
                  #[cfg(test)]\n\
                  mod tests { fn g(l: &mut dyn Layer) { l.as_any_mut(); } }\n";
    assert!(rules_fired("crates/core/src/bridge.rs", masked).is_empty());
}

// --- Keystone: the real workspace is clean ------------------------------

#[test]
fn real_workspace_passes_with_committed_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let allow_text = std::fs::read_to_string(root.join("lint-allow.txt"))
        .expect("lint-allow.txt at the workspace root");
    let allow = Allowlist::parse(&allow_text).expect("committed allowlist parses");
    let outcome = lint_workspace(root, &allow).expect("workspace scan");
    assert!(
        outcome.violations.is_empty(),
        "workspace has lint violations:\n{}",
        outcome
            .violations
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every committed allowlist entry must still be load-bearing.
    let stale = allow.unused(&outcome.suppressed);
    assert!(stale.is_empty(), "stale allowlist entries: {stale:?}");
}
