//! Reference model builders for the algorithm-side experiments.
//!
//! These are *trainable* networks (as opposed to the shape catalogs in
//! `cscnn-models`, which describe full-size benchmark CNNs for the
//! simulator). `lenet5` follows the classic architecture; `convnet_s` and
//! `vgg_s` are scaled-down proxies of the paper's CIFAR models, sized so the
//! accuracy experiments run in seconds on a CPU.

use cscnn_rng::rngs::StdRng;
use cscnn_rng::SeedableRng;
use cscnn_tensor::{ConvSpec, PoolSpec};

use crate::layers::{Conv2d, Flatten, Linear, MaxPool, Relu};
use crate::Network;

/// A minimal two-conv CNN for unit tests and doc examples.
///
/// # Panics
///
/// Panics if the spatial extent is not divisible by 4.
pub fn tiny_cnn(channels: usize, h: usize, w: usize, classes: usize, seed: u64) -> Network {
    assert!(
        h.is_multiple_of(4) && w.is_multiple_of(4),
        "spatial extent must be divisible by 4"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    net.push(Conv2d::new(
        &mut rng,
        channels,
        8,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2)));
    net.push(Conv2d::new(
        &mut rng,
        8,
        16,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2)));
    net.push(Flatten::new());
    net.push(Linear::new(&mut rng, 16 * (h / 4) * (w / 4), classes));
    net
}

/// Spatial input sizes seen by each conv layer of [`tiny_cnn`] for an
/// `h × w` input.
pub fn tiny_cnn_conv_inputs(h: usize, w: usize) -> Vec<(usize, usize)> {
    vec![(h, w), (h / 2, w / 2)]
}

/// The §II-D "smaller filters" comparison model: [`tiny_cnn`]'s topology
/// with `2×2` kernels (4 parameters per slice, matching the zero-center
/// centrosymmetric `3×3`'s 4 effective parameters) and a correspondingly
/// smaller receptive field.
///
/// # Panics
///
/// Panics if the spatial extent is too small for the reduction chain.
pub fn tiny_cnn_2x2(channels: usize, h: usize, w: usize, classes: usize, seed: u64) -> Network {
    assert!(h >= 8 && w >= 8, "input too small for the 2x2 chain");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    // 2x2 unpadded conv shrinks by 1; 2x2/2 pooling then halves.
    let after = |d: usize| ((d - 1) - 2) / 2 + 1;
    net.push(Conv2d::new(&mut rng, channels, 8, ConvSpec::new(2, 2)));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2)));
    let (h1, w1) = (after(h), after(w));
    net.push(Conv2d::new(&mut rng, 8, 16, ConvSpec::new(2, 2)));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2)));
    let (h2, w2) = (after(h1), after(w1));
    net.push(Flatten::new());
    net.push(Linear::new(&mut rng, 16 * h2 * w2, classes));
    net
}

/// LeNet-5 (LeCun et al. 1998) for `1×28×28` inputs — the network whose
/// accuracy collapse/recovery the paper reports in §II-B
/// (99.2 % → 71.6 % after projection, recovered by retraining).
pub fn lenet5(classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    // C1: 6 feature maps, 5x5, pad 2 → 28x28.
    net.push(Conv2d::new(
        &mut rng,
        1,
        6,
        ConvSpec::new(5, 5).with_padding(2),
    ));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2))); // 14x14
                                              // C3: 16 maps, 5x5 → 10x10.
    net.push(Conv2d::new(&mut rng, 6, 16, ConvSpec::new(5, 5)));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2))); // 5x5
    net.push(Flatten::new());
    net.push(Linear::new(&mut rng, 16 * 5 * 5, 120));
    net.push(Relu::new());
    net.push(Linear::new(&mut rng, 120, 84));
    net.push(Relu::new());
    net.push(Linear::new(&mut rng, 84, classes));
    net
}

/// Spatial input sizes seen by each conv layer of [`lenet5`] (for
/// multiplication counting).
pub fn lenet5_conv_inputs() -> Vec<(usize, usize)> {
    vec![(28, 28), (14, 14)]
}

/// A scaled-down ConvNet (cuda-convnet style) proxy for `3×16×16` inputs.
pub fn convnet_s(classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    net.push(Conv2d::new(
        &mut rng,
        3,
        16,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2))); // 8x8
    net.push(Conv2d::new(
        &mut rng,
        16,
        32,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2))); // 4x4
    net.push(Conv2d::new(
        &mut rng,
        32,
        32,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(Relu::new());
    net.push(Flatten::new());
    net.push(Linear::new(&mut rng, 32 * 4 * 4, classes));
    net
}

/// Spatial input sizes seen by each conv layer of [`convnet_s`].
pub fn convnet_s_conv_inputs() -> Vec<(usize, usize)> {
    vec![(16, 16), (8, 8), (4, 4)]
}

/// A scaled-down VGG-style proxy (stacked 3×3 blocks) for `3×16×16` inputs.
pub fn vgg_s(classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    let blocks: [(usize, usize); 3] = [(3, 16), (16, 32), (32, 64)];
    for (cin, cout) in blocks {
        net.push(Conv2d::new(
            &mut rng,
            cin,
            cout,
            ConvSpec::new(3, 3).with_padding(1),
        ));
        net.push(Relu::new());
        net.push(Conv2d::new(
            &mut rng,
            cout,
            cout,
            ConvSpec::new(3, 3).with_padding(1),
        ));
        net.push(Relu::new());
        net.push(MaxPool::new(PoolSpec::new(2)));
    }
    net.push(Flatten::new());
    net.push(Linear::new(&mut rng, 64 * 2 * 2, classes));
    net
}

/// Spatial input sizes seen by each conv layer of [`vgg_s`].
pub fn vgg_s_conv_inputs() -> Vec<(usize, usize)> {
    vec![(16, 16), (16, 16), (8, 8), (8, 8), (4, 4), (4, 4)]
}

/// A MobileNet-style depthwise-separable proxy: standard conv, then a
/// depthwise 3×3 + pointwise 1×1 pair, then pool → FC. Exercises grouped
/// convolution end-to-end (train → centro-project → IR → simulate).
///
/// # Panics
///
/// Panics if the spatial extent is not divisible by 2.
pub fn mobile_cnn(channels: usize, h: usize, w: usize, classes: usize, seed: u64) -> Network {
    assert!(
        h.is_multiple_of(2) && w.is_multiple_of(2),
        "spatial extent must be divisible by 2"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    net.push(Conv2d::new(
        &mut rng,
        channels,
        8,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(Relu::new());
    // Depthwise-separable block: per-channel 3x3 + channel-mixing 1x1.
    net.push(Conv2d::depthwise(
        &mut rng,
        8,
        ConvSpec::new(3, 3).with_padding(1),
    ));
    net.push(Relu::new());
    net.push(Conv2d::new(&mut rng, 8, 16, ConvSpec::new(1, 1)));
    net.push(Relu::new());
    net.push(MaxPool::new(PoolSpec::new(2)));
    net.push(Flatten::new());
    net.push(Linear::new(&mut rng, 16 * (h / 2) * (w / 2), classes));
    net
}

/// Spatial input sizes seen by each conv layer of [`mobile_cnn`].
pub fn mobile_cnn_conv_inputs(h: usize, w: usize) -> Vec<(usize, usize)> {
    vec![(h, w), (h, w), (h, w)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_tensor::Tensor;

    #[test]
    fn lenet5_output_shape() {
        let mut net = lenet5(10, 0);
        let y = net.forward(&Tensor::zeros(&[2, 1, 28, 28]));
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn convnet_s_output_shape() {
        let mut net = convnet_s(10, 0);
        let y = net.forward(&Tensor::zeros(&[1, 3, 16, 16]));
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn vgg_s_output_shape() {
        let mut net = vgg_s(10, 0);
        let y = net.forward(&Tensor::zeros(&[1, 3, 16, 16]));
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn tiny_cnn_2x2_output_shape() {
        let mut net = tiny_cnn_2x2(1, 16, 16, 5, 0);
        let y = net.forward(&Tensor::zeros(&[2, 1, 16, 16]));
        assert_eq!(y.shape().dims(), &[2, 5]);
    }

    #[test]
    fn mobile_cnn_output_shape() {
        let mut net = mobile_cnn(1, 8, 8, 5, 0);
        let y = net.forward(&Tensor::zeros(&[2, 1, 8, 8]));
        assert_eq!(y.shape().dims(), &[2, 5]);
    }

    #[test]
    fn conv_input_lists_match_conv_layer_counts() {
        assert_eq!(
            mobile_cnn(1, 8, 8, 5, 0).conv_layers_mut().count(),
            mobile_cnn_conv_inputs(8, 8).len()
        );
        assert_eq!(
            lenet5(10, 0).conv_layers_mut().count(),
            lenet5_conv_inputs().len()
        );
        assert_eq!(
            convnet_s(10, 0).conv_layers_mut().count(),
            convnet_s_conv_inputs().len()
        );
        assert_eq!(
            vgg_s(10, 0).conv_layers_mut().count(),
            vgg_s_conv_inputs().len()
        );
    }
}
