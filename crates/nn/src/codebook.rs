//! Weight sharing and Huffman coding — the storage stages of Deep
//! Compression (Han et al.), against which the paper positions
//! centrosymmetric storage ("the filters can be easily compressed by about
//! 2× … it does not impose indexing overhead").
//!
//! Pipeline: prune (see [`crate::pruning`]) → cluster surviving weights to
//! a small codebook (1-D k-means with linear initialization, as in the
//! original) → entropy-code the cluster indices (Huffman). This module
//! implements the clustering and the exact Huffman-coded size, plus
//! side-by-side storage accounting for dense, pruned+RLE, clustered, and
//! centrosymmetric representations.

use std::collections::BinaryHeap;

use cscnn_tensor::Tensor;

/// 1-D k-means over the non-zero values, with Deep Compression's linear
/// initialization over `[min, max]`.
///
/// Returns the `k` centroids (some may be unused if the data has fewer
/// distinct values).
///
/// # Panics
///
/// Panics if `k == 0` or no non-zero values exist.
pub fn kmeans_codebook(values: &[f32], k: usize, iterations: usize) -> Vec<f32> {
    assert!(k > 0, "codebook must have at least one entry");
    let nonzero: Vec<f32> = values.iter().copied().filter(|v| *v != 0.0).collect();
    assert!(!nonzero.is_empty(), "no non-zero values to cluster");
    let min = nonzero.iter().copied().fold(f32::INFINITY, f32::min);
    let max = nonzero.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut centroids: Vec<f32> = (0..k)
        .map(|i| min + (max - min) * (i as f32 + 0.5) / k as f32)
        .collect();
    for _ in 0..iterations {
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0u64; k];
        for &v in &nonzero {
            let c = nearest(&centroids, v);
            sums[c] += v as f64;
            counts[c] += 1;
        }
        for i in 0..k {
            if counts[i] > 0 {
                centroids[i] = (sums[i] / counts[i] as f64) as f32;
            }
        }
    }
    centroids
}

/// Index of the nearest centroid.
fn nearest(centroids: &[f32], v: f32) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (i, &c) in centroids.iter().enumerate() {
        let d = (c - v).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Replaces every non-zero value by its nearest codebook entry, returning
/// the quantized tensor and the per-value cluster indices of the non-zeros.
pub fn quantize_to_codebook(t: &Tensor, codebook: &[f32]) -> (Tensor, Vec<usize>) {
    let mut indices = Vec::new();
    let data: Vec<f32> = t
        .as_slice()
        .iter()
        .map(|&v| {
            if v == 0.0 {
                0.0
            } else {
                let i = nearest(codebook, v);
                indices.push(i);
                codebook[i]
            }
        })
        .collect();
    (Tensor::from_vec(data, t.shape().dims()), indices)
}

/// Exact Huffman-coded size in bits for a symbol stream (canonical Huffman
/// over observed frequencies). Returns 0 for an empty stream; a
/// single-symbol stream costs 1 bit per symbol.
pub fn huffman_bits(symbols: &[usize]) -> u64 {
    if symbols.is_empty() {
        return 0;
    }
    let max = symbols.iter().copied().max().expect("non-empty") + 1;
    let mut freq = vec![0u64; max];
    for &s in symbols {
        freq[s] += 1;
    }
    // Huffman via a min-heap of (count, id); total bits = Σ merges.
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = freq
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| std::cmp::Reverse((f, i)))
        .collect();
    if heap.len() == 1 {
        return symbols.len() as u64;
    }
    let mut total = 0u64;
    let mut next_id = max;
    while heap.len() > 1 {
        let std::cmp::Reverse((a, _)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse((b, _)) = heap.pop().expect("len > 1");
        total += a + b;
        heap.push(std::cmp::Reverse((a + b, next_id)));
        next_id += 1;
    }
    total
}

/// Shannon entropy lower bound in bits for a symbol stream.
pub fn entropy_bits(symbols: &[usize]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let max = symbols.iter().copied().max().expect("non-empty") + 1;
    let mut freq = vec![0u64; max];
    for &s in symbols {
        freq[s] += 1;
    }
    let n = symbols.len() as f64;
    freq.iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / n;
            -(f as f64) * p.log2()
        })
        .sum()
}

/// Storage accounting for one weight tensor under the representations the
/// paper compares (bits).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StorageReport {
    /// Dense 16-bit storage.
    pub dense_bits: u64,
    /// Pruned, zero-run-length encoded (16-bit values + 4-bit runs).
    pub pruned_rle_bits: u64,
    /// Pruned + clustered: RLE runs + fixed-width codebook indices +
    /// the codebook itself.
    pub clustered_bits: u64,
    /// Pruned + clustered + Huffman over the indices.
    pub huffman_total_bits: u64,
}

impl StorageReport {
    /// Compression factor of the full Deep-Compression stack vs dense.
    pub fn deep_compression_factor(&self) -> f64 {
        self.dense_bits as f64 / self.huffman_total_bits as f64
    }
}

/// Computes the [`StorageReport`] for a weight tensor with `codebook_bits`
/// of cluster index (Deep Compression used 8 for conv, 5 for FC).
pub fn storage_report(t: &Tensor, codebook_bits: u32, kmeans_iters: usize) -> StorageReport {
    let word = 16u64;
    let run = 4u64;
    let n = t.len() as u64;
    let nnz = t.as_slice().iter().filter(|v| **v != 0.0).count() as u64;
    let dense_bits = n * word;
    let pruned_rle_bits = nnz * (word + run);
    let k = 1usize << codebook_bits;
    let codebook = kmeans_codebook(t.as_slice(), k, kmeans_iters);
    let (_, indices) = quantize_to_codebook(t, &codebook);
    let codebook_storage = k as u64 * word;
    let clustered_bits = nnz * (codebook_bits as u64 + run) + codebook_storage;
    let huffman_total_bits = huffman_bits(&indices) + nnz * run + codebook_storage;
    StorageReport {
        dense_bits,
        pruned_rle_bits,
        clustered_bits,
        huffman_total_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_recovers_well_separated_clusters() {
        let mut values = Vec::new();
        for _ in 0..100 {
            values.push(1.0);
            values.push(-2.0);
            values.push(5.0);
        }
        let cb = kmeans_codebook(&values, 3, 20);
        let mut sorted = cb.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((sorted[0] + 2.0).abs() < 1e-3);
        assert!((sorted[1] - 1.0).abs() < 1e-3);
        assert!((sorted[2] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn quantization_preserves_zeros_and_snaps_values() {
        let t = Tensor::from_vec(vec![0.0, 1.1, 0.0, 4.9, -2.1], &[5]);
        let cb = vec![-2.0, 1.0, 5.0];
        let (q, indices) = quantize_to_codebook(&t, &cb);
        assert_eq!(q.as_slice(), &[0.0, 1.0, 0.0, 5.0, -2.0]);
        assert_eq!(indices, vec![1, 2, 0]);
    }

    #[test]
    fn huffman_is_between_entropy_and_fixed_width() {
        // Skewed distribution: Huffman must beat fixed-width and respect
        // the entropy lower bound.
        let mut symbols = vec![0usize; 900];
        for s in 1..=4 {
            for _ in 0..25 {
                symbols.push(s);
            }
        }
        let h = huffman_bits(&symbols) as f64;
        let entropy = entropy_bits(&symbols);
        let fixed = symbols.len() as f64 * 3.0; // 5 symbols → 3 bits
        assert!(h >= entropy - 1e-6, "h={h} entropy={entropy}");
        assert!(h <= entropy + symbols.len() as f64, "within 1 bit/symbol");
        assert!(h < fixed, "h={h} fixed={fixed}");
    }

    #[test]
    fn huffman_handles_degenerate_streams() {
        assert_eq!(huffman_bits(&[]), 0);
        assert_eq!(huffman_bits(&[3, 3, 3, 3]), 4, "1 bit per symbol");
    }

    #[test]
    fn storage_report_orders_representations() {
        // A pruned, clusterable tensor: Deep Compression's stages must
        // monotonically shrink it.
        let t = Tensor::from_fn(&[4096], |i| {
            if i % 3 == 0 {
                0.0
            } else {
                ((i % 7) as f32 - 3.0) * 0.1
            }
        });
        let r = storage_report(&t, 5, 15);
        assert!(r.pruned_rle_bits < r.dense_bits);
        assert!(r.clustered_bits < r.pruned_rle_bits);
        assert!(r.huffman_total_bits <= r.clustered_bits);
        assert!(r.deep_compression_factor() > 2.0);
    }
}
