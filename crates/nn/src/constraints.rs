//! Alternative filter parameterizations (paper §II-D).
//!
//! The paper justifies centrosymmetric filters empirically against two
//! other schemes with comparable parameter counts:
//!
//! - *smaller filters* — replace `3×3` kernels with `2×2` (4 parameters vs
//!   the centrosymmetric 5); loses receptive field;
//! - *triangular filters* — constrain each slice to an upper-triangular
//!   matrix (6 parameters for `3×3`); loses symmetric coverage.
//!
//! This module implements those constraints (as structural masks that
//! training preserves) plus the zero-center centrosymmetric variant the
//! paper uses for the equal-parameter comparison (4 effective parameters).

use cscnn_sparse::centro;
use cscnn_tensor::Tensor;

use crate::centrosymmetric::centrosymmetrize_conv;
use crate::layers::Conv2d;

/// Constrains a conv layer's filters to upper-triangular slices
/// (`W(u,v) = 0` for `u > v`) via a structural mask. Returns the number of
/// free parameters per slice.
///
/// # Panics
///
/// Panics if the kernel is not square (triangularity is undefined).
pub fn apply_upper_triangular(conv: &mut Conv2d) -> usize {
    let dims = conv.weight().value.shape().dims().to_vec();
    let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(r, s, "triangular filters require square kernels");
    let mut mask = vec![0.0f32; k * c * r * s];
    let mut free = 0usize;
    for slice in 0..k * c {
        for u in 0..r {
            for v in 0..s {
                if v >= u {
                    mask[slice * r * s + u * s + v] = 1.0;
                    if slice == 0 {
                        free += 1;
                    }
                }
            }
        }
    }
    conv.weight_mut().mask = Some(Tensor::from_vec(mask, &[k, c, r, s]));
    conv.weight_mut().enforce_mask();
    free
}

/// Applies the zero-center centrosymmetric constraint: Eq. 5 projection +
/// gradient tying, with the self-dual central weight additionally pinned to
/// zero — the 4-effective-parameter variant the paper compares against
/// `2×2` filters. Returns `false` for ineligible layers.
pub fn apply_zero_center_centrosymmetric(conv: &mut Conv2d) -> bool {
    if !centrosymmetrize_conv(conv) {
        return false;
    }
    let dims = conv.weight().value.shape().dims().to_vec();
    let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
    if r * s % 2 == 0 {
        return true; // even kernels have no center to zero
    }
    let mut mask = vec![1.0f32; k * c * r * s];
    let center = (r / 2) * s + s / 2;
    for slice in 0..k * c {
        mask[slice * r * s + center] = 0.0;
    }
    conv.weight_mut().mask = Some(Tensor::from_vec(mask, &[k, c, r, s]));
    conv.weight_mut().enforce_mask();
    true
}

/// Free parameters per `r×s` slice under each §II-D scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterScheme {
    /// Unconstrained.
    Full,
    /// Centrosymmetric (Eq. 2).
    Centrosymmetric,
    /// Centrosymmetric with zero center.
    CentrosymmetricZeroCenter,
    /// Upper-triangular.
    UpperTriangular,
}

impl FilterScheme {
    /// Free parameters per `r×s` kernel slice.
    pub fn params_per_slice(self, r: usize, s: usize) -> usize {
        match self {
            FilterScheme::Full => r * s,
            FilterScheme::Centrosymmetric => centro::unique_weight_count(r, s),
            FilterScheme::CentrosymmetricZeroCenter => {
                centro::unique_weight_count(r, s) - usize::from(r * s % 2 == 1)
            }
            FilterScheme::UpperTriangular => {
                assert_eq!(r, s, "triangular needs square kernels");
                r * (r + 1) / 2
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_rng::rngs::StdRng;
    use cscnn_rng::SeedableRng;
    use cscnn_tensor::{ConvSpec, Tensor};

    fn conv3x3() -> Conv2d {
        let mut rng = StdRng::seed_from_u64(13);
        Conv2d::new(&mut rng, 2, 3, ConvSpec::new(3, 3).with_padding(1))
    }

    #[test]
    fn params_per_slice_match_paper_comparison() {
        assert_eq!(FilterScheme::Full.params_per_slice(3, 3), 9);
        assert_eq!(FilterScheme::Centrosymmetric.params_per_slice(3, 3), 5);
        assert_eq!(
            FilterScheme::CentrosymmetricZeroCenter.params_per_slice(3, 3),
            4,
            "matches a 2x2 filter's 4 parameters"
        );
        assert_eq!(FilterScheme::UpperTriangular.params_per_slice(3, 3), 6);
        assert_eq!(FilterScheme::Full.params_per_slice(2, 2), 4);
    }

    #[test]
    fn triangular_mask_zeroes_below_diagonal() {
        let mut conv = conv3x3();
        let free = apply_upper_triangular(&mut conv);
        assert_eq!(free, 6);
        let w = conv.weight().value.as_slice();
        for slice in w.chunks(9) {
            assert_eq!(slice[3], 0.0); // (1,0)
            assert_eq!(slice[6], 0.0); // (2,0)
            assert_eq!(slice[7], 0.0); // (2,1)
            assert!(slice[1] != 0.0 || slice[2] != 0.0, "upper part survives");
        }
    }

    #[test]
    fn triangular_constraint_survives_backward() {
        let mut conv = conv3x3();
        apply_upper_triangular(&mut conv);
        use crate::layers::Layer;
        let x = Tensor::from_fn(&[1, 2, 6, 6], |i| (i as f32 * 0.1).sin());
        let y = conv.forward(&x);
        let _ = conv.backward(&Tensor::full(y.shape().dims(), 1.0));
        // Gradients of masked positions must be zero so SGD keeps them zero.
        for slice in conv.weight().grad.as_slice().chunks(9) {
            assert_eq!(slice[3], 0.0);
            assert_eq!(slice[6], 0.0);
            assert_eq!(slice[7], 0.0);
        }
    }

    #[test]
    fn zero_center_variant_is_centrosymmetric_with_null_center() {
        let mut conv = conv3x3();
        assert!(apply_zero_center_centrosymmetric(&mut conv));
        for slice in conv.weight().value.as_slice().chunks(9) {
            assert!(cscnn_sparse::centro::is_centrosymmetric(slice, 3, 3, 1e-6));
            assert_eq!(slice[4], 0.0, "center pinned to zero");
        }
    }

    #[test]
    fn strided_layers_reject_zero_center_constraint() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut conv = Conv2d::new(&mut rng, 2, 2, ConvSpec::new(3, 3).with_stride(2));
        assert!(!apply_zero_center_centrosymmetric(&mut conv));
    }
}
