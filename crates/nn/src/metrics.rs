//! Loss functions and classification metrics.

use cscnn_tensor::Tensor;

/// Softmax cross-entropy over a batch of logits.
///
/// `logits` is `[N, classes]`, `labels` holds `N` class indices. Returns the
/// mean loss and the gradient w.r.t. the logits (already divided by `N`).
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
///
/// # Example
///
/// ```
/// use cscnn_nn::metrics::softmax_cross_entropy;
/// use cscnn_tensor::Tensor;
///
/// // Perfectly confident, correct prediction → near-zero loss.
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 1e-3);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, classes]");
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "labels length must equal batch size");
    let src = logits.as_slice();
    let mut grad = Tensor::zeros(&[n, c]);
    let g = grad.as_mut_slice();
    let mut total_loss = 0.0f64;
    for i in 0..n {
        let row = &src[i * c..(i + 1) * c];
        let label = labels[i];
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        let log_sum = sum.ln() + max;
        total_loss += (log_sum - row[label]) as f64;
        let grow = &mut g[i * c..(i + 1) * c];
        for j in 0..c {
            let p = exp[j] / sum;
            grow[j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((total_loss / n as f64) as f32, grad)
}

/// Top-1 accuracy of a batch of logits against labels.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, classes]");
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "labels length must equal batch size");
    let src = logits.as_slice();
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &src[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN logit"))
            .map(|(j, _)| j)
            .expect("at least one class");
        if pred == label {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

/// Top-k accuracy (`k = 5` reproduces the paper's Top-5 columns).
///
/// # Panics
///
/// Panics if `k == 0` or shapes disagree.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "labels length must equal batch size");
    let src = logits.as_slice();
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &src[i * c..(i + 1) * c];
        let mut idx: Vec<usize> = (0..c).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("NaN logit"));
        if idx.iter().take(k).any(|&j| j == label) {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..4 {
            let s: f32 = grad.as_slice()[i * 10..(i + 1) * 10].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.1, 0.5, -0.7], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = softmax_cross_entropy(&lp, &labels).0;
            let fm = softmax_cross_entropy(&lm, &labels).0;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - grad.as_slice()[idx]).abs() < 1e-3, "idx={idx}");
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.4, 0.6], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 1.0).abs() < 1e-12);
        assert!((accuracy(&logits, &[1, 1, 0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let logits = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.3, 0.8, 0.2], &[2, 3]);
        let labels = [2usize, 2];
        let a1 = top_k_accuracy(&logits, &labels, 1);
        let a2 = top_k_accuracy(&logits, &labels, 2);
        let a3 = top_k_accuracy(&logits, &labels, 3);
        assert!(a1 <= a2 && a2 <= a3);
        assert!((a3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }
}
