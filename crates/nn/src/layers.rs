//! Network layers with explicit forward and backward passes.
//!
//! Every layer caches whatever its backward pass needs during `forward`, so a
//! `forward` → `backward` pair must be issued in order (the [`Network`]
//! container enforces this usage).
//!
//! [`Network`]: crate::Network

use cscnn_ir::{ActivationKind, DescribeError, LayerNode, PoolKind};
use cscnn_rng::Rng;
use cscnn_sparse::centro;
use cscnn_tensor::{
    kaiming_uniform, matmul, matmul_at, matmul_bt, max_pool2d, max_pool2d_backward, ConvScratch,
    ConvSpec, PoolSpec, Tensor,
};

/// A trainable parameter: value, gradient accumulator, and an optional
/// pruning mask (1 = keep, 0 = pruned).
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient of the last backward pass.
    pub grad: Tensor,
    /// Pruning mask; when present, masked positions of both value and grad
    /// are forced to zero after every update.
    pub mask: Option<Tensor>,
}

impl Param {
    /// Wraps a freshly initialized value with a zero gradient and no mask.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        Param {
            value,
            grad,
            mask: None,
        }
    }

    /// Applies the pruning mask (if any) to both value and gradient.
    pub fn enforce_mask(&mut self) {
        if let Some(mask) = &self.mask {
            for (v, &m) in self.value.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                *v *= m;
            }
            for (g, &m) in self.grad.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                *g *= m;
            }
        }
    }

    /// Fraction of unmasked (kept) weights; 1.0 without a mask.
    pub fn kept_fraction(&self) -> f64 {
        match &self.mask {
            None => 1.0,
            Some(m) => m.sum() as f64 / m.len() as f64,
        }
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations that `backward`
/// consumes. `backward` must be called with the gradient of the loss w.r.t.
/// this layer's most recent output, and returns the gradient w.r.t. its
/// input.
pub trait Layer {
    /// Computes the layer output for `input` (batched: leading dim is `N`).
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Propagates `grad_out` (gradient w.r.t. the last `forward` output)
    /// backwards, accumulating parameter gradients and returning the
    /// gradient w.r.t. the last input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to trainable parameters (empty for stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to trainable parameters.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Human-readable layer kind.
    fn name(&self) -> &'static str;

    /// Describes this layer as a typed IR node given the shape of the
    /// tensor it will receive (`input` is the full batched shape, e.g.
    /// `[N, C, H, W]`). This is the `Network → Ir` lowering hook: every
    /// layer reports its exact geometry instead of being downcast by
    /// consumers.
    ///
    /// # Errors
    ///
    /// [`DescribeError`] when `input` is inconsistent with the layer.
    fn describe(&self, input: &[usize]) -> Result<LayerNode, DescribeError>;

    /// Density of this layer's *stored* weights (fraction with magnitude
    /// above `eps`), measured over the unique half for layers trained
    /// under the centrosymmetric constraint. `None` for weightless layers
    /// and layers the workload synthesis does not time (pool, norm, …).
    fn weight_density(&self, _eps: f32) -> Option<f64> {
        None
    }

    /// Typed accessor: `Some` when this layer is a [`Conv2d`]. Replaces
    /// the old `Any`-based downcasting — consumers outside `cscnn-nn` must
    /// go through these accessors or [`Layer::describe`].
    fn as_conv_mut(&mut self) -> Option<&mut Conv2d> {
        None
    }

    /// Typed accessor: `Some` when this layer is a [`Linear`].
    fn as_linear_mut(&mut self) -> Option<&mut Linear> {
        None
    }
}

/// 2-D convolution layer (`[N,C,H,W] → [N,K,H',W']`).
///
/// Supports the centrosymmetric constraint: when enabled, the backward pass
/// ties dual-weight gradients per Eq. 7 so that SGD preserves the Eq. 2
/// structure established by [`centrosymmetric::centrosymmetrize_conv`].
///
/// [`centrosymmetric::centrosymmetrize_conv`]: crate::centrosymmetric::centrosymmetrize_conv
pub struct Conv2d {
    spec: ConvSpec,
    groups: usize,
    weight: Param,
    bias: Param,
    centrosymmetric: bool,
    cached_input: Option<Tensor>,
    /// Reusable im2col arena: the backward pass reuses the forward pass's
    /// lowering, and repeated steps at a fixed geometry stop allocating.
    scratch: ConvScratch,
}

impl Conv2d {
    /// Creates a dense (ungrouped) conv layer with Kaiming-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new<R: Rng>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        spec: ConvSpec,
    ) -> Self {
        Self::grouped(rng, in_channels, out_channels, spec, 1)
    }

    /// Creates a grouped conv layer: filters are `[K, C/groups, R, S]` and
    /// each group of `K/groups` filters sees only its own `C/groups` input
    /// channels. `groups == in_channels == out_channels` is depthwise.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero or `groups` does not divide the
    /// channel counts.
    pub fn grouped<R: Rng>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        spec: ConvSpec,
        groups: usize,
    ) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert!(
            in_channels.is_multiple_of(groups) && out_channels.is_multiple_of(groups),
            "groups={groups} must divide C={in_channels} and K={out_channels}"
        );
        let c_local = in_channels / groups;
        let fan_in = c_local * spec.kernel_h * spec.kernel_w;
        let weight = kaiming_uniform(
            rng,
            &[out_channels, c_local, spec.kernel_h, spec.kernel_w],
            fan_in,
        );
        Conv2d {
            spec,
            groups,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            centrosymmetric: false,
            cached_input: None,
            scratch: ConvScratch::new(),
        }
    }

    /// Creates a depthwise conv layer (`groups == channels`, one filter
    /// slice per channel).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn depthwise<R: Rng>(rng: &mut R, channels: usize, spec: ConvSpec) -> Self {
        Self::grouped(rng, channels, channels, spec, channels)
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// The number of convolution groups (1 = dense).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Whether the centrosymmetric gradient tying is active.
    pub fn is_centrosymmetric(&self) -> bool {
        self.centrosymmetric
    }

    /// Enables/disables centrosymmetric gradient tying. Enabling does *not*
    /// project the weights; call
    /// [`crate::centrosymmetric::centrosymmetrize_conv`] for that.
    pub fn set_centrosymmetric(&mut self, on: bool) {
        self.centrosymmetric = on;
    }

    /// The filter parameter (`[K, C, R, S]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the filter parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Ties the weight gradient per Eq. 7 across every `R×S` slice.
    fn tie_weight_gradients(&mut self) {
        let dims = self.weight.grad.shape().dims().to_vec();
        let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
        let g = self.weight.grad.as_mut_slice();
        for slice_idx in 0..k * c {
            let base = slice_idx * r * s;
            centro::tie_gradients(&mut g[base..base + r * s], r, s);
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        self.scratch.forward(
            input,
            &self.weight.value,
            &self.bias.value,
            &self.spec,
            self.groups,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called before forward");
        // The scratch recognizes the input cached at forward time and
        // reuses that lowering — one im2col per training step, not two.
        let grads = self.scratch.backward(
            &input,
            &self.weight.value,
            grad_out,
            &self.spec,
            self.groups,
        );
        self.weight.grad = grads.weight;
        self.bias.grad = grads.bias;
        if self.centrosymmetric {
            self.tie_weight_gradients();
        }
        self.weight.enforce_mask();
        grads.input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn describe(&self, input: &[usize]) -> Result<LayerNode, DescribeError> {
        if input.len() != 4 {
            return Err(DescribeError::new(
                "conv2d",
                format!("expected rank-4 [N,C,H,W] input, got rank {}", input.len()),
            ));
        }
        let wd = self.weight.value.shape().dims();
        let (k, c_local, r, s) = (wd[0], wd[1], wd[2], wd[3]);
        let c = c_local * self.groups;
        if input[1] != c {
            return Err(DescribeError::new(
                "conv2d",
                format!("input has {} channels, layer expects {c}", input[1]),
            ));
        }
        Ok(LayerNode::grouped(
            self.name(),
            c,
            k,
            r,
            s,
            input[2],
            input[3],
            self.spec.stride,
            self.spec.padding,
            self.groups,
        )
        .with_centrosymmetric(self.centrosymmetric))
    }

    fn weight_density(&self, eps: f32) -> Option<f64> {
        let wd = self.weight.value.shape().dims();
        let (k, c_local, r, s) = (wd[0], wd[1], wd[2], wd[3]);
        let w = self.weight.value.as_slice();
        if self.centrosymmetric {
            // Hardware stores only the unique half (paper §III-A), so the
            // density the simulator needs is over unique positions.
            let unique = centro::unique_positions(r, s);
            let mut nnz = 0usize;
            for slice_idx in 0..k * c_local {
                let base = slice_idx * r * s;
                nnz += unique
                    .iter()
                    .filter(|&&(u, v)| w[base + u * s + v].abs() > eps)
                    .count();
            }
            Some(nnz as f64 / (k * c_local * unique.len()) as f64)
        } else {
            let nnz = w.iter().filter(|x| x.abs() > eps).count();
            Some(nnz as f64 / w.len() as f64)
        }
    }

    fn as_conv_mut(&mut self) -> Option<&mut Conv2d> {
        Some(self)
    }
}

/// Fully-connected layer (`[N, in] → [N, out]`).
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights (`[out, in]`).
    pub fn new<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        let weight = kaiming_uniform(rng, &[out_features, in_features], in_features);
        Linear {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// The weight parameter (`[out, in]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "Linear expects [N, features]");
        self.cached_input = Some(input.clone());
        let mut out = matmul_bt(input, &self.weight.value); // [N, out]
        let (n, o) = (out.shape().dim(0), out.shape().dim(1));
        let bias = self.bias.value.as_slice().to_vec();
        let buf = out.as_mut_slice();
        for i in 0..n {
            for j in 0..o {
                buf[i * o + j] += bias[j];
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called before forward");
        // dW = dOutᵀ · input  ([out, N]·[N, in]).
        self.weight.grad = matmul_at(grad_out, &input);
        // dBias = column sums of dOut.
        let (n, o) = (grad_out.shape().dim(0), grad_out.shape().dim(1));
        let mut db = Tensor::zeros(&[o]);
        for i in 0..n {
            for j in 0..o {
                db.as_mut_slice()[j] += grad_out.as_slice()[i * o + j];
            }
        }
        self.bias.grad = db;
        self.weight.enforce_mask();
        // dInput = dOut · W  ([N, out]·[out, in]).
        matmul(grad_out, &self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn describe(&self, input: &[usize]) -> Result<LayerNode, DescribeError> {
        if input.len() != 2 {
            return Err(DescribeError::new(
                "linear",
                format!(
                    "expected rank-2 [N, features] input, got rank {}",
                    input.len()
                ),
            ));
        }
        let wd = self.weight.value.shape().dims();
        let (out_features, in_features) = (wd[0], wd[1]);
        if input[1] != in_features {
            return Err(DescribeError::new(
                "linear",
                format!(
                    "input has {} features, layer expects {in_features}",
                    input[1]
                ),
            ));
        }
        Ok(LayerNode::fc(self.name(), in_features, out_features))
    }

    fn weight_density(&self, eps: f32) -> Option<f64> {
        let w = self.weight.value.as_slice();
        let nnz = w.iter().filter(|x| x.abs() > eps).count();
        Some(nnz as f64 / w.len() as f64)
    }

    fn as_linear_mut(&mut self) -> Option<&mut Linear> {
        Some(self)
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    cached_mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cached_mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .cached_mask
            .take()
            .expect("backward called before forward");
        assert_eq!(
            mask.len(),
            grad_out.len(),
            "grad shape changed since forward"
        );
        Tensor::from_vec(
            grad_out
                .as_slice()
                .iter()
                .zip(&mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
            grad_out.shape().dims(),
        )
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn describe(&self, _input: &[usize]) -> Result<LayerNode, DescribeError> {
        Ok(LayerNode::Activation {
            kind: ActivationKind::Relu,
        })
    }
}

/// Max pooling layer.
pub struct MaxPool {
    spec: PoolSpec,
    cached: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool {
    /// Creates a max-pooling layer.
    pub fn new(spec: PoolSpec) -> Self {
        MaxPool { spec, cached: None }
    }
}

impl Layer for MaxPool {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (out, argmax) = max_pool2d(input, &self.spec);
        self.cached = Some((argmax, input.shape().dims().to_vec()));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (argmax, dims) = self.cached.take().expect("backward called before forward");
        max_pool2d_backward(grad_out, &argmax, &dims)
    }

    fn name(&self) -> &'static str {
        "maxpool"
    }

    fn describe(&self, input: &[usize]) -> Result<LayerNode, DescribeError> {
        if input.len() != 4 {
            return Err(DescribeError::new(
                "maxpool",
                format!("expected rank-4 [N,C,H,W] input, got rank {}", input.len()),
            ));
        }
        Ok(LayerNode::Pool {
            kind: PoolKind::Max,
            window: self.spec.window,
            stride: self.spec.stride,
        })
    }
}

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`, so
/// evaluation needs no rescaling. AlexNet/VGG train with `p = 0.5` on
/// their FC layers.
pub struct Dropout {
    p: f64,
    training: bool,
    rng: cscnn_rng::rngs::StdRng,
    cached_mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout {
            p,
            training: true,
            rng: <cscnn_rng::rngs::StdRng as cscnn_rng::SeedableRng>::seed_from_u64(seed),
            cached_mask: None,
        }
    }

    /// Switches between training (random drops) and evaluation (identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.cached_mask = None;
            return input.clone();
        }
        let scale = 1.0 / (1.0 - self.p) as f32;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if cscnn_rng::Rng::gen_bool(&mut self.rng, self.p) {
                    0.0
                } else {
                    scale
                }
            })
            .collect();
        let out = Tensor::from_vec(
            input
                .as_slice()
                .iter()
                .zip(&mask)
                .map(|(&x, &m)| x * m)
                .collect(),
            input.shape().dims(),
        );
        self.cached_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self.cached_mask.take() {
            None => grad_out.clone(),
            Some(mask) => Tensor::from_vec(
                grad_out
                    .as_slice()
                    .iter()
                    .zip(&mask)
                    .map(|(&g, &m)| g * m)
                    .collect(),
                grad_out.shape().dims(),
            ),
        }
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn describe(&self, _input: &[usize]) -> Result<LayerNode, DescribeError> {
        Ok(LayerNode::Dropout { p: self.p })
    }
}

/// Flattens `[N, ...]` to `[N, features]`.
#[derive(Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let dims = input.shape().dims().to_vec();
        let n = dims[0];
        let features = input.len() / n;
        self.cached_dims = Some(dims);
        input.reshape(&[n, features])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .take()
            .expect("backward called before forward");
        grad_out.reshape(&dims)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn describe(&self, input: &[usize]) -> Result<LayerNode, DescribeError> {
        if input.is_empty() {
            return Err(DescribeError::new(
                "flatten",
                "expected a batched input, got rank 0",
            ));
        }
        Ok(LayerNode::Flatten)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_rng::rngs::StdRng;
    use cscnn_rng::SeedableRng;

    #[test]
    fn relu_masks_negative_gradients() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[4]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = relu.backward(&Tensor::full(&[4], 1.0));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn linear_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(&mut rng, 6, 4);
        let x = Tensor::from_fn(&[3, 6], |i| (i as f32).sin());
        let y = lin.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 4]);
        let gi = lin.backward(&Tensor::full(&[3, 4], 1.0));
        assert_eq!(gi.shape().dims(), &[3, 6]);
        assert_eq!(lin.weight().grad.shape().dims(), &[4, 6]);
        // Bias gradient of an all-ones output gradient is N per unit.
        for &b in lin.params()[1].grad.as_slice() {
            assert!((b - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn linear_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new(&mut rng, 5, 3);
        let x = Tensor::from_fn(&[2, 5], |i| (i as f32 * 0.3).cos());
        // Loss = sum(out).
        let _ = lin.forward(&x);
        let go = Tensor::full(&[2, 3], 1.0);
        let _ = lin.backward(&go);
        let analytic = lin.weight().grad.clone();
        let eps = 1e-2;
        for idx in [0usize, 7, 14] {
            let orig = lin.weight().value.as_slice()[idx];
            lin.weight_mut().value.as_mut_slice()[idx] = orig + eps;
            let lp = lin.forward(&x).sum();
            lin.weight_mut().value.as_mut_slice()[idx] = orig - eps;
            let lm = lin.forward(&x).sum();
            lin.weight_mut().value.as_mut_slice()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn conv_layer_ties_gradients_when_centrosymmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(&mut rng, 2, 3, ConvSpec::new(3, 3).with_padding(1));
        conv.set_centrosymmetric(true);
        let x = Tensor::from_fn(&[1, 2, 5, 5], |i| (i as f32 * 0.11).sin());
        let y = conv.forward(&x);
        let _ = conv.backward(&Tensor::from_fn(y.shape().dims(), |i| (i as f32).cos()));
        let g = conv.weight().grad.as_slice();
        for slice in 0..6 {
            let s = &g[slice * 9..slice * 9 + 9];
            assert!(cscnn_sparse::centro::is_centrosymmetric(s, 3, 3, 1e-6));
        }
    }

    #[test]
    fn param_mask_zeroes_value_and_grad() {
        let mut p = Param::new(Tensor::full(&[4], 2.0));
        p.grad = Tensor::full(&[4], 1.0);
        p.mask = Some(Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]));
        p.enforce_mask();
        assert_eq!(p.value.as_slice(), &[2.0, 0.0, 2.0, 0.0]);
        assert_eq!(p.grad.as_slice(), &[1.0, 0.0, 1.0, 0.0]);
        assert!((p.kept_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dropout_is_identity_in_eval_and_unbiased_in_training() {
        let mut d = Dropout::new(0.5, 7);
        d.set_training(false);
        let x = Tensor::from_fn(&[1000], |i| 1.0 + (i % 3) as f32);
        assert_eq!(d.forward(&x).as_slice(), x.as_slice());
        d.set_training(true);
        let y = d.forward(&x);
        // Inverted scaling keeps the expectation: mean within ~10 %.
        assert!((y.mean() - x.mean()).abs() / x.mean() < 0.1);
        // Roughly half the elements are dropped.
        let dropped = y.as_slice().iter().filter(|v| **v == 0.0).count();
        assert!((400..600).contains(&dropped), "dropped {dropped}");
        // Backward routes gradients through the same mask.
        let g = d.backward(&Tensor::full(&[1000], 1.0));
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0, "mask must match");
        }
    }

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        let y = f.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.shape().dims(), &[2, 3, 4, 4]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut relu = Relu::new();
        let _ = relu.backward(&Tensor::zeros(&[1]));
    }
}
