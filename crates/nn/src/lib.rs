#![warn(missing_docs)]

//! # cscnn-nn
//!
//! A small CNN training stack built on [`cscnn-tensor`](cscnn_tensor),
//! providing everything the CSCNN algorithm experiments need:
//!
//! - layers with explicit backward passes ([`Conv2d`], [`Linear`], [`Relu`],
//!   [`MaxPool`], [`Flatten`]) composed into a [`Network`];
//! - SGD with momentum and the paper's step learning-rate decay
//!   ([`optimizer`]);
//! - the centrosymmetric filter constraint ([`centrosymmetric`]): Eq. 5 mean
//!   initialization and Eq. 7 gradient tying, applied only to eligible
//!   (unit-stride) conv layers;
//! - Deep-Compression-style magnitude pruning ([`pruning`]) that prunes dual
//!   weights together so the centrosymmetric structure survives;
//! - synthetic labeled image datasets ([`datasets`]) standing in for
//!   MNIST/CIFAR (offline substitution, see DESIGN.md §2);
//! - reference model builders ([`models`]) and a batch [`trainer`].
//!
//! A trained [`Network`] is the *trained-weights entry point* of the
//! workspace's lowering chain: `Network::to_ir` lowers it into the typed
//! `cscnn-ir` `ModelIr` (measured shapes and centrosymmetric flags), from
//! which workload synthesis and simulation proceed exactly as for catalog
//! models.
//!
//! # Example
//!
//! ```
//! use cscnn_nn::models;
//! use cscnn_nn::datasets::SyntheticImages;
//! use cscnn_nn::trainer::{TrainConfig, Trainer};
//!
//! let data = SyntheticImages::generate(1, 8, 8, 3, 60, 0.1, 7);
//! let mut net = models::tiny_cnn(1, 8, 8, 3, 7);
//! let report = Trainer::new(TrainConfig { epochs: 2, batch_size: 10, ..Default::default() })
//!     .fit(&mut net, &data, &data);
//! assert!(report.final_train_accuracy >= 0.0);
//! ```

pub mod centrosymmetric;
pub mod codebook;
pub mod constraints;
pub mod datasets;
mod layers;
pub mod metrics;
pub mod models;
mod network;
mod norm;
pub mod optimizer;
pub mod pruning;
pub mod quant;
pub mod trainer;

pub use cscnn_ir::{DescribeError, IrError, LayerNode, ModelIr};
pub use layers::{Conv2d, Dropout, Flatten, Layer, Linear, MaxPool, Param, Relu};
pub use network::Network;
pub use norm::{AvgPool, BatchNorm2d};
