//! Mini-batch training loop.

use cscnn_rng::rngs::StdRng;
use cscnn_rng::SeedableRng;

use crate::datasets::SyntheticImages;
use crate::metrics::{accuracy, softmax_cross_entropy};
use crate::optimizer::{LrSchedule, Sgd};
use crate::Network;

/// Training hyper-parameters.
///
/// The defaults mirror the paper's retraining configuration scaled down for
/// the proxy tasks: step LR decay by 5× every 5 epochs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// LR decay factor (paper: 5).
    pub lr_decay_factor: f32,
    /// Decay interval in epochs (paper: 5).
    pub lr_decay_every: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Kernel thread count for this run: `Some(n)` installs `n` via
    /// [`cscnn_tensor::set_num_threads`] before the first epoch, `None`
    /// keeps the process default (`CSCNN_NUM_THREADS` or the machine's
    /// available parallelism). The kernels are bit-identical at every
    /// thread count, so this only affects wall-clock time.
    pub num_threads: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay_factor: 5.0,
            lr_decay_every: 5,
            seed: 0,
            num_threads: None,
        }
    }
}

/// Per-epoch statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Training accuracy (computed on the fly over training batches).
    pub train_accuracy: f64,
    /// Held-out accuracy after this epoch.
    pub test_accuracy: f64,
}

/// The result of a training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Statistics for every epoch.
    pub history: Vec<EpochStats>,
    /// Final training accuracy.
    pub final_train_accuracy: f64,
    /// Final held-out accuracy.
    pub final_test_accuracy: f64,
}

/// Drives mini-batch SGD training of a [`Network`].
///
/// # Example
///
/// ```
/// use cscnn_nn::datasets::SyntheticImages;
/// use cscnn_nn::models;
/// use cscnn_nn::trainer::{TrainConfig, Trainer};
///
/// let data = SyntheticImages::generate(1, 8, 8, 2, 20, 0.1, 0);
/// let (train, test) = data.split(0.25);
/// let mut net = models::tiny_cnn(1, 8, 8, 2, 0);
/// let report = Trainer::new(TrainConfig { epochs: 1, ..Default::default() })
///     .fit(&mut net, &train, &test);
/// assert_eq!(report.history.len(), 1);
/// ```
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains `net` on `train`, evaluating on `test` each epoch.
    pub fn fit(
        &self,
        net: &mut Network,
        train: &SyntheticImages,
        test: &SyntheticImages,
    ) -> TrainReport {
        let cfg = &self.config;
        if let Some(n) = cfg.num_threads {
            cscnn_tensor::set_num_threads(n);
        }
        let schedule = LrSchedule::step(cfg.lr, cfg.lr_decay_factor, cfg.lr_decay_every);
        let mut opt = Sgd::new(cfg.momentum, cfg.weight_decay);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut report = TrainReport::default();
        for epoch in 0..cfg.epochs {
            let lr = schedule.lr_at(epoch);
            let indices = train.shuffled_indices(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in indices.chunks(cfg.batch_size) {
                let (x, labels) = train.batch(chunk);
                let logits = net.forward(&x);
                let (loss, grad) = softmax_cross_entropy(&logits, &labels);
                net.backward(&grad);
                let mut params = net.params_mut();
                opt.step(&mut params, lr);
                loss_sum += loss as f64;
                acc_sum += accuracy(&logits, &labels);
                batches += 1;
            }
            let test_accuracy = evaluate(net, test, cfg.batch_size);
            report.history.push(EpochStats {
                epoch,
                train_loss: loss_sum / batches as f64,
                train_accuracy: acc_sum / batches as f64,
                test_accuracy,
            });
        }
        if let Some(last) = report.history.last() {
            report.final_train_accuracy = last.train_accuracy;
            report.final_test_accuracy = last.test_accuracy;
        }
        report
    }
}

/// Accuracy of `net` over a full dataset, evaluated in batches.
pub fn evaluate(net: &mut Network, data: &SyntheticImages, batch_size: usize) -> f64 {
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut correct_weighted = 0.0f64;
    for chunk in indices.chunks(batch_size.max(1)) {
        let (x, labels) = data.batch(chunk);
        let logits = net.forward(&x);
        correct_weighted += accuracy(&logits, &labels) * chunk.len() as f64;
    }
    correct_weighted / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let data = SyntheticImages::generate(1, 8, 8, 3, 40, 0.1, 21);
        let (train, test) = data.split(0.2);
        let mut net = models::tiny_cnn(1, 8, 8, 3, 21);
        let report = Trainer::new(TrainConfig {
            epochs: 6,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        })
        .fit(&mut net, &train, &test);
        let first = report.history.first().expect("history");
        let last = report.history.last().expect("history");
        assert!(last.train_loss < first.train_loss, "loss should fall");
        assert!(
            report.final_test_accuracy > 0.5,
            "should beat 1/3 chance clearly, got {}",
            report.final_test_accuracy
        );
    }

    #[test]
    fn evaluate_handles_uneven_batches() {
        let data = SyntheticImages::generate(1, 8, 8, 2, 7, 0.1, 3);
        let mut net = models::tiny_cnn(1, 8, 8, 2, 3);
        let acc = evaluate(&mut net, &data, 4);
        assert!((0.0..=1.0).contains(&acc));
    }
}
