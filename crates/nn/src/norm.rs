//! Batch normalization and average-pooling layers.

use cscnn_ir::{DescribeError, LayerNode, PoolKind};
use cscnn_tensor::{avg_pool2d, avg_pool2d_backward, PoolSpec, Tensor};

use crate::layers::{Layer, Param};

/// 2-D batch normalization over `[N, C, H, W]` with learnable scale/shift
/// and running statistics for evaluation.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    training: bool,
    cache: Option<BnCache>,
}

struct BnCache {
    normalized: Tensor,
    std_inv: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            training: true,
            cache: None,
        }
    }

    /// Switches between training (batch statistics) and evaluation
    /// (running statistics) modes.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// The learnable scale parameter.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }
}

impl Layer for BatchNorm2d {
    #[allow(clippy::needless_range_loop)] // strided plane indexing is clearer than iterators here
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let dims = input.shape().dims().to_vec();
        assert_eq!(dims.len(), 4, "BatchNorm2d expects [N,C,H,W]");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let src = input.as_slice();
        let mut out = Tensor::zeros(&dims);
        let mut normalized = Tensor::zeros(&dims);
        let mut std_inv = vec![0.0f32; c];
        for ci in 0..c {
            let (mean, var) = if self.training {
                let mut sum = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    sum += src[base..base + plane]
                        .iter()
                        .map(|&x| x as f64)
                        .sum::<f64>();
                }
                let mean = (sum / count as f64) as f32;
                let mut var_sum = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    var_sum += src[base..base + plane]
                        .iter()
                        .map(|&x| ((x - mean) as f64).powi(2))
                        .sum::<f64>();
                }
                let var = (var_sum / count as f64) as f32;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv = 1.0 / (var + self.eps).sqrt();
            std_inv[ci] = inv;
            let g = self.gamma.value.as_slice()[ci];
            let b = self.beta.value.as_slice()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let x_hat = (src[i] - mean) * inv;
                    normalized.as_mut_slice()[i] = x_hat;
                    out.as_mut_slice()[i] = g * x_hat + b;
                }
            }
        }
        if self.training {
            self.cache = Some(BnCache {
                normalized,
                std_inv,
                dims,
            });
        }
        out
    }

    #[allow(clippy::needless_range_loop)] // strided plane indexing is clearer than iterators here
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward called before forward");
        let dims = cache.dims;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let go = grad_out.as_slice();
        let x_hat = cache.normalized.as_slice();
        let mut grad_in = Tensor::zeros(&dims);
        let mut d_gamma = Tensor::zeros(&[c]);
        let mut d_beta = Tensor::zeros(&[c]);
        for ci in 0..c {
            // Channel-wise sums for the batch-norm backward identity.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    sum_dy += go[i] as f64;
                    sum_dy_xhat += (go[i] * x_hat[i]) as f64;
                }
            }
            d_beta.as_mut_slice()[ci] = sum_dy as f32;
            d_gamma.as_mut_slice()[ci] = sum_dy_xhat as f32;
            let g = self.gamma.value.as_slice()[ci];
            let inv = cache.std_inv[ci];
            let k1 = (sum_dy / count as f64) as f32;
            let k2 = (sum_dy_xhat / count as f64) as f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    grad_in.as_mut_slice()[i] = g * inv * (go[i] - k1 - x_hat[i] * k2);
                }
            }
        }
        self.gamma.grad = d_gamma;
        self.beta.grad = d_beta;
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn describe(&self, input: &[usize]) -> Result<LayerNode, DescribeError> {
        let channels = self.gamma.value.len();
        if input.len() != 4 {
            return Err(DescribeError::new(
                "batchnorm2d",
                format!("expected rank-4 [N,C,H,W] input, got rank {}", input.len()),
            ));
        }
        if input[1] != channels {
            return Err(DescribeError::new(
                "batchnorm2d",
                format!("input has {} channels, layer expects {channels}", input[1]),
            ));
        }
        Ok(LayerNode::Norm { channels })
    }
}

/// Average-pooling layer.
pub struct AvgPool {
    spec: PoolSpec,
    cached_dims: Option<Vec<usize>>,
}

impl AvgPool {
    /// Creates an average-pooling layer.
    pub fn new(spec: PoolSpec) -> Self {
        AvgPool {
            spec,
            cached_dims: None,
        }
    }
}

impl Layer for AvgPool {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_dims = Some(input.shape().dims().to_vec());
        avg_pool2d(input, &self.spec)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .take()
            .expect("backward called before forward");
        avg_pool2d_backward(grad_out, &dims, &self.spec)
    }

    fn name(&self) -> &'static str {
        "avgpool"
    }

    fn describe(&self, input: &[usize]) -> Result<LayerNode, DescribeError> {
        if input.len() != 4 {
            return Err(DescribeError::new(
                "avgpool",
                format!("expected rank-4 [N,C,H,W] input, got rank {}", input.len()),
            ));
        }
        Ok(LayerNode::Pool {
            kind: PoolKind::Avg,
            window: self.spec.window,
            stride: self.spec.stride,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batchnorm_normalizes_channel_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_fn(&[4, 2, 3, 3], |i| (i as f32 * 0.37).sin() * 3.0 + 1.0);
        let y = bn.forward(&x);
        // Per-channel mean ≈ 0, var ≈ 1 after normalization (γ=1, β=0).
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for p in 0..9 {
                    vals.push(y.as_slice()[(ni * 2 + ci) * 9 + p]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean={mean}");
            assert!((var - 1.0).abs() < 1e-2, "var={var}");
        }
    }

    #[test]
    fn batchnorm_backward_matches_finite_differences() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_fn(&[2, 1, 2, 2], |i| (i as f32 * 0.7).cos());
        // Loss = Σ out²/2 so dL/dout = out.
        let y = bn.forward(&x);
        let grad_in = bn.backward(&y);
        let eps = 1e-3;
        for idx in 0..8 {
            let mut bn2 = BatchNorm2d::new(1);
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp: f32 = bn2
                .forward(&xp)
                .as_slice()
                .iter()
                .map(|v| v * v * 0.5)
                .sum();
            let mut bn3 = BatchNorm2d::new(1);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lm: f32 = bn3
                .forward(&xm)
                .as_slice()
                .iter()
                .map(|v| v * v * 0.5)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad_in.as_slice()[idx]).abs() < 2e-2,
                "idx={idx}: fd={fd} an={}",
                grad_in.as_slice()[idx]
            );
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        // Train on data with mean 5 to build running stats.
        for _ in 0..50 {
            let x = Tensor::from_fn(&[8, 1, 2, 2], |i| 5.0 + ((i * 13 % 7) as f32 - 3.0) * 0.1);
            let _ = bn.forward(&x);
        }
        bn.set_training(false);
        // A batch with a very different mean must be normalized with the
        // *running* mean, not its own.
        let shifted = Tensor::full(&[2, 1, 2, 2], 5.0);
        let y = bn.forward(&shifted);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!(
            mean.abs() < 0.5,
            "running stats should center 5.0 near 0, got {mean}"
        );
    }

    #[test]
    fn avgpool_layer_round_trips_gradient_mass() {
        let mut pool = AvgPool::new(PoolSpec::new(2));
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let y = pool.forward(&x);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        let g = pool.backward(&Tensor::full(&[1, 1, 2, 2], 1.0));
        // Gradient mass is preserved.
        assert!((g.sum() - 4.0).abs() < 1e-6);
    }
}
