//! 16-bit fixed-point quantization (paper §IV: "We use 16-bit fixed-point
//! arithmetic units as it has been proved to be effective in CNN
//! computation").
//!
//! The simulator charges 16-bit energies; this module closes the loop on
//! the *accuracy* side: quantize a trained network's weights to Q-format
//! fixed point and verify inference survives, so the hardware's numeric
//! choice is justified within the reproduction rather than assumed.

use cscnn_tensor::Tensor;

use crate::Network;

/// A signed 16-bit fixed-point format with `frac_bits` fractional bits
/// (`Q(15-frac_bits).frac_bits` plus sign).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QFormat {
    /// Number of fractional bits (0–15).
    pub frac_bits: u8,
}

impl QFormat {
    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 15`.
    pub fn new(frac_bits: u8) -> Self {
        assert!(frac_bits <= 15, "at most 15 fractional bits");
        QFormat { frac_bits }
    }

    /// The representable magnitude limit.
    pub fn max_value(&self) -> f32 {
        (i16::MAX as f32) / self.scale()
    }

    /// The quantization step.
    pub fn resolution(&self) -> f32 {
        1.0 / self.scale()
    }

    fn scale(&self) -> f32 {
        (1i32 << self.frac_bits) as f32
    }

    /// Quantizes one value (round-to-nearest, saturating).
    pub fn quantize(&self, x: f32) -> i16 {
        (x * self.scale())
            .round()
            .clamp(i16::MIN as f32, i16::MAX as f32) as i16
    }

    /// Dequantizes one value.
    pub fn dequantize(&self, q: i16) -> f32 {
        q as f32 / self.scale()
    }

    /// The tightest format (most fractional bits) that represents every
    /// value of `values` without saturation.
    pub fn fit(values: &[f32]) -> Self {
        let max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let mut frac = 15u8;
        while frac > 0 && QFormat::new(frac).max_value() < max {
            frac -= 1;
        }
        QFormat::new(frac)
    }
}

/// Round-trips a tensor through fixed point, returning the quantized copy
/// and the worst-case absolute error.
pub fn quantize_tensor(t: &Tensor, fmt: QFormat) -> (Tensor, f32) {
    let mut max_err = 0.0f32;
    let data: Vec<f32> = t
        .as_slice()
        .iter()
        .map(|&x| {
            let y = fmt.dequantize(fmt.quantize(x));
            max_err = max_err.max((x - y).abs());
            y
        })
        .collect();
    (Tensor::from_vec(data, t.shape().dims()), max_err)
}

/// Quantizes every parameter of a network in place (per-parameter fitted
/// formats, as a per-layer scale factor in hardware would). Returns the
/// worst absolute error across all parameters.
pub fn quantize_network(net: &mut Network) -> f32 {
    let mut worst = 0.0f32;
    for p in net.params_mut() {
        let fmt = QFormat::fit(p.value.as_slice());
        let (q, err) = quantize_tensor(&p.value, fmt);
        p.value = q;
        p.enforce_mask();
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::SyntheticImages;
    use crate::models;
    use crate::trainer::{evaluate, TrainConfig, Trainer};

    #[test]
    fn quantize_round_trip_error_is_bounded_by_half_lsb() {
        let fmt = QFormat::new(8);
        for x in [-3.7f32, 0.0, 0.001, 120.0, -120.0] {
            let y = fmt.dequantize(fmt.quantize(x));
            assert!((x - y).abs() <= fmt.resolution() * 0.5 + 1e-6, "x={x}");
        }
    }

    #[test]
    fn saturation_clamps_out_of_range_values() {
        let fmt = QFormat::new(12);
        let big = fmt.dequantize(fmt.quantize(1e6));
        assert!((big - fmt.max_value()).abs() < fmt.resolution());
    }

    #[test]
    fn fit_chooses_maximal_precision() {
        let fmt = QFormat::fit(&[0.5, -0.25, 0.125]);
        assert_eq!(fmt.frac_bits, 15, "sub-unit values use all 15 bits");
        let fmt = QFormat::fit(&[100.0]);
        assert!(fmt.max_value() >= 100.0);
        assert!(QFormat::new(fmt.frac_bits + 1).max_value() < 100.0);
    }

    #[test]
    fn quantized_network_keeps_its_accuracy() {
        // The §IV premise: 16-bit fixed point is accuracy-neutral.
        let data = SyntheticImages::generate(1, 8, 8, 3, 50, 0.12, 21);
        let (train, test) = data.split(0.2);
        let mut net = models::tiny_cnn(1, 8, 8, 3, 21);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        };
        let report = Trainer::new(cfg).fit(&mut net, &train, &test);
        let float_acc = report.final_test_accuracy;
        let worst = quantize_network(&mut net);
        let fixed_acc = evaluate(&mut net, &test, 16);
        assert!(worst < 1e-2, "worst quantization error {worst}");
        assert!(
            (float_acc - fixed_acc).abs() < 0.05,
            "float {float_acc} vs fixed {fixed_acc}"
        );
    }
}
