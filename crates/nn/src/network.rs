//! Sequential network container.

use cscnn_ir::{IrError, ModelIr};
use cscnn_tensor::Tensor;

use crate::layers::{Conv2d, Layer, Param};

/// A sequential stack of layers.
///
/// # Example
///
/// ```
/// use cscnn_nn::{Network, Relu, Flatten, Linear};
/// use cscnn_tensor::Tensor;
/// use cscnn_rng::rngs::StdRng;
/// use cscnn_rng::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Network::new();
/// net.push(Flatten::new());
/// net.push(Linear::new(&mut rng, 4, 2));
/// net.push(Relu::new());
/// let out = net.forward(&Tensor::zeros(&[1, 1, 2, 2]));
/// assert_eq!(out.shape().dims(), &[1, 2]);
/// ```
#[derive(Default)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass through all layers, caching for backward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Runs the forward pass, invoking `observe(layer_index, layer_name,
    /// input)` with each layer's *input* tensor before that layer runs.
    /// Used to extract measured activation sparsity for the simulator.
    pub fn forward_observed(
        &mut self,
        input: &Tensor,
        mut observe: impl FnMut(usize, &'static str, &Tensor),
    ) -> Tensor {
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            observe(i, layer.name(), &x);
            x = layer.forward(&x);
        }
        x
    }

    /// Runs the backward pass; must follow a `forward` call.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All trainable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Shared view of all trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.value.len()).sum()
    }

    /// Iterates over the conv layers (used by the centrosymmetric and
    /// pruning passes).
    pub fn conv_layers_mut(&mut self) -> impl Iterator<Item = &mut Conv2d> {
        self.layers.iter_mut().filter_map(|l| l.as_conv_mut())
    }

    /// Iterates over the fully-connected layers (used by the pruning pass).
    pub fn linear_layers_mut(&mut self) -> impl Iterator<Item = &mut crate::layers::Linear> {
        self.layers.iter_mut().filter_map(|l| l.as_linear_mut())
    }

    /// Borrows layer `i` as a trait object (reach concrete types through
    /// the typed accessors [`Layer::as_conv_mut`] / [`Layer::as_linear_mut`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer_mut(&mut self, i: usize) -> &mut dyn Layer {
        self.layers[i].as_mut()
    }

    /// Shared borrow of layer `i` as a trait object.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer(&self, i: usize) -> &dyn Layer {
        self.layers[i].as_ref()
    }

    /// Lowers this network to typed IR (`Network → Ir`).
    ///
    /// Runs a zero-valued probe batch of shape `[1, c, h, w]` through the
    /// network to observe every layer's input shape, then asks each layer
    /// to [`Layer::describe`] itself. Nodes are named `L{i}` after their
    /// layer index so lowering errors and simulator reports can point back
    /// to the offending layer.
    ///
    /// # Errors
    ///
    /// [`IrError::UnsupportedLayer`] naming the offending layer when a
    /// layer rejects its observed input shape.
    pub fn to_ir(
        &mut self,
        name: &str,
        input_chw: (usize, usize, usize),
    ) -> Result<ModelIr, IrError> {
        let (c, h, w) = input_chw;
        let probe = Tensor::zeros(&[1, c, h, w]);
        let mut shapes: Vec<Vec<usize>> = Vec::with_capacity(self.layers.len());
        let _ = self.forward_observed(&probe, |_, _, input| {
            shapes.push(input.shape().dims().to_vec());
        });
        let mut ir = ModelIr::new(name, Vec::new());
        for (i, shape) in shapes.iter().enumerate() {
            let node = self
                .layer(i)
                .describe(shape)
                .map_err(|e| IrError::UnsupportedLayer {
                    layer: format!("L{i}"),
                    kind: e.kind.to_string(),
                    reason: e.reason,
                })?;
            ir.nodes.push(node.with_name(&format!("L{i}")));
        }
        Ok(ir)
    }

    /// Layer kind names, in order (useful for debugging and reports).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu};
    use cscnn_rng::rngs::StdRng;
    use cscnn_rng::SeedableRng;
    use cscnn_tensor::ConvSpec;

    #[test]
    fn forward_backward_shapes_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Network::new();
        net.push(Conv2d::new(
            &mut rng,
            1,
            4,
            ConvSpec::new(3, 3).with_padding(1),
        ));
        net.push(Relu::new());
        net.push(Flatten::new());
        net.push(Linear::new(&mut rng, 4 * 6 * 6, 3));
        let x = Tensor::from_fn(&[2, 1, 6, 6], |i| (i as f32 * 0.05).sin());
        let y = net.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 3]);
        let gi = net.backward(&Tensor::full(&[2, 3], 1.0));
        assert_eq!(gi.shape().dims(), &[2, 1, 6, 6]);
        assert_eq!(net.params().len(), 4); // conv w/b + linear w/b
        assert!(net.num_params() > 0);
    }

    #[test]
    fn to_ir_names_nodes_by_layer_index() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Network::new();
        net.push(Conv2d::new(
            &mut rng,
            1,
            4,
            ConvSpec::new(3, 3).with_padding(1),
        ));
        net.push(Relu::new());
        net.push(Flatten::new());
        net.push(Linear::new(&mut rng, 4 * 6 * 6, 3));
        let ir = net.to_ir("tiny", (1, 6, 6)).expect("network lowers to IR");
        assert_eq!(ir.name, "tiny");
        assert_eq!(ir.nodes.len(), 4);
        assert_eq!(ir.nodes[0].name(), Some("L0"));
        assert_eq!(ir.nodes[3].name(), Some("L3"));
        assert_eq!(ir.num_weight_nodes(), 2);
        assert_eq!(ir.nodes[1].kind_label(), "activation");
    }

    #[test]
    fn conv_layers_mut_finds_only_convs() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Network::new();
        net.push(Conv2d::new(&mut rng, 1, 2, ConvSpec::new(3, 3)));
        net.push(Relu::new());
        net.push(Conv2d::new(&mut rng, 2, 2, ConvSpec::new(3, 3)));
        assert_eq!(net.conv_layers_mut().count(), 2);
        assert_eq!(net.layer_names(), vec!["conv2d", "relu", "conv2d"]);
    }
}
