//! The CSCNN centrosymmetric training pass (paper §II-B).
//!
//! Converting a pre-trained conventional network into a CSCNN model is a
//! two-step process:
//!
//! 1. [`centrosymmetrize`] — project every *eligible* conv layer's filters
//!    with the Eq. 5 mean initialization and turn on Eq. 7 gradient tying in
//!    that layer. Eligibility (paper §II-A): convolutional layers with unit
//!    stride; FC layers and strided convolutions are skipped because the
//!    structured reuse does not apply there.
//! 2. Retrain the network (the usual [`crate::trainer::Trainer`] loop); the
//!    tied gradients keep the structure intact while recovering accuracy.

use cscnn_ir::IrError;
use cscnn_sparse::centro;
use cscnn_tensor::Tensor;

use crate::layers::Conv2d;
use crate::Network;

/// Whether a conv layer is eligible for the centrosymmetric constraint:
/// unit stride and a kernel with more than one weight (a `1×1` kernel is
/// trivially centrosymmetric — constraining it saves nothing).
pub fn is_eligible(conv: &Conv2d) -> bool {
    let spec = conv.spec();
    spec.stride == 1 && spec.kernel_h * spec.kernel_w > 1
}

/// Projects one conv layer's filters with the Eq. 5 mean initialization and
/// enables gradient tying. Returns `false` (and does nothing) when the layer
/// is not eligible.
pub fn centrosymmetrize_conv(conv: &mut Conv2d) -> bool {
    if !is_eligible(conv) {
        return false;
    }
    let dims = conv.weight().value.shape().dims().to_vec();
    let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
    let mut new = conv.weight().value.as_slice().to_vec();
    for slice_idx in 0..k * c {
        let base = slice_idx * r * s;
        let projected = centro::project_mean(&new[base..base + r * s], r, s);
        new[base..base + r * s].copy_from_slice(&projected);
    }
    // Construction-site invariant (Eq. 2): every slice of the new weight
    // tensor must satisfy W(u,v) == W(R-1-u,S-1-v) exactly before the layer
    // is flagged centrosymmetric.
    debug_assert!(
        new.chunks_exact(r * s)
            .all(|slice| centro::is_centrosymmetric(slice, r, s, 0.0)),
        "centrosymmetrize_conv produced a non-centrosymmetric filter"
    );
    conv.weight_mut().value = Tensor::from_vec(new, &dims);
    conv.set_centrosymmetric(true);
    true
}

/// Applies [`centrosymmetrize_conv`] to every conv layer in the network;
/// returns the number of layers converted.
///
/// # Errors
///
/// [`IrError::NonFiniteWeights`] naming the offending layer (`L{i}` by
/// network index) when a conv layer's weights contain NaN/infinite values
/// — projecting such a filter would silently spread the poison across its
/// dual positions.
pub fn centrosymmetrize(net: &mut Network) -> Result<usize, IrError> {
    let mut converted = 0;
    for i in 0..net.len() {
        let Some(conv) = net.layer_mut(i).as_conv_mut() else {
            continue;
        };
        if !conv.weight().value.as_slice().iter().all(|x| x.is_finite()) {
            return Err(IrError::NonFiniteWeights {
                layer: format!("L{i}"),
                kind: "conv2d".to_string(),
            });
        }
        converted += usize::from(centrosymmetrize_conv(conv));
    }
    Ok(converted)
}

/// Verifies that every centrosymmetric-flagged conv layer still satisfies
/// Eq. 2 within `tol`. Used by tests and as a training-time invariant check.
pub fn check_invariant(net: &mut Network, tol: f32) -> bool {
    for conv in net.conv_layers_mut() {
        if !conv.is_centrosymmetric() {
            continue;
        }
        let dims = conv.weight().value.shape().dims().to_vec();
        let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
        let w = conv.weight().value.as_slice();
        for slice_idx in 0..k * c {
            let base = slice_idx * r * s;
            if !centro::is_centrosymmetric(&w[base..base + r * s], r, s, tol) {
                return false;
            }
        }
    }
    true
}

/// Counts the multiplications a network's conv layers require per inference
/// under three regimes, mirroring the "Multiplication Reduction" columns of
/// Tables II/III (weight-driven only — zero activations are deliberately not
/// counted, as the paper's footnote specifies).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MultCount {
    /// Dense multiplications (all weights).
    pub dense: u64,
    /// After the centrosymmetric constraint (unique weights only, in
    /// eligible layers).
    pub centrosymmetric: u64,
    /// After centrosymmetric + pruning (unique *non-zero* weights).
    pub pruned: u64,
}

impl MultCount {
    /// `dense / centrosymmetric` — the CSCNN-only reduction factor.
    pub fn centro_reduction(&self) -> f64 {
        self.dense as f64 / self.centrosymmetric as f64
    }

    /// `dense / pruned` — the CSCNN+Pruning reduction factor.
    pub fn pruned_reduction(&self) -> f64 {
        self.dense as f64 / self.pruned as f64
    }
}

/// Computes [`MultCount`] for a trained network given the spatial input size
/// of each conv layer (`inputs[i]` is the `(h, w)` fed to the i-th conv
/// layer, in network order).
///
/// # Errors
///
/// [`IrError::MissingConvInput`] naming the starved layer (`L{i}` by
/// network index) when `inputs` has fewer entries than there are conv
/// layers.
pub fn count_multiplications(
    net: &mut Network,
    inputs: &[(usize, usize)],
) -> Result<MultCount, IrError> {
    let mut out = MultCount::default();
    let mut idx = 0;
    for i in 0..net.len() {
        let Some(conv) = net.layer_mut(i).as_conv_mut() else {
            continue;
        };
        let Some(&(h, w)) = inputs.get(idx) else {
            return Err(IrError::MissingConvInput {
                layer: format!("L{i}"),
            });
        };
        idx += 1;
        let spec = *conv.spec();
        let (oh, ow) = spec.output_dim(h, w);
        let pixels = (oh * ow) as u64;
        let dims = conv.weight().value.shape().dims().to_vec();
        let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
        let weights = (k * c * r * s) as u64;
        out.dense += weights * pixels;
        let eligible = conv.is_centrosymmetric();
        let unique_per_slice = if eligible {
            centro::unique_weight_count(r, s) as u64
        } else {
            (r * s) as u64
        };
        out.centrosymmetric += (k * c) as u64 * unique_per_slice * pixels;
        // Pruned: count unique non-zero weights.
        let wv = conv.weight().value.as_slice();
        let mut nnz_unique: u64 = 0;
        for slice_idx in 0..k * c {
            let base = slice_idx * r * s;
            let slice = &wv[base..base + r * s];
            if eligible {
                nnz_unique += centro::unique_positions(r, s)
                    .iter()
                    .filter(|&&(u, v)| slice[u * s + v] != 0.0)
                    .count() as u64;
            } else {
                nnz_unique += slice.iter().filter(|x| **x != 0.0).count() as u64;
            }
        }
        out.pruned += nnz_unique * pixels;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_rng::rngs::StdRng;
    use cscnn_rng::SeedableRng;
    use cscnn_tensor::ConvSpec;

    fn conv(stride: usize, kernel: usize) -> Conv2d {
        let mut rng = StdRng::seed_from_u64(11);
        Conv2d::new(
            &mut rng,
            2,
            3,
            ConvSpec::new(kernel, kernel).with_stride(stride),
        )
    }

    #[test]
    fn unit_stride_layers_are_eligible() {
        assert!(is_eligible(&conv(1, 3)));
        assert!(!is_eligible(&conv(2, 3)), "strided conv must be skipped");
        assert!(!is_eligible(&conv(1, 1)), "1x1 conv gains nothing");
    }

    #[test]
    fn projection_makes_filters_centrosymmetric() {
        let mut c = conv(1, 3);
        assert!(centrosymmetrize_conv(&mut c));
        assert!(c.is_centrosymmetric());
        let w = c.weight().value.as_slice();
        for slice in w.chunks(9) {
            assert!(centro::is_centrosymmetric(slice, 3, 3, 1e-6));
        }
    }

    #[test]
    fn strided_conv_is_left_untouched() {
        let mut c = conv(4, 3);
        let before = c.weight().value.clone();
        assert!(!centrosymmetrize_conv(&mut c));
        assert_eq!(c.weight().value, before);
        assert!(!c.is_centrosymmetric());
    }

    #[test]
    fn network_pass_counts_converted_layers() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Network::new();
        net.push(Conv2d::new(&mut rng, 1, 2, ConvSpec::new(3, 3)));
        net.push(Conv2d::new(
            &mut rng,
            2,
            2,
            ConvSpec::new(3, 3).with_stride(2),
        ));
        net.push(Conv2d::new(&mut rng, 2, 2, ConvSpec::new(5, 5)));
        assert_eq!(centrosymmetrize(&mut net).expect("finite weights"), 2);
        assert!(check_invariant(&mut net, 1e-6));
    }

    #[test]
    fn walkers_name_the_offending_layer() {
        use crate::layers::Relu;
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = Network::new();
        net.push(Relu::new());
        net.push(Conv2d::new(&mut rng, 1, 2, ConvSpec::new(3, 3)));
        let err = count_multiplications(&mut net, &[]).expect_err("no input sizes");
        assert_eq!(err, IrError::MissingConvInput { layer: "L1".into() });
        let conv = net.layer_mut(1).as_conv_mut().expect("conv layer");
        conv.weight_mut().value.as_mut_slice()[0] = f32::NAN;
        let err = centrosymmetrize(&mut net).expect_err("NaN weight");
        assert!(matches!(err, IrError::NonFiniteWeights { .. }));
        assert!(err.to_string().contains("L1"));
    }

    #[test]
    fn mult_count_reduction_is_about_two_for_odd_kernels() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Network::new();
        net.push(Conv2d::new(
            &mut rng,
            4,
            8,
            ConvSpec::new(3, 3).with_padding(1),
        ));
        centrosymmetrize(&mut net).expect("finite weights");
        let mc = count_multiplications(&mut net, &[(16, 16)]).expect("input sizes provided");
        // 3x3: 9 dense vs 5 unique → 1.8x.
        assert!((mc.centro_reduction() - 1.8).abs() < 1e-9);
        assert_eq!(mc.pruned, mc.centrosymmetric, "no pruning applied yet");
    }
}
