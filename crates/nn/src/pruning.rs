//! Deep-Compression-style magnitude pruning (paper §II-C).
//!
//! The paper combines centrosymmetric filters with the pruning pipeline of
//! Han et al.: (1) train, (2) prune weights below a threshold, (3) retrain.
//! For CSCNN layers, dual weights share one value so they are pruned
//! *together*, preserving the centrosymmetric structure (the paper notes the
//! pruned network "will maintain the centrosymmetric structure").
//!
//! Thresholds are chosen per layer from a target keep-fraction (quantile of
//! absolute weight values), mirroring Deep Compression's per-layer
//! sensitivity-derived rates.

use cscnn_ir::IrError;
use cscnn_tensor::Tensor;

use crate::layers::{Conv2d, Linear};
use crate::Network;

/// Per-layer pruning targets: the fraction of weights to *keep* in conv and
/// FC layers respectively.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruneConfig {
    /// Keep fraction for conv layers (e.g. `0.35` keeps 35 % of weights).
    pub conv_keep: f64,
    /// Keep fraction for fully-connected layers (typically far lower).
    pub fc_keep: f64,
}

impl Default for PruneConfig {
    /// Deep Compression's AlexNet-like defaults: ~35 % of conv weights and
    /// ~10 % of FC weights survive.
    fn default() -> Self {
        PruneConfig {
            conv_keep: 0.35,
            fc_keep: 0.10,
        }
    }
}

/// The absolute-value threshold that keeps `keep` fraction of `values`.
///
/// # Panics
///
/// Panics if `keep` is outside `[0, 1]` or `values` is empty.
pub fn magnitude_threshold(values: &[f32], keep: f64) -> f32 {
    assert!(
        (0.0..=1.0).contains(&keep),
        "keep fraction must be in [0,1]"
    );
    assert!(!values.is_empty(), "cannot derive threshold of empty slice");
    let mut mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("NaN weight"));
    let prune_count = ((values.len() as f64) * (1.0 - keep)).round() as usize;
    if prune_count == 0 {
        return -1.0; // keep everything (all |w| > -1)
    }
    if prune_count >= mags.len() {
        return f32::INFINITY;
    }
    // Keep weights strictly above the magnitude of the last pruned weight.
    mags[prune_count - 1]
}

/// Builds a 0/1 mask keeping values with `|w| > threshold`.
pub fn magnitude_mask(values: &Tensor, threshold: f32) -> Tensor {
    values.map(|v| if v.abs() > threshold { 1.0 } else { 0.0 })
}

/// Prunes one conv layer to the target keep fraction, installing a mask and
/// zeroing pruned weights. Returns the achieved keep fraction.
///
/// For centrosymmetric layers the threshold is computed over the canonical
/// half only, and the resulting mask is automatically symmetric because dual
/// weights share the same value (verified in tests).
pub fn prune_conv(conv: &mut Conv2d, keep: f64) -> f64 {
    let threshold = magnitude_threshold(conv.weight().value.as_slice(), keep);
    let mask = magnitude_mask(&conv.weight().value, threshold);
    conv.weight_mut().mask = Some(mask);
    conv.weight_mut().enforce_mask();
    conv.weight().kept_fraction()
}

/// Prunes one FC layer to the target keep fraction. Returns the achieved
/// keep fraction.
pub fn prune_linear(linear: &mut Linear, keep: f64) -> f64 {
    let threshold = magnitude_threshold(linear.weight().value.as_slice(), keep);
    let mask = magnitude_mask(&linear.weight().value, threshold);
    linear.weight_mut().mask = Some(mask);
    linear.weight_mut().enforce_mask();
    linear.weight().kept_fraction()
}

/// Prunes the whole network per [`PruneConfig`]. Returns the overall kept
/// fraction of prunable weights.
///
/// # Errors
///
/// [`IrError::NonFiniteWeights`] naming the offending layer (`L{i}` by
/// network index) when a prunable layer's weights contain NaN/infinite
/// values — a magnitude threshold over such weights is meaningless.
pub fn prune_network(net: &mut Network, config: &PruneConfig) -> Result<f64, IrError> {
    for i in 0..net.len() {
        let layer = net.layer_mut(i);
        let (kind, finite) = if let Some(conv) = layer.as_conv_mut() {
            (
                "conv2d",
                conv.weight().value.as_slice().iter().all(|x| x.is_finite()),
            )
        } else if let Some(linear) = layer.as_linear_mut() {
            (
                "linear",
                linear
                    .weight()
                    .value
                    .as_slice()
                    .iter()
                    .all(|x| x.is_finite()),
            )
        } else {
            continue;
        };
        if !finite {
            return Err(IrError::NonFiniteWeights {
                layer: format!("L{i}"),
                kind: kind.to_string(),
            });
        }
    }
    let mut kept = 0.0f64;
    let mut total = 0.0f64;
    for conv in net.conv_layers_mut() {
        let n = conv.weight().value.len() as f64;
        kept += prune_conv(conv, config.conv_keep) * n;
        total += n;
    }
    for linear in net.linear_layers_mut() {
        let n = linear.weight().value.len() as f64;
        kept += prune_linear(linear, config.fc_keep) * n;
        total += n;
    }
    Ok(if total == 0.0 { 1.0 } else { kept / total })
}

/// Gradual pruning schedule: linearly interpolates the keep fraction from
/// 1.0 to the final target over `steps` pruning events, as in the iterative
/// "prune a little, retrain" loop of Deep Compression.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GradualSchedule {
    /// Final keep fraction.
    pub final_keep: f64,
    /// Number of pruning events.
    pub steps: usize,
}

impl GradualSchedule {
    /// Keep fraction at 0-based pruning step `i` (clamped at the target).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn keep_at(&self, i: usize) -> f64 {
        assert!(self.steps > 0, "schedule must have at least one step");
        let t = ((i + 1) as f64 / self.steps as f64).min(1.0);
        1.0 - t * (1.0 - self.final_keep)
    }
}

/// Iterative "prune a little, retrain a little" driver (paper Fig. 2's
/// step 2: "gradually prune the weights below a threshold"). Each round
/// tightens the keep fraction along a [`GradualSchedule`] and retrains to
/// let the surviving weights compensate.
pub struct GradualPruner {
    /// Conv-layer schedule.
    pub conv: GradualSchedule,
    /// FC-layer schedule.
    pub fc: GradualSchedule,
}

impl GradualPruner {
    /// Creates a pruner reaching the [`PruneConfig`] targets in `steps`
    /// rounds.
    pub fn new(target: &PruneConfig, steps: usize) -> Self {
        GradualPruner {
            conv: GradualSchedule {
                final_keep: target.conv_keep,
                steps,
            },
            fc: GradualSchedule {
                final_keep: target.fc_keep,
                steps,
            },
        }
    }

    /// Runs the full prune→retrain loop; `retrain` is invoked after every
    /// pruning event (given the 0-based round index) and is expected to
    /// train the network for a few epochs. Returns the per-round kept
    /// fractions (overall, conv+fc weighted).
    ///
    /// # Errors
    ///
    /// Propagates [`IrError::NonFiniteWeights`] from [`prune_network`] —
    /// retraining can blow weights up to NaN between rounds.
    pub fn run(
        &self,
        net: &mut crate::Network,
        mut retrain: impl FnMut(&mut crate::Network, usize),
    ) -> Result<Vec<f64>, IrError> {
        let steps = self.conv.steps.max(self.fc.steps);
        let mut history = Vec::with_capacity(steps);
        for round in 0..steps {
            let kept = prune_network(
                net,
                &PruneConfig {
                    conv_keep: self.conv.keep_at(round),
                    fc_keep: self.fc.keep_at(round),
                },
            )?;
            retrain(net, round);
            history.push(kept);
        }
        Ok(history)
    }
}

/// Per-layer pruning-sensitivity scan (how Deep Compression chooses its
/// per-layer rates): for each conv layer in isolation, sweep keep
/// fractions and record held-out accuracy, restoring the original weights
/// between probes.
///
/// Returns, per conv layer, the accuracy at each probed keep fraction.
pub fn sensitivity_scan(
    net: &mut Network,
    data: &crate::datasets::SyntheticImages,
    keep_fracs: &[f64],
    batch: usize,
) -> Vec<Vec<f64>> {
    let n_convs = net.conv_layers_mut().count();
    let mut results = Vec::with_capacity(n_convs);
    for layer_idx in 0..n_convs {
        let mut row = Vec::with_capacity(keep_fracs.len());
        for &keep in keep_fracs {
            // Save, prune this one layer, evaluate, restore.
            let (saved_value, saved_mask) = {
                let conv = net
                    .conv_layers_mut()
                    .nth(layer_idx)
                    .expect("layer index in range");
                (conv.weight().value.clone(), conv.weight().mask.clone())
            };
            {
                let conv = net
                    .conv_layers_mut()
                    .nth(layer_idx)
                    .expect("layer index in range");
                prune_conv(conv, keep);
            }
            row.push(crate::trainer::evaluate(net, data, batch));
            let conv = net
                .conv_layers_mut()
                .nth(layer_idx)
                .expect("layer index in range");
            conv.weight_mut().value = saved_value;
            conv.weight_mut().mask = saved_mask;
        }
        results.push(row);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centrosymmetric::centrosymmetrize_conv;
    use cscnn_rng::rngs::StdRng;
    use cscnn_rng::SeedableRng;
    use cscnn_sparse::centro;
    use cscnn_tensor::ConvSpec;

    #[test]
    fn threshold_keeps_requested_fraction() {
        let values: Vec<f32> = (1..=100).map(|x| x as f32).collect();
        let thr = magnitude_threshold(&values, 0.25);
        let kept = values.iter().filter(|v| v.abs() > thr).count();
        assert_eq!(kept, 25);
    }

    #[test]
    fn keep_all_and_keep_none_edge_cases() {
        let values = vec![1.0f32, -2.0, 3.0];
        assert_eq!(magnitude_threshold(&values, 1.0), -1.0);
        let thr0 = magnitude_threshold(&values, 0.0);
        assert!(values.iter().all(|v| v.abs() <= thr0));
    }

    #[test]
    fn pruned_centrosymmetric_layer_keeps_symmetric_mask() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new(&mut rng, 3, 4, ConvSpec::new(3, 3).with_padding(1));
        centrosymmetrize_conv(&mut conv);
        prune_conv(&mut conv, 0.4);
        // Both the weights and the mask must remain centrosymmetric.
        let w = conv.weight().value.as_slice();
        for slice in w.chunks(9) {
            assert!(centro::is_centrosymmetric(slice, 3, 3, 0.0));
        }
        let m = conv.weight().mask.as_ref().expect("mask installed");
        for slice in m.as_slice().chunks(9) {
            assert!(centro::is_centrosymmetric(slice, 3, 3, 0.0));
        }
    }

    #[test]
    fn achieved_keep_fraction_is_close_to_target() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(&mut rng, 8, 16, ConvSpec::new(3, 3));
        let achieved = prune_conv(&mut conv, 0.3);
        assert!((achieved - 0.3).abs() < 0.05, "achieved={achieved}");
    }

    #[test]
    fn prune_network_rejects_non_finite_weights() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut net = Network::new();
        net.push(Conv2d::new(&mut rng, 1, 2, ConvSpec::new(3, 3)));
        let conv = net.layer_mut(0).as_conv_mut().expect("conv layer");
        conv.weight_mut().value.as_mut_slice()[0] = f32::NAN;
        let err = prune_network(&mut net, &PruneConfig::default()).expect_err("NaN weight");
        assert!(matches!(err, IrError::NonFiniteWeights { .. }));
        assert!(err.to_string().contains("L0"));
    }

    #[test]
    fn gradual_pruner_converges_to_targets() {
        use crate::datasets::SyntheticImages;
        use crate::models;
        use crate::trainer::{TrainConfig, Trainer};
        let data = SyntheticImages::generate(1, 8, 8, 3, 40, 0.12, 71);
        let (train, test) = data.split(0.25);
        let mut net = models::tiny_cnn(1, 8, 8, 3, 71);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        });
        let _ = trainer.fit(&mut net, &train, &test);
        let pruner = GradualPruner::new(
            &PruneConfig {
                conv_keep: 0.4,
                fc_keep: 0.2,
            },
            3,
        );
        let mut rounds_seen = 0;
        let history = pruner
            .run(&mut net, |net, round| {
                assert_eq!(round, rounds_seen);
                rounds_seen += 1;
                let quick = Trainer::new(TrainConfig {
                    epochs: 1,
                    ..Default::default()
                });
                let _ = quick.fit(net, &train, &test);
            })
            .expect("finite weights");
        assert_eq!(history.len(), 3);
        // Kept fractions decrease round over round toward the target.
        assert!(history[0] > history[2]);
        let final_conv_kept = net
            .conv_layers_mut()
            .map(|c| c.weight().kept_fraction())
            .fold(0.0, f64::max);
        assert!(
            (final_conv_kept - 0.4).abs() < 0.08,
            "kept {final_conv_kept}"
        );
        // And the network still works.
        let acc = crate::trainer::evaluate(&mut net, &test, 16);
        assert!(acc > 0.3, "acc {acc}");
    }

    #[test]
    fn sensitivity_scan_is_monotone_and_non_destructive() {
        use crate::datasets::SyntheticImages;
        use crate::models;
        use crate::trainer::{evaluate, TrainConfig, Trainer};
        let data = SyntheticImages::generate(1, 8, 8, 3, 40, 0.12, 72);
        let (train, test) = data.split(0.25);
        let mut net = models::tiny_cnn(1, 8, 8, 3, 72);
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            ..Default::default()
        });
        let _ = trainer.fit(&mut net, &train, &test);
        let before = evaluate(&mut net, &test, 16);
        let curves = sensitivity_scan(&mut net, &test, &[1.0, 0.5, 0.1], 16);
        assert_eq!(curves.len(), 2, "one curve per conv layer");
        for curve in &curves {
            assert_eq!(curve.len(), 3);
            // keep=1.0 must match the unpruned accuracy.
            assert!((curve[0] - before).abs() < 1e-9);
            // Pruning to 10% hurts at least as much as to 50% (allowing
            // small non-monotonic noise).
            assert!(curve[2] <= curve[1] + 0.1);
        }
        // The scan must restore the network exactly.
        let after = evaluate(&mut net, &test, 16);
        assert!(
            (before - after).abs() < 1e-9,
            "scan must be non-destructive"
        );
    }

    #[test]
    fn gradual_schedule_interpolates_to_target() {
        let s = GradualSchedule {
            final_keep: 0.2,
            steps: 4,
        };
        assert!((s.keep_at(0) - 0.8).abs() < 1e-12);
        assert!((s.keep_at(3) - 0.2).abs() < 1e-12);
        assert!((s.keep_at(10) - 0.2).abs() < 1e-12, "clamps past the end");
        let mut prev = 1.0;
        for i in 0..4 {
            assert!(s.keep_at(i) < prev);
            prev = s.keep_at(i);
        }
    }
}
