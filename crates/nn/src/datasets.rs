//! Synthetic labeled image datasets.
//!
//! Offline substitution for MNIST/CIFAR (see DESIGN.md §2): each class is a
//! random low-frequency prototype pattern; samples are spatially jittered,
//! noisy instances of their class prototype. The task is easily learnable by
//! small CNNs (translation-tolerant local features), which is what the
//! paper's accuracy experiments require: a baseline that trains to high
//! accuracy, collapses under the Eq. 5 projection, and recovers with
//! retraining.

use cscnn_rng::rngs::StdRng;
use cscnn_rng::seq::SliceRandom;
use cscnn_rng::{Rng, SeedableRng};
use cscnn_tensor::Tensor;

/// An in-memory synthetic classification dataset of `[C, H, W]` images.
#[derive(Clone, Debug)]
pub struct SyntheticImages {
    channels: usize,
    height: usize,
    width: usize,
    classes: usize,
    /// Flattened images, `len = n * c * h * w`.
    data: Vec<f32>,
    labels: Vec<usize>,
}

impl SyntheticImages {
    /// Generates `per_class` jittered, noisy samples of each of `classes`
    /// random prototypes.
    ///
    /// `noise` is the Gaussian noise standard deviation (prototype values
    /// are roughly in `[-1, 1]`; `0.1`–`0.3` keeps the task learnable).
    ///
    /// # Panics
    ///
    /// Panics if any extent, `classes`, or `per_class` is zero.
    pub fn generate(
        channels: usize,
        height: usize,
        width: usize,
        classes: usize,
        per_class: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(
            channels > 0 && height > 2 && width > 2 && classes > 0 && per_class > 0,
            "degenerate dataset dimensions"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes: Vec<Vec<f32>> = (0..classes)
            .map(|_| prototype(&mut rng, channels, height, width))
            .collect();
        let plane = channels * height * width;
        let n = classes * per_class;
        let mut data = vec![0.0f32; n * plane];
        let mut labels = vec![0usize; n];
        for i in 0..n {
            let class = i % classes;
            labels[i] = class;
            let dy = rng.gen_range(-1i32..=1);
            let dx = rng.gen_range(-1i32..=1);
            let dst = &mut data[i * plane..(i + 1) * plane];
            let proto = &prototypes[class];
            for c in 0..channels {
                for y in 0..height {
                    for x in 0..width {
                        let sy = y as i32 + dy;
                        let sx = x as i32 + dx;
                        let v = if sy >= 0
                            && sx >= 0
                            && (sy as usize) < height
                            && (sx as usize) < width
                        {
                            proto[(c * height + sy as usize) * width + sx as usize]
                        } else {
                            0.0
                        };
                        dst[(c * height + y) * width + x] = v + noise * gaussian(&mut rng);
                    }
                }
            }
        }
        SyntheticImages {
            channels,
            height,
            width,
            classes,
            data,
            labels,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image shape as `(channels, height, width)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Assembles a batch tensor `[N, C, H, W]` plus labels for the given
    /// sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "empty batch");
        let plane = self.channels * self.height * self.width;
        let mut buf = Vec::with_capacity(indices.len() * plane);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            buf.extend_from_slice(&self.data[i * plane..(i + 1) * plane]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(
                buf,
                &[indices.len(), self.channels, self.height, self.width],
            ),
            labels,
        )
    }

    /// A shuffled permutation of all sample indices.
    pub fn shuffled_indices(&self, rng: &mut StdRng) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx
    }

    /// Splits into `(train, test)` with `test_fraction` of each class's
    /// samples moved to the test set.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not in `(0, 1)`.
    pub fn split(&self, test_fraction: f64) -> (SyntheticImages, SyntheticImages) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1)"
        );
        let plane = self.channels * self.height * self.width;
        let mut train = self.empty_like();
        let mut test = self.empty_like();
        let mut seen = vec![0usize; self.classes];
        let per_class = self.len() / self.classes;
        let test_per_class = ((per_class as f64) * test_fraction).ceil() as usize;
        for i in 0..self.len() {
            let class = self.labels[i];
            let dst = if seen[class] < test_per_class {
                &mut test
            } else {
                &mut train
            };
            seen[class] += 1;
            dst.data
                .extend_from_slice(&self.data[i * plane..(i + 1) * plane]);
            dst.labels.push(class);
        }
        (train, test)
    }

    /// Generates a 10-class digit-glyph dataset: seven-segment-style
    /// renderings of 0–9 on a `1×28×28` canvas with positional jitter,
    /// per-sample stroke-intensity variation, and Gaussian noise — the
    /// LeNet-5 proxy for the §II-B MNIST experiments.
    ///
    /// # Panics
    ///
    /// Panics if `per_class == 0`.
    pub fn digits(per_class: usize, noise: f32, seed: u64) -> Self {
        assert!(per_class > 0, "need at least one sample per class");
        let (h, w) = (28usize, 28usize);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd161);
        let n = 10 * per_class;
        let plane = h * w;
        let mut data = vec![0.0f32; n * plane];
        let mut labels = vec![0usize; n];
        for i in 0..n {
            let digit = i % 10;
            labels[i] = digit;
            let dy = rng.gen_range(-2i32..=2);
            let dx = rng.gen_range(-2i32..=2);
            let intensity = rng.gen_range(0.7..=1.0f32);
            let dst = &mut data[i * plane..(i + 1) * plane];
            for (sy, sx, sh, sw) in segments_of(digit) {
                for y in sy..sy + sh {
                    for x in sx..sx + sw {
                        let ty = y as i32 + dy;
                        let tx = x as i32 + dx;
                        if ty >= 0 && tx >= 0 && (ty as usize) < h && (tx as usize) < w {
                            dst[ty as usize * w + tx as usize] = intensity;
                        }
                    }
                }
            }
            for v in dst.iter_mut() {
                *v += noise * gaussian(&mut rng);
            }
        }
        SyntheticImages {
            channels: 1,
            height: h,
            width: w,
            classes: 10,
            data,
            labels,
        }
    }

    fn empty_like(&self) -> SyntheticImages {
        SyntheticImages {
            channels: self.channels,
            height: self.height,
            width: self.width,
            classes: self.classes,
            data: Vec::new(),
            labels: Vec::new(),
        }
    }
}

/// Seven-segment geometry on the 28×28 canvas: the active segments of each
/// digit as `(y, x, height, width)` rectangles.
fn segments_of(digit: usize) -> Vec<(usize, usize, usize, usize)> {
    // Segment layout (3px strokes over a 16x12 glyph at offset (6, 8)):
    //   0: top bar, 1: top-left, 2: top-right, 3: middle bar,
    //   4: bottom-left, 5: bottom-right, 6: bottom bar.
    const SEGS: [(usize, usize, usize, usize); 7] = [
        (6, 8, 3, 12),  // top
        (6, 8, 8, 3),   // top-left
        (6, 17, 8, 3),  // top-right
        (13, 8, 3, 12), // middle
        (13, 8, 8, 3),  // bottom-left
        (13, 17, 8, 3), // bottom-right
        (19, 8, 3, 12), // bottom
    ];
    const DIGIT_SEGS: [&[usize]; 10] = [
        &[0, 1, 2, 4, 5, 6],    // 0
        &[2, 5],                // 1
        &[0, 2, 3, 4, 6],       // 2
        &[0, 2, 3, 5, 6],       // 3
        &[1, 2, 3, 5],          // 4
        &[0, 1, 3, 5, 6],       // 5
        &[0, 1, 3, 4, 5, 6],    // 6
        &[0, 2, 5],             // 7
        &[0, 1, 2, 3, 4, 5, 6], // 8
        &[0, 1, 2, 3, 5, 6],    // 9
    ];
    DIGIT_SEGS[digit].iter().map(|&s| SEGS[s]).collect()
}

/// Random low-frequency prototype: a sum of a few 2-D sinusoids per channel.
fn prototype(rng: &mut StdRng, channels: usize, height: usize, width: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; channels * height * width];
    for c in 0..channels {
        for _ in 0..3 {
            let fy = rng.gen_range(0.5..1.5f32);
            let fx = rng.gen_range(0.5..1.5f32);
            let py = rng.gen_range(0.0..std::f32::consts::TAU);
            let px = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp = rng.gen_range(0.3..0.7f32);
            for y in 0..height {
                for x in 0..width {
                    let v = amp
                        * (fy * y as f32 * std::f32::consts::TAU / height as f32 + py).sin()
                        * (fx * x as f32 * std::f32::consts::TAU / width as f32 + px).sin();
                    out[(c * height + y) * width + x] += v;
                }
            }
        }
    }
    out
}

/// Box–Muller standard normal sample.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_balanced_labels() {
        let d = SyntheticImages::generate(1, 8, 8, 4, 10, 0.1, 1);
        assert_eq!(d.len(), 40);
        for class in 0..4 {
            let count = (0..d.len()).filter(|&i| d.label(i) == class).count();
            assert_eq!(count, 10);
        }
    }

    #[test]
    fn batch_shapes_and_labels_align() {
        let d = SyntheticImages::generate(3, 8, 8, 2, 5, 0.1, 2);
        let (x, y) = d.batch(&[0, 3, 7]);
        assert_eq!(x.shape().dims(), &[3, 3, 8, 8]);
        assert_eq!(y, vec![d.label(0), d.label(3), d.label(7)]);
    }

    #[test]
    fn same_seed_reproduces_dataset() {
        let a = SyntheticImages::generate(1, 8, 8, 3, 4, 0.2, 9);
        let b = SyntheticImages::generate(1, 8, 8, 3, 4, 0.2, 9);
        let (xa, _) = a.batch(&[0, 1]);
        let (xb, _) = b.batch(&[0, 1]);
        assert_eq!(xa.as_slice(), xb.as_slice());
    }

    #[test]
    fn split_is_class_balanced_and_disjoint_in_size() {
        let d = SyntheticImages::generate(1, 8, 8, 2, 10, 0.1, 3);
        let (train, test) = d.split(0.2);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 4); // 2 per class
    }

    #[test]
    fn digit_glyphs_are_learnable_and_distinct() {
        let d = SyntheticImages::digits(6, 0.05, 5);
        assert_eq!(d.classes(), 10);
        assert_eq!(d.image_shape(), (1, 28, 28));
        assert_eq!(d.len(), 60);
        // Distinct digits must differ: compare clean class exemplars by
        // their active pixel masses (8 has all segments, 1 only two).
        let (x, y) = d.batch(&(0..d.len()).collect::<Vec<_>>());
        let plane = 28 * 28;
        let mass = |i: usize| -> f32 {
            x.as_slice()[i * plane..(i + 1) * plane]
                .iter()
                .filter(|v| **v > 0.4)
                .count() as f32
        };
        let mut mass_by_class = vec![0.0f32; 10];
        let mut counts = [0usize; 10];
        for i in 0..d.len() {
            mass_by_class[y[i]] += mass(i);
            counts[y[i]] += 1;
        }
        for c in 0..10 {
            mass_by_class[c] /= counts[c] as f32;
        }
        assert!(
            mass_by_class[8] > 1.5 * mass_by_class[1],
            "8 has far more ink than 1: {mass_by_class:?}"
        );
    }

    #[test]
    fn lenet_learns_the_digit_glyphs() {
        use crate::models;
        use crate::trainer::{TrainConfig, Trainer};
        let data = SyntheticImages::digits(20, 0.12, 6);
        let (train, test) = data.split(0.2);
        let mut net = models::lenet5(10, 6);
        let report = Trainer::new(TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            ..Default::default()
        })
        .fit(&mut net, &train, &test);
        assert!(
            report.final_test_accuracy > 0.75,
            "LeNet should read the glyphs: {}",
            report.final_test_accuracy
        );
    }

    #[test]
    fn same_class_samples_are_more_similar_than_cross_class() {
        let d = SyntheticImages::generate(1, 12, 12, 2, 20, 0.05, 4);
        // Compare the first two same-class and cross-class pairs.
        let (x, y) = d.batch(&(0..d.len()).collect::<Vec<_>>());
        let plane = 144;
        let dist = |i: usize, j: usize| -> f32 {
            x.as_slice()[i * plane..(i + 1) * plane]
                .iter()
                .zip(&x.as_slice()[j * plane..(j + 1) * plane])
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        // Average same-class vs cross-class distance over several pairs.
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut ns = 0;
        let mut nc = 0;
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                if y[i] == y[j] {
                    same += dist(i, j);
                    ns += 1;
                } else {
                    cross += dist(i, j);
                    nc += 1;
                }
            }
        }
        assert!(same / (ns as f32) < cross / (nc as f32));
    }
}
