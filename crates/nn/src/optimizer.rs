//! SGD with momentum and the paper's step learning-rate schedule.

use cscnn_tensor::Tensor;

use crate::layers::Param;

/// Step learning-rate decay: the paper retrains CSCNN models for 30 epochs
/// with the learning rate decaying "by a factor of 5 every 5 epochs".
///
/// # Example
///
/// ```
/// use cscnn_nn::optimizer::LrSchedule;
///
/// let sched = LrSchedule::step(0.1, 5.0, 5);
/// assert!((sched.lr_at(0) - 0.1).abs() < 1e-9);
/// assert!((sched.lr_at(5) - 0.02).abs() < 1e-9);
/// assert!((sched.lr_at(10) - 0.004).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LrSchedule {
    initial: f32,
    decay_factor: f32,
    decay_every: usize,
}

impl LrSchedule {
    /// Constant learning rate.
    pub fn constant(lr: f32) -> Self {
        LrSchedule {
            initial: lr,
            decay_factor: 1.0,
            decay_every: usize::MAX,
        }
    }

    /// Decays the rate by `factor` every `every` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` or `every == 0`.
    pub fn step(initial: f32, factor: f32, every: usize) -> Self {
        assert!(factor >= 1.0, "decay factor must be >= 1");
        assert!(every > 0, "decay interval must be positive");
        LrSchedule {
            initial,
            decay_factor: factor,
            decay_every: every,
        }
    }

    /// Learning rate for a 0-based epoch index.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let steps = (epoch / self.decay_every) as i32;
        self.initial / self.decay_factor.powi(steps)
    }
}

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay.
///
/// Velocities are kept per parameter and identified positionally, so the
/// same parameter list (same order) must be passed to every [`Sgd::step`].
pub struct Sgd {
    momentum: f32,
    weight_decay: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is not in `[0, 1)` or `weight_decay < 0`.
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        assert!(weight_decay >= 0.0, "weight_decay must be non-negative");
        Sgd {
            momentum,
            weight_decay,
            velocities: Vec::new(),
        }
    }

    /// Applies one update: `v ← μ·v + (g + λ·w)`, `w ← w − lr·v`, then
    /// re-applies pruning masks so pruned weights stay zero.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list's shapes change between calls.
    pub fn step(&mut self, params: &mut [&mut Param], lr: f32) {
        if self.velocities.is_empty() {
            self.velocities = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().dims()))
                .collect();
        }
        assert_eq!(
            self.velocities.len(),
            params.len(),
            "parameter list changed between steps"
        );
        for (p, v) in params.iter_mut().zip(&mut self.velocities) {
            assert_eq!(v.shape(), p.value.shape(), "parameter shape changed");
            let vs = v.as_mut_slice();
            let ws = p.value.as_mut_slice();
            let gs = p.grad.as_slice();
            for i in 0..ws.len() {
                let g = gs[i] + self.weight_decay * ws[i];
                vs[i] = self.momentum * vs[i] + g;
                ws[i] -= lr * vs[i];
            }
            p.enforce_mask();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(vals: &[f32], grads: &[f32]) -> Param {
        let mut p = Param::new(Tensor::from_vec(vals.to_vec(), &[vals.len()]));
        p.grad = Tensor::from_vec(grads.to_vec(), &[grads.len()]);
        p
    }

    #[test]
    fn plain_sgd_descends_gradient() {
        let mut p = param(&[1.0, 2.0], &[0.5, -0.5]);
        let mut opt = Sgd::new(0.0, 0.0);
        opt.step(&mut [&mut p], 0.1);
        assert!((p.value.as_slice()[0] - 0.95).abs() < 1e-6);
        assert!((p.value.as_slice()[1] - 2.05).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = param(&[0.0], &[1.0]);
        let mut opt = Sgd::new(0.5, 0.0);
        opt.step(&mut [&mut p], 1.0); // v=1, w=-1
        p.grad = Tensor::from_vec(vec![1.0], &[1]);
        opt.step(&mut [&mut p], 1.0); // v=1.5, w=-2.5
        assert!((p.value.as_slice()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = param(&[10.0], &[0.0]);
        let mut opt = Sgd::new(0.0, 0.1);
        opt.step(&mut [&mut p], 1.0);
        assert!((p.value.as_slice()[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn masked_weights_stay_zero_through_updates() {
        let mut p = param(&[1.0, 1.0], &[1.0, 1.0]);
        p.mask = Some(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        p.enforce_mask();
        let mut opt = Sgd::new(0.9, 0.0);
        for _ in 0..5 {
            p.grad = Tensor::from_vec(vec![1.0, 1.0], &[2]);
            opt.step(&mut [&mut p], 0.1);
        }
        assert_eq!(p.value.as_slice()[1], 0.0);
        assert!(p.value.as_slice()[0] < 1.0);
    }

    #[test]
    fn schedule_matches_paper_configuration() {
        // 30 epochs, decay by 5 every 5 epochs.
        let s = LrSchedule::step(0.01, 5.0, 5);
        assert!((s.lr_at(4) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(29) - 0.01 / 5.0_f32.powi(5)).abs() < 1e-12);
        let c = LrSchedule::constant(0.1);
        assert_eq!(c.lr_at(0), c.lr_at(1000));
    }
}
