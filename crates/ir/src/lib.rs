#![warn(missing_docs)]

//! # cscnn-ir
//!
//! The typed layer/model intermediate representation that unifies the
//! repo's four historical layer descriptions (trainable `cscnn_nn` layers,
//! `cscnn_models::LayerDesc` geometry, `cscnn_sim::LayerWorkload` sparse
//! structure, and the old downcasting bridge in `cscnn`).
//!
//! A [`ModelIr`] is a DAG: an ordered list of [`LayerNode`]s — every layer
//! of a network, weight-bearing or not — each carrying exact geometry
//! ([`ConvGeom`]), grouping, the centrosymmetric flag, and an optional
//! measured [`SparsityAnnotation`] — plus a list of directed [`IrEdge`]s
//! wiring them together. An IR with no edges is an implicit linear chain
//! (the historical form, and what sequential networks lower to); residual
//! and branching networks carry explicit edges and the [`LayerNode::Add`] /
//! [`LayerNode::Concat`] join nodes, validated by [`ModelIr::validate`]
//! (the node list must be a topological order of the edges). Producers and
//! consumers are explicit lowering passes (see `docs/ir.md`):
//!
//! - `Network → Ir` — `cscnn_nn::Network::to_ir` via each layer's typed
//!   `Layer::describe`;
//! - `Ir → ModelDesc` — `cscnn_models::lower::to_model_desc` (geometry
//!   lowering: keeps the weight-bearing nodes);
//! - `Ir → LayerWorkload` — `cscnn_sim::LayerWorkload::from_node`
//!   (sparse-structure lowering, consumed by `Runner::run_ir`).
//!
//! Annotated IRs also have an on-disk form: the [`artifact`] module defines
//! the versioned JSON schema (serialize / parse / validate with typed
//! [`ArtifactError`]s naming the offending node and field) that ships
//! trained + annotated models to the simulator, and
//! [`ModelIr::structural_hash`] is the dedup key batched simulation uses to
//! synthesize workloads once per unique network structure
//! (`docs/batching.md`).
//!
//! This crate depends only on the std-only `cscnn-json` document model, so
//! every layer of the stack can speak IR without cycles.

pub mod artifact;

pub use artifact::{ArtifactError, MIN_SCHEMA_VERSION, SCHEMA_FORMAT, SCHEMA_VERSION};

use std::fmt;

/// Geometry of a (possibly grouped) 2-D convolution, in the paper's
/// notation: `C`/`K` input/output channels, `R×S` kernel, `H×W` *input*
/// spatial extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels (`C`).
    pub c: usize,
    /// Output channels (`K`).
    pub k: usize,
    /// Kernel height (`R`).
    pub r: usize,
    /// Kernel width (`S`).
    pub s: usize,
    /// Input feature-map height (`H`).
    pub h: usize,
    /// Input feature-map width (`W`).
    pub w: usize,
    /// Stride (both spatial dims).
    pub stride: usize,
    /// Zero padding (both spatial dims).
    pub padding: usize,
    /// Convolution groups (1 = dense conv; `c` = depthwise).
    pub groups: usize,
}

impl ConvGeom {
    /// Output spatial extent `(H', W')`.
    pub fn output_dim(&self) -> (usize, usize) {
        let ph = self.h + 2 * self.padding;
        let pw = self.w + 2 * self.padding;
        assert!(
            ph >= self.r && pw >= self.s,
            "padded input {ph}x{pw} smaller than kernel {}x{}",
            self.r,
            self.s
        );
        (
            (ph - self.r) / self.stride + 1,
            (pw - self.s) / self.stride + 1,
        )
    }

    /// Number of weights (grouping-aware): `K·(C/groups)·R·S`.
    pub fn weights(&self) -> u64 {
        (self.k * (self.c / self.groups) * self.r * self.s) as u64
    }

    /// Dense multiply count per inference: `weights · H'·W'`.
    pub fn dense_mults(&self) -> u64 {
        let (oh, ow) = self.output_dim();
        self.weights() * (oh * ow) as u64
    }

    /// Whether the centrosymmetric constraint applies (paper §II-A):
    /// unit stride and a multi-weight kernel.
    pub fn centro_eligible(&self) -> bool {
        self.stride == 1 && self.r * self.s > 1
    }
}

/// Measured per-layer sparsity, attached to weight-bearing nodes by the
/// trained-network bridge (densities in `[0, 1]`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SparsityAnnotation {
    /// Density of *stored* weights (over the unique half for layers
    /// trained under the centrosymmetric constraint).
    pub weight_density: f64,
    /// Density of the layer's input activations.
    pub activation_density: f64,
}

/// Pooling flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Elementwise activation flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
}

/// One layer of a model, typed.
///
/// Weight-bearing variants (`Conv`, `Depthwise`, `FullyConnected`) carry a
/// name, exact geometry and an optional measured [`SparsityAnnotation`];
/// the remaining variants describe the shape-preserving / shape-routing
/// layers the simulator does not time but the lowering passes must not
/// lose (they fix layer indices and activation provenance).
#[derive(Clone, Debug, PartialEq)]
pub enum LayerNode {
    /// Standard (possibly grouped, `groups < C`) 2-D convolution.
    Conv {
        /// Layer name (e.g. `"C1"`, `"L3"`).
        name: String,
        /// Convolution geometry.
        geom: ConvGeom,
        /// Whether the filters are centrosymmetric-constrained (Eq. 2).
        centrosymmetric: bool,
        /// Measured sparsity, when known.
        sparsity: Option<SparsityAnnotation>,
    },
    /// Depthwise convolution (`groups == C == K`).
    Depthwise {
        /// Layer name.
        name: String,
        /// Convolution geometry (`groups == c == k`).
        geom: ConvGeom,
        /// Whether the filters are centrosymmetric-constrained.
        centrosymmetric: bool,
        /// Measured sparsity, when known.
        sparsity: Option<SparsityAnnotation>,
    },
    /// Fully-connected layer (`inputs → outputs`).
    FullyConnected {
        /// Layer name.
        name: String,
        /// Input features.
        inputs: usize,
        /// Output features.
        outputs: usize,
        /// Measured sparsity, when known.
        sparsity: Option<SparsityAnnotation>,
    },
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Square window side.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Elementwise activation.
    Activation {
        /// Which activation.
        kind: ActivationKind,
    },
    /// `[N, ...] → [N, features]` reshape.
    Flatten,
    /// Channel-wise normalization (batch norm).
    Norm {
        /// Normalized channels.
        channels: usize,
    },
    /// Dropout (identity at inference).
    Dropout {
        /// Drop probability.
        p: f64,
    },
    /// Elementwise addition join (residual merge). Requires at least two
    /// in-edges in a DAG-shaped IR.
    Add {
        /// Join name (e.g. `"conv2_0_add"`).
        name: String,
    },
    /// Channel concatenation join (inception merge). Requires at least two
    /// in-edges in a DAG-shaped IR.
    Concat {
        /// Join name (e.g. `"inception_3a/concat"`).
        name: String,
    },
}

impl LayerNode {
    /// A standard convolution node.
    ///
    /// # Panics
    ///
    /// Panics on zero extents.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: &str,
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        h: usize,
        w: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self::grouped(name, c, k, r, s, h, w, stride, padding, 1)
    }

    /// A grouped convolution node. Infers the [`LayerNode::Depthwise`]
    /// variant when `groups == c == k > 1`.
    ///
    /// # Panics
    ///
    /// Panics on zero extents or indivisible groups.
    #[allow(clippy::too_many_arguments)]
    pub fn grouped(
        name: &str,
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        h: usize,
        w: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> Self {
        assert!(c > 0 && k > 0 && r > 0 && s > 0 && h > 0 && w > 0 && stride > 0 && groups > 0);
        assert!(
            c % groups == 0 && k % groups == 0,
            "channels must divide groups: c={c} k={k} groups={groups}"
        );
        let geom = ConvGeom {
            c,
            k,
            r,
            s,
            h,
            w,
            stride,
            padding,
            groups,
        };
        if groups == c && groups == k && groups > 1 {
            LayerNode::Depthwise {
                name: name.to_string(),
                geom,
                centrosymmetric: false,
                sparsity: None,
            }
        } else {
            LayerNode::Conv {
                name: name.to_string(),
                geom,
                centrosymmetric: false,
                sparsity: None,
            }
        }
    }

    /// A fully-connected node.
    ///
    /// # Panics
    ///
    /// Panics on zero extents.
    pub fn fc(name: &str, inputs: usize, outputs: usize) -> Self {
        assert!(inputs > 0 && outputs > 0);
        LayerNode::FullyConnected {
            name: name.to_string(),
            inputs,
            outputs,
            sparsity: None,
        }
    }

    /// An elementwise-addition join node (residual merge).
    pub fn add(name: &str) -> Self {
        LayerNode::Add {
            name: name.to_string(),
        }
    }

    /// A channel-concatenation join node (inception merge).
    pub fn concat(name: &str) -> Self {
        LayerNode::Concat {
            name: name.to_string(),
        }
    }

    /// Renames a named (weight-bearing or join) node — no-op on the
    /// anonymous shape-routing variants.
    #[must_use]
    pub fn with_name(mut self, new_name: &str) -> Self {
        match &mut self {
            LayerNode::Conv { name, .. }
            | LayerNode::Depthwise { name, .. }
            | LayerNode::FullyConnected { name, .. }
            | LayerNode::Add { name }
            | LayerNode::Concat { name } => *name = new_name.to_string(),
            _ => {}
        }
        self
    }

    /// Sets the centrosymmetric flag on a conv/depthwise node (no-op on
    /// the other variants).
    #[must_use]
    pub fn with_centrosymmetric(mut self, on: bool) -> Self {
        match &mut self {
            LayerNode::Conv {
                centrosymmetric, ..
            }
            | LayerNode::Depthwise {
                centrosymmetric, ..
            } => *centrosymmetric = on,
            _ => {}
        }
        self
    }

    /// Attaches a measured sparsity annotation to a weight-bearing node
    /// (no-op on the other variants).
    pub fn set_sparsity(&mut self, annotation: SparsityAnnotation) {
        match self {
            LayerNode::Conv { sparsity, .. }
            | LayerNode::Depthwise { sparsity, .. }
            | LayerNode::FullyConnected { sparsity, .. } => *sparsity = Some(annotation),
            _ => {}
        }
    }

    /// The node's name, for named (weight-bearing or join) variants.
    pub fn name(&self) -> Option<&str> {
        match self {
            LayerNode::Conv { name, .. }
            | LayerNode::Depthwise { name, .. }
            | LayerNode::FullyConnected { name, .. }
            | LayerNode::Add { name }
            | LayerNode::Concat { name } => Some(name),
            _ => None,
        }
    }

    /// The measured sparsity annotation, if any.
    pub fn sparsity(&self) -> Option<SparsityAnnotation> {
        match self {
            LayerNode::Conv { sparsity, .. }
            | LayerNode::Depthwise { sparsity, .. }
            | LayerNode::FullyConnected { sparsity, .. } => *sparsity,
            _ => None,
        }
    }

    /// Whether this node carries weights (and therefore lowers to a
    /// `LayerDesc` / `LayerWorkload`).
    pub fn is_weight_bearing(&self) -> bool {
        matches!(
            self,
            LayerNode::Conv { .. } | LayerNode::Depthwise { .. } | LayerNode::FullyConnected { .. }
        )
    }

    /// Whether this node is a multi-input join (`Add` / `Concat`), the
    /// only variants [`ModelIr::validate`] allows a fan-in above one.
    pub fn is_join(&self) -> bool {
        matches!(self, LayerNode::Add { .. } | LayerNode::Concat { .. })
    }

    /// A short kind label (`"conv"`, `"fc"`, `"pool"`, …).
    pub fn kind_label(&self) -> &'static str {
        match self {
            LayerNode::Conv { .. } => "conv",
            LayerNode::Depthwise { .. } => "depthwise",
            LayerNode::FullyConnected { .. } => "fc",
            LayerNode::Pool { .. } => "pool",
            LayerNode::Activation { .. } => "activation",
            LayerNode::Flatten => "flatten",
            LayerNode::Norm { .. } => "norm",
            LayerNode::Dropout { .. } => "dropout",
            LayerNode::Add { .. } => "add",
            LayerNode::Concat { .. } => "concat",
        }
    }
}

/// A directed edge between two nodes of a [`ModelIr`], by node index:
/// the activations produced by `from` feed `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrEdge {
    /// Producer node index.
    pub from: usize,
    /// Consumer node index.
    pub to: usize,
}

impl IrEdge {
    /// Creates an edge `from → to`.
    pub fn new(from: usize, to: usize) -> Self {
        IrEdge { from, to }
    }
}

/// A whole model in IR form: name plus every layer, in a topological
/// execution order, optionally wired into a DAG by explicit [`IrEdge`]s.
///
/// When `edges` is empty the IR is an *implicit linear chain* — node `i`
/// feeds node `i + 1` — which is the historical form and what sequential
/// networks lower to. A non-empty `edges` list makes the topology
/// explicit; [`ModelIr::validate`] checks it is a well-formed DAG whose
/// node list is a topological order.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ModelIr {
    /// Canonical model name.
    pub name: String,
    /// All layers, weight-bearing or not, in (topological) execution order.
    pub nodes: Vec<LayerNode>,
    /// Explicit dataflow edges; empty means the implicit linear chain.
    pub edges: Vec<IrEdge>,
}

impl ModelIr {
    /// Creates a linear-chain model IR (no explicit edges).
    pub fn new(name: &str, nodes: Vec<LayerNode>) -> Self {
        ModelIr {
            name: name.to_string(),
            nodes,
            edges: Vec::new(),
        }
    }

    /// Creates a DAG-shaped model IR with explicit edges. The result is
    /// not validated; call [`ModelIr::validate`] (the lowering passes and
    /// the artifact parser do).
    pub fn with_edges(name: &str, nodes: Vec<LayerNode>, edges: Vec<IrEdge>) -> Self {
        ModelIr {
            name: name.to_string(),
            nodes,
            edges,
        }
    }

    /// Whether this IR is an implicit linear chain (no explicit edges).
    pub fn is_linear(&self) -> bool {
        self.edges.is_empty()
    }

    /// The indices of the nodes feeding node `i` — edge sources in a
    /// DAG-shaped IR, or `i - 1` under the implicit linear chain.
    pub fn predecessors(&self, i: usize) -> Vec<usize> {
        if self.edges.is_empty() {
            if i == 0 {
                Vec::new()
            } else {
                vec![i - 1]
            }
        } else {
            self.edges
                .iter()
                .filter(|e| e.to == i)
                .map(|e| e.from)
                .collect()
        }
    }

    /// A human-readable label for node `i`: its name when it has one,
    /// otherwise `#i(kind)`.
    pub fn node_label(&self, i: usize) -> String {
        match self.nodes.get(i).and_then(LayerNode::name) {
            Some(name) => name.to_string(),
            None => format!(
                "#{i}({})",
                self.nodes.get(i).map_or("missing", LayerNode::kind_label)
            ),
        }
    }

    /// Validates the topology. An implicit linear chain is valid iff it
    /// contains no join nodes (joins need a fan-in of at least two). An
    /// explicit edge list must satisfy:
    ///
    /// - every edge endpoint is in bounds ([`TopologyError::DanglingEdge`]);
    /// - no edge is repeated ([`TopologyError::DuplicateEdge`]);
    /// - every edge points forward in the node list — the list is a
    ///   topological order. A backward edge is diagnosed precisely: if the
    ///   graph has a cycle the error names a node on it
    ///   ([`TopologyError::Cycle`]), otherwise the list is merely
    ///   mis-ordered ([`TopologyError::NotTopological`]);
    /// - join nodes (`Add`/`Concat`) have fan-in ≥ 2
    ///   ([`TopologyError::JoinUnderArity`]) and every other node has
    ///   fan-in ≤ 1 ([`TopologyError::FanInTooHigh`]).
    pub fn validate(&self) -> Result<(), TopologyError> {
        let n = self.nodes.len();
        if self.edges.is_empty() {
            // Implicit chain: fan-in is 1 everywhere past the input, so
            // any join node is under-fed.
            for (i, node) in self.nodes.iter().enumerate() {
                if node.is_join() {
                    return Err(TopologyError::JoinUnderArity {
                        node: i,
                        name: self.node_label(i),
                        fan_in: usize::from(i > 0),
                    });
                }
            }
            return Ok(());
        }

        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        let mut fan_in = vec![0usize; n];
        let mut backward = None;
        for (ei, e) in self.edges.iter().enumerate() {
            if e.from >= n || e.to >= n {
                return Err(TopologyError::DanglingEdge {
                    edge: ei,
                    from: e.from,
                    to: e.to,
                    nodes: n,
                });
            }
            if !seen.insert((e.from, e.to)) {
                return Err(TopologyError::DuplicateEdge {
                    edge: ei,
                    from: e.from,
                    to: e.to,
                });
            }
            if e.from >= e.to && backward.is_none() {
                backward = Some(ei);
            }
            fan_in[e.to] += 1;
        }

        if let Some(ei) = backward {
            // Distinguish a genuine cycle from a merely mis-ordered list
            // with Kahn's algorithm over the full edge set.
            let mut indeg = fan_in.clone();
            let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
            let mut processed = 0usize;
            while let Some(v) = ready.pop() {
                processed += 1;
                for e in &self.edges {
                    if e.from == v {
                        indeg[e.to] -= 1;
                        if indeg[e.to] == 0 {
                            ready.push(e.to);
                        }
                    }
                }
            }
            if processed < n {
                let node = (0..n)
                    .find(|&i| indeg[i] > 0)
                    .expect("some node remains on the cycle");
                return Err(TopologyError::Cycle {
                    node,
                    name: self.node_label(node),
                });
            }
            let e = self.edges[ei];
            return Err(TopologyError::NotTopological {
                edge: ei,
                from: e.from,
                to: e.to,
            });
        }

        for (i, node) in self.nodes.iter().enumerate() {
            if node.is_join() {
                if fan_in[i] < 2 {
                    return Err(TopologyError::JoinUnderArity {
                        node: i,
                        name: self.node_label(i),
                        fan_in: fan_in[i],
                    });
                }
            } else if fan_in[i] > 1 {
                return Err(TopologyError::FanInTooHigh {
                    node: i,
                    name: self.node_label(i),
                    fan_in: fan_in[i],
                });
            }
        }
        Ok(())
    }

    /// The weight-bearing nodes, in order.
    pub fn weight_nodes(&self) -> impl Iterator<Item = &LayerNode> {
        self.nodes.iter().filter(|n| n.is_weight_bearing())
    }

    /// Mutable view of the weight-bearing nodes, in order (used to attach
    /// measured sparsity annotations).
    pub fn weight_nodes_mut(&mut self) -> impl Iterator<Item = &mut LayerNode> {
        self.nodes.iter_mut().filter(|n| n.is_weight_bearing())
    }

    /// Number of weight-bearing nodes.
    pub fn num_weight_nodes(&self) -> usize {
        self.weight_nodes().count()
    }

    /// FNV-1a hash of the model's *structure*: node kinds, layer names,
    /// geometry, grouping, and centrosymmetric flags — excluding the model
    /// name and any [`SparsityAnnotation`]s.
    ///
    /// Two IRs with equal structural hashes describe the same network
    /// shape, so batched simulation can group requests that share workload
    /// geometry even when their measured densities differ
    /// (`docs/batching.md` documents the full dedup key).
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv::new();
        for node in &self.nodes {
            node.hash_structure(&mut h);
        }
        self.hash_topology(&mut h);
        h.0
    }

    /// Feeds the edge list into the hash stream, so two IRs with the same
    /// node multiset but different wiring (e.g. real skip edges vs a
    /// flattened chain) never share a structural or annotated hash.
    fn hash_topology(&self, h: &mut Fnv) {
        h.write(self.edges.len() as u64);
        for e in &self.edges {
            h.write(e.from as u64);
            h.write(e.to as u64);
        }
    }

    /// FNV-1a hash of the *annotated* model: the structural hash extended
    /// with the model name and the exact bits of every
    /// [`SparsityAnnotation`]. Equal annotated IRs hash equally; batched
    /// simulation uses this as the fast probe of its workload cache (with
    /// full `==` confirmation, so a collision can never alias two
    /// requests).
    pub fn annotated_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str(&self.name);
        for node in &self.nodes {
            node.hash_structure(&mut h);
            match node.sparsity() {
                Some(ann) => {
                    h.write(1);
                    h.write(ann.weight_density.to_bits());
                    h.write(ann.activation_density.to_bits());
                }
                None => h.write(0),
            }
        }
        self.hash_topology(&mut h);
        h.0
    }
}

/// Incremental [`ModelIr`] construction for DAG-shaped networks: push
/// nodes, get their indices back, and wire edges by index. `finish`
/// validates the topology so catalog authoring mistakes fail loudly.
#[derive(Debug, Default)]
pub struct IrBuilder {
    name: String,
    nodes: Vec<LayerNode>,
    edges: Vec<IrEdge>,
}

impl IrBuilder {
    /// Starts a builder for a model with the given name.
    pub fn new(name: &str) -> Self {
        IrBuilder {
            name: name.to_string(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Appends a node with no in-edges (a source until wired) and returns
    /// its index.
    pub fn push(&mut self, node: LayerNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Appends a node fed by every index in `preds` and returns its index.
    pub fn push_after(&mut self, node: LayerNode, preds: &[usize]) -> usize {
        let i = self.push(node);
        for &p in preds {
            self.edges.push(IrEdge::new(p, i));
        }
        i
    }

    /// Adds an explicit edge `from → to`.
    pub fn edge(&mut self, from: usize, to: usize) -> &mut Self {
        self.edges.push(IrEdge::new(from, to));
        self
    }

    /// Index of the most recently pushed node.
    ///
    /// # Panics
    ///
    /// Panics if no node has been pushed yet.
    pub fn last(&self) -> usize {
        assert!(!self.nodes.is_empty(), "no nodes pushed yet");
        self.nodes.len() - 1
    }

    /// Finishes the build, validating the topology.
    pub fn finish(self) -> Result<ModelIr, TopologyError> {
        let ir = ModelIr {
            name: self.name,
            nodes: self.nodes,
            edges: self.edges,
        };
        ir.validate()?;
        Ok(ir)
    }
}

/// A malformed [`ModelIr`] topology, diagnosed by [`ModelIr::validate`].
/// Every variant names the offending node or edge so corrupted artifacts
/// and authoring bugs are actionable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge endpoint is outside the node list.
    DanglingEdge {
        /// Index of the offending edge in `edges`.
        edge: usize,
        /// The edge's producer index.
        from: usize,
        /// The edge's consumer index.
        to: usize,
        /// Number of nodes in the IR.
        nodes: usize,
    },
    /// The same `from → to` edge appears twice.
    DuplicateEdge {
        /// Index of the second occurrence in `edges`.
        edge: usize,
        /// The edge's producer index.
        from: usize,
        /// The edge's consumer index.
        to: usize,
    },
    /// The graph contains a dependency cycle.
    Cycle {
        /// Index of a node on the cycle.
        node: usize,
        /// That node's label.
        name: String,
    },
    /// The graph is acyclic but the node list is not a topological order
    /// (an edge points backward in list order).
    NotTopological {
        /// Index of the offending edge in `edges`.
        edge: usize,
        /// The edge's producer index.
        from: usize,
        /// The edge's consumer index.
        to: usize,
    },
    /// An `Add`/`Concat` join has fewer than two in-edges.
    JoinUnderArity {
        /// Index of the join node.
        node: usize,
        /// The join's label.
        name: String,
        /// Its actual fan-in.
        fan_in: usize,
    },
    /// A non-join node has more than one in-edge.
    FanInTooHigh {
        /// Index of the node.
        node: usize,
        /// The node's label.
        name: String,
        /// Its actual fan-in.
        fan_in: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DanglingEdge {
                edge,
                from,
                to,
                nodes,
            } => write!(
                f,
                "edge {edge} ({from} -> {to}) dangles: model has {nodes} nodes"
            ),
            TopologyError::DuplicateEdge { edge, from, to } => {
                write!(f, "edge {edge} ({from} -> {to}) duplicates an earlier edge")
            }
            TopologyError::Cycle { node, name } => {
                write!(f, "dependency cycle through node {node} (`{name}`)")
            }
            TopologyError::NotTopological { edge, from, to } => write!(
                f,
                "edge {edge} ({from} -> {to}) points backward: node list is not a topological order"
            ),
            TopologyError::JoinUnderArity { node, name, fan_in } => write!(
                f,
                "join node {node} (`{name}`) has fan-in {fan_in}, needs at least 2"
            ),
            TopologyError::FanInTooHigh { node, name, fan_in } => write!(
                f,
                "node {node} (`{name}`) has fan-in {fan_in}, but only Add/Concat joins may merge"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Minimal FNV-1a accumulator for the structural/annotated hashes (kept
/// local so the dependency-light crate needs no `std::hash` plumbing and
/// the stream is stable across Rust versions).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x100000001b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        for byte in s.bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x100000001b3);
        }
        // Length terminator so "ab"+"c" and "a"+"bc" cannot collide.
        self.write(s.len() as u64);
    }
}

impl LayerNode {
    /// Feeds this node's structure (kind tag, layer name for weight-bearing
    /// nodes, geometry, centro flag) into the hash stream.
    fn hash_structure(&self, h: &mut Fnv) {
        let geom_into = |h: &mut Fnv, g: &ConvGeom| {
            for v in [g.c, g.k, g.r, g.s, g.h, g.w, g.stride, g.padding, g.groups] {
                h.write(v as u64);
            }
        };
        match self {
            LayerNode::Conv {
                name,
                geom,
                centrosymmetric,
                ..
            } => {
                h.write(1);
                h.write_str(name);
                geom_into(h, geom);
                h.write(u64::from(*centrosymmetric));
            }
            LayerNode::Depthwise {
                name,
                geom,
                centrosymmetric,
                ..
            } => {
                h.write(2);
                h.write_str(name);
                geom_into(h, geom);
                h.write(u64::from(*centrosymmetric));
            }
            LayerNode::FullyConnected {
                name,
                inputs,
                outputs,
                ..
            } => {
                h.write(3);
                h.write_str(name);
                h.write(*inputs as u64);
                h.write(*outputs as u64);
            }
            LayerNode::Pool {
                kind,
                window,
                stride,
            } => {
                h.write(4);
                h.write(match kind {
                    PoolKind::Max => 0,
                    PoolKind::Avg => 1,
                });
                h.write(*window as u64);
                h.write(*stride as u64);
            }
            LayerNode::Activation { kind } => {
                h.write(5);
                h.write(match kind {
                    ActivationKind::Relu => 0,
                });
            }
            LayerNode::Flatten => h.write(6),
            LayerNode::Norm { channels } => {
                h.write(7);
                h.write(*channels as u64);
            }
            LayerNode::Dropout { p } => {
                h.write(8);
                h.write(p.to_bits());
            }
            LayerNode::Add { name } => {
                h.write(9);
                h.write_str(name);
            }
            LayerNode::Concat { name } => {
                h.write(10);
                h.write_str(name);
            }
        }
    }
}

/// Why a layer could not be described as IR (returned by
/// `cscnn_nn::Layer::describe`; wrapped into [`IrError::UnsupportedLayer`]
/// by `Network::to_ir`, which knows the layer's index).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DescribeError {
    /// The layer kind that failed to describe itself.
    pub kind: &'static str,
    /// Why.
    pub reason: String,
}

impl DescribeError {
    /// Creates a describe error.
    pub fn new(kind: &'static str, reason: impl Into<String>) -> Self {
        DescribeError {
            kind,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DescribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} layer cannot be described: {}",
            self.kind, self.reason
        )
    }
}

impl std::error::Error for DescribeError {}

/// A model (or network) the IR passes cannot process. Every variant names
/// the offending layer so a failure in a deep stack is actionable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// The model has no weight-bearing layers to lower.
    EmptyModel {
        /// The model's name.
        model: String,
    },
    /// A layer could not be described as a typed [`LayerNode`].
    UnsupportedLayer {
        /// The offending layer (e.g. `"L3"`).
        layer: String,
        /// The layer's kind label.
        kind: String,
        /// Why it is unsupported.
        reason: String,
    },
    /// A layer's weights contain NaN/infinite values, which the
    /// compression walkers cannot threshold or project.
    NonFiniteWeights {
        /// The offending layer.
        layer: String,
        /// The layer's kind label.
        kind: String,
    },
    /// A conv layer has no spatial input extent to count over.
    MissingConvInput {
        /// The offending layer.
        layer: String,
    },
    /// The IR's graph topology is malformed (see [`TopologyError`]).
    BadTopology {
        /// The model's name.
        model: String,
        /// The underlying topology diagnosis, naming the node or edge.
        error: TopologyError,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyModel { model } => {
                write!(f, "model `{model}` has no weight-bearing layers")
            }
            IrError::UnsupportedLayer {
                layer,
                kind,
                reason,
            } => write!(f, "layer {layer} ({kind}): {reason}"),
            IrError::NonFiniteWeights { layer, kind } => {
                write!(f, "layer {layer} ({kind}) has non-finite weights")
            }
            IrError::MissingConvInput { layer } => {
                write!(f, "layer {layer}: no spatial input extent provided")
            }
            IrError::BadTopology { model, error } => {
                write!(f, "model `{model}`: {error}")
            }
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_constructor_infers_depthwise() {
        let dw = LayerNode::grouped("dw", 8, 8, 3, 3, 14, 14, 1, 1, 8);
        assert!(matches!(dw, LayerNode::Depthwise { .. }));
        let gc = LayerNode::grouped("gc", 8, 16, 3, 3, 14, 14, 1, 1, 2);
        assert!(matches!(gc, LayerNode::Conv { .. }));
        let pw = LayerNode::conv("pw", 8, 16, 1, 1, 14, 14, 1, 0);
        assert!(matches!(pw, LayerNode::Conv { .. }));
    }

    #[test]
    fn geometry_math_matches_paper_shapes() {
        let geom = ConvGeom {
            c: 64,
            k: 128,
            r: 3,
            s: 3,
            h: 56,
            w: 56,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        assert_eq!(geom.output_dim(), (56, 56));
        assert_eq!(geom.weights(), 128 * 64 * 9);
        assert_eq!(geom.dense_mults(), 128 * 64 * 9 * 56 * 56);
        assert!(geom.centro_eligible());
        let strided = ConvGeom { stride: 4, ..geom };
        assert!(!strided.centro_eligible());
    }

    #[test]
    fn annotations_attach_only_to_weight_nodes() {
        let mut ir = ModelIr::new(
            "m",
            vec![
                LayerNode::conv("c", 1, 4, 3, 3, 8, 8, 1, 1),
                LayerNode::Activation {
                    kind: ActivationKind::Relu,
                },
                LayerNode::fc("f", 16, 4),
            ],
        );
        assert_eq!(ir.num_weight_nodes(), 2);
        let ann = SparsityAnnotation {
            weight_density: 0.5,
            activation_density: 0.8,
        };
        for node in ir.weight_nodes_mut() {
            node.set_sparsity(ann);
        }
        assert!(ir.nodes[0].sparsity().is_some());
        assert!(ir.nodes[1].sparsity().is_none());
        let mut relu = ir.nodes[1].clone();
        relu.set_sparsity(ann);
        assert!(relu.sparsity().is_none(), "non-weight nodes stay bare");
    }

    #[test]
    fn with_name_and_centrosymmetric_are_noops_off_target() {
        let named = LayerNode::Flatten
            .with_name("L9")
            .with_centrosymmetric(true);
        assert_eq!(named, LayerNode::Flatten);
        let conv = LayerNode::conv("c", 1, 4, 3, 3, 8, 8, 1, 1)
            .with_name("L2")
            .with_centrosymmetric(true);
        assert_eq!(conv.name(), Some("L2"));
        assert!(matches!(
            conv,
            LayerNode::Conv {
                centrosymmetric: true,
                ..
            }
        ));
    }

    #[test]
    fn errors_name_the_offending_layer() {
        let e = IrError::UnsupportedLayer {
            layer: "L3".into(),
            kind: "custom".into(),
            reason: "no geometry".into(),
        };
        assert!(e.to_string().contains("L3"));
        let e = IrError::NonFiniteWeights {
            layer: "L1".into(),
            kind: "conv2d".into(),
        };
        assert!(e.to_string().contains("non-finite"));
        assert!(DescribeError::new("conv2d", "bad rank")
            .to_string()
            .contains("conv2d"));
    }

    #[test]
    #[should_panic(expected = "channels must divide groups")]
    fn grouped_rejects_indivisible_channels() {
        let _ = LayerNode::grouped("bad", 10, 10, 3, 3, 8, 8, 1, 1, 3);
    }

    #[test]
    fn structural_hash_ignores_annotations_and_model_name() {
        let nodes = vec![
            LayerNode::conv("c", 1, 4, 3, 3, 8, 8, 1, 1),
            LayerNode::fc("f", 16, 4),
        ];
        let bare = ModelIr::new("a", nodes.clone());
        let mut annotated = ModelIr::new("b", nodes);
        for node in annotated.weight_nodes_mut() {
            node.set_sparsity(SparsityAnnotation {
                weight_density: 0.5,
                activation_density: 0.8,
            });
        }
        assert_eq!(bare.structural_hash(), annotated.structural_hash());
        assert_ne!(bare.annotated_hash(), annotated.annotated_hash());
        // The annotated hash of equal IRs is equal (cache-probe soundness).
        assert_eq!(
            annotated.annotated_hash(),
            annotated.clone().annotated_hash()
        );
    }

    /// A minimal residual diamond: conv → (conv, identity) → add.
    fn diamond() -> ModelIr {
        let mut b = IrBuilder::new("diamond");
        let stem = b.push(LayerNode::conv("stem", 1, 4, 3, 3, 8, 8, 1, 1));
        let branch = b.push_after(LayerNode::conv("branch", 4, 4, 3, 3, 8, 8, 1, 1), &[stem]);
        let join = b.push_after(LayerNode::add("join"), &[branch]);
        b.edge(stem, join);
        b.finish().expect("valid diamond")
    }

    #[test]
    fn builder_wires_a_valid_diamond() {
        let ir = diamond();
        assert!(!ir.is_linear());
        assert_eq!(ir.predecessors(0), Vec::<usize>::new());
        assert_eq!(ir.predecessors(1), vec![0]);
        let mut preds = ir.predecessors(2);
        preds.sort_unstable();
        assert_eq!(preds, vec![0, 1]);
        assert_eq!(ir.node_label(2), "join");
    }

    #[test]
    fn linear_chains_validate_and_report_implicit_predecessors() {
        let ir = ModelIr::new(
            "chain",
            vec![
                LayerNode::conv("c", 1, 4, 3, 3, 8, 8, 1, 1),
                LayerNode::Flatten,
                LayerNode::fc("f", 144, 4),
            ],
        );
        assert!(ir.is_linear());
        ir.validate().expect("implicit chains are valid");
        assert_eq!(ir.predecessors(0), Vec::<usize>::new());
        assert_eq!(ir.predecessors(2), vec![1]);
        assert_eq!(ir.node_label(1), "#1(flatten)");
    }

    #[test]
    fn validate_rejects_malformed_topologies_naming_the_culprit() {
        let good = diamond();

        let mut dangling = good.clone();
        dangling.edges.push(IrEdge::new(1, 9));
        match dangling.validate().expect_err("edge out of bounds") {
            TopologyError::DanglingEdge { edge, to, .. } => {
                assert_eq!((edge, to), (3, 9));
            }
            other => panic!("expected dangling edge, got {other}"),
        }

        let mut duplicated = good.clone();
        duplicated.edges.push(IrEdge::new(0, 2));
        assert!(matches!(
            duplicated.validate().expect_err("repeated edge"),
            TopologyError::DuplicateEdge { from: 0, to: 2, .. }
        ));

        let mut cyclic = good.clone();
        cyclic.edges.push(IrEdge::new(2, 1));
        match cyclic.validate().expect_err("cycle") {
            TopologyError::Cycle { name, .. } => {
                assert!(
                    name == "branch" || name == "join",
                    "on-cycle node, got {name}"
                );
            }
            other => panic!("expected cycle, got {other}"),
        }

        // Swap two independent nodes so an edge points backward without
        // creating a cycle: the error must blame the ordering, not a cycle.
        let mut misordered = good.clone();
        misordered.nodes.swap(1, 2);
        for e in &mut misordered.edges {
            for end in [&mut e.from, &mut e.to] {
                *end = match *end {
                    1 => 2,
                    2 => 1,
                    v => v,
                };
            }
        }
        assert!(matches!(
            misordered.validate().expect_err("backward edge"),
            TopologyError::NotTopological { .. }
        ));

        let mut starved = good.clone();
        starved.edges.retain(|e| !(e.from == 0 && e.to == 2));
        match starved.validate().expect_err("join with one input") {
            TopologyError::JoinUnderArity { name, fan_in, .. } => {
                assert_eq!((name.as_str(), fan_in), ("join", 1));
            }
            other => panic!("expected join arity, got {other}"),
        }

        let mut b = IrBuilder::new("fanin");
        let a = b.push(LayerNode::conv("a", 1, 4, 3, 3, 8, 8, 1, 1));
        let c = b.push(LayerNode::conv("c", 1, 4, 3, 3, 8, 8, 1, 1));
        b.push_after(LayerNode::conv("sink", 4, 4, 3, 3, 8, 8, 1, 1), &[a, c]);
        assert!(matches!(
            b.finish().expect_err("non-join merge"),
            TopologyError::FanInTooHigh { fan_in: 2, .. }
        ));

        let with_join_in_chain = ModelIr::new(
            "chain",
            vec![
                LayerNode::conv("c", 1, 4, 3, 3, 8, 8, 1, 1),
                LayerNode::add("join"),
            ],
        );
        assert!(matches!(
            with_join_in_chain.validate().expect_err("join in chain"),
            TopologyError::JoinUnderArity { fan_in: 1, .. }
        ));
    }

    #[test]
    fn hashes_see_topology() {
        let wired = diamond();
        let flattened = ModelIr::new("diamond", wired.nodes.clone());
        assert_ne!(
            wired.structural_hash(),
            flattened.structural_hash(),
            "same node multiset, different wiring"
        );
        assert_ne!(wired.annotated_hash(), flattened.annotated_hash());

        let mut rewired = wired.clone();
        rewired.edges.swap(0, 1);
        assert_ne!(
            wired.structural_hash(),
            rewired.structural_hash(),
            "edge order is part of the identity"
        );
    }

    #[test]
    fn joins_are_named_but_not_weight_bearing() {
        let add = LayerNode::add("a").with_name("renamed");
        assert_eq!(add.name(), Some("renamed"));
        assert!(add.is_join());
        assert!(!add.is_weight_bearing());
        assert_eq!(add.kind_label(), "add");
        assert_eq!(LayerNode::concat("c").kind_label(), "concat");
        let mut concat = LayerNode::concat("c");
        concat.set_sparsity(SparsityAnnotation {
            weight_density: 0.5,
            activation_density: 0.5,
        });
        assert!(concat.sparsity().is_none(), "joins stay bare");
    }

    #[test]
    fn structural_hash_sees_geometry_and_centro_changes() {
        let base = ModelIr::new("m", vec![LayerNode::conv("c", 1, 4, 3, 3, 8, 8, 1, 1)]);
        let wider = ModelIr::new("m", vec![LayerNode::conv("c", 1, 8, 3, 3, 8, 8, 1, 1)]);
        let centro = ModelIr::new(
            "m",
            vec![LayerNode::conv("c", 1, 4, 3, 3, 8, 8, 1, 1).with_centrosymmetric(true)],
        );
        assert_ne!(base.structural_hash(), wider.structural_hash());
        assert_ne!(base.structural_hash(), centro.structural_hash());
    }
}
