//! On-disk JSON artifacts for annotated [`ModelIr`]s.
//!
//! A trained + annotated model travels to the simulator as a single JSON
//! document (the paper's "PyTorch extract" file, typed — see
//! `docs/batching.md` for the field-by-field schema):
//!
//! ```json
//! {
//!   "format": "cscnn-ir",
//!   "version": 2,
//!   "name": "ResNet-ish",
//!   "nodes": [
//!     {"kind": "conv", "name": "C1", "c": 1, "k": 6, "r": 5, "s": 5,
//!      "h": 28, "w": 28, "stride": 1, "padding": 2, "groups": 1,
//!      "centrosymmetric": true,
//!      "sparsity": {"weight_density": 0.4, "activation_density": 1.0}},
//!     {"kind": "conv", "name": "C2", "c": 6, "k": 6, "r": 3, "s": 3,
//!      "h": 28, "w": 28, "stride": 1, "padding": 1, "groups": 1,
//!      "centrosymmetric": false, "sparsity": null},
//!     {"kind": "add", "name": "C2_add"}
//!   ],
//!   "edges": [
//!     {"from": 0, "to": 1}, {"from": 1, "to": 2}, {"from": 0, "to": 2}
//!   ]
//! }
//! ```
//!
//! Schema version 2 adds DAG topology: the `edges` array and the `add` /
//! `concat` join node kinds. Version-1 artifacts (linear node lists, no
//! `edges`) still load — the upgrade is lossless because an absent edge
//! list *is* the implicit linear chain — while `edges` or join nodes in a
//! document declaring `"version": 1` are rejected.
//!
//! Serialization ([`ModelIr::to_json_string`] / [`ModelIr::to_json_pretty`])
//! cannot fail; parsing ([`ModelIr::from_json_str`]) is strict and returns
//! an [`ArtifactError`] naming the offending node and field, so a bad
//! artifact in a directory of thousands is actionable. A parsed artifact is
//! always *valid* IR: geometry extents are non-zero, groups divide
//! channels, depthwise nodes satisfy `groups == c == k`, densities lie in
//! `[0, 1]`, and the topology passes [`ModelIr::validate`] (in-bounds,
//! acyclic, topologically ordered, join arity respected).

use std::fmt;

use cscnn_json::Value;

use crate::{
    ActivationKind, ConvGeom, IrEdge, LayerNode, ModelIr, PoolKind, SparsityAnnotation,
    TopologyError,
};

/// The artifact schema version this crate writes (and the newest it reads).
pub const SCHEMA_VERSION: u64 = 2;

/// The oldest artifact schema version this crate still reads.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// The `format` tag every artifact carries.
pub const SCHEMA_FORMAT: &str = "cscnn-ir";

/// Why a JSON artifact could not be read back as a [`ModelIr`]. Node-level
/// variants name the offending node (by index, and by layer name when one
/// was parsed) and the offending field, so errors deep in a large artifact
/// are actionable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The document is not well-formed JSON.
    Syntax(cscnn_json::Error),
    /// A top-level field is missing, mistyped, or unsupported.
    Document {
        /// The offending top-level field (`"format"`, `"version"`, …).
        field: &'static str,
        /// Why it is rejected.
        reason: String,
    },
    /// A node entry is missing a field, carries a mistyped field, or fails
    /// validation.
    Node {
        /// Index of the offending node in `nodes` (execution order).
        index: usize,
        /// The node's layer name, when one was parsed before the failure.
        layer: Option<String>,
        /// The offending field (`"kind"`, `"geom.groups"`, …).
        field: &'static str,
        /// Why it is rejected.
        reason: String,
    },
    /// The document parsed but its graph topology is malformed (dangling
    /// or backward edge, cycle, bad join arity); the inner error names the
    /// offending node or edge.
    Topology(TopologyError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Syntax(e) => write!(f, "malformed JSON: {e}"),
            ArtifactError::Document { field, reason } => {
                write!(f, "artifact field `{field}`: {reason}")
            }
            ArtifactError::Node {
                index,
                layer,
                field,
                reason,
            } => match layer {
                Some(name) => {
                    write!(f, "node {index} (`{name}`), field `{field}`: {reason}")
                }
                None => write!(f, "node {index}, field `{field}`: {reason}"),
            },
            ArtifactError::Topology(e) => write!(f, "artifact topology: {e}"),
        }
    }
}

impl From<TopologyError> for ArtifactError {
    fn from(e: TopologyError) -> Self {
        ArtifactError::Topology(e)
    }
}

impl std::error::Error for ArtifactError {}

impl From<cscnn_json::Error> for ArtifactError {
    fn from(e: cscnn_json::Error) -> Self {
        ArtifactError::Syntax(e)
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

impl cscnn_json::ToJson for SparsityAnnotation {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("weight_density".into(), Value::F64(self.weight_density)),
            (
                "activation_density".into(),
                Value::F64(self.activation_density),
            ),
        ])
    }
}

fn geom_fields(geom: &ConvGeom, out: &mut Vec<(String, Value)>) {
    for (key, value) in [
        ("c", geom.c),
        ("k", geom.k),
        ("r", geom.r),
        ("s", geom.s),
        ("h", geom.h),
        ("w", geom.w),
        ("stride", geom.stride),
        ("padding", geom.padding),
        ("groups", geom.groups),
    ] {
        out.push((key.into(), Value::U64(value as u64)));
    }
}

impl cscnn_json::ToJson for LayerNode {
    fn to_json(&self) -> Value {
        let mut obj: Vec<(String, Value)> = Vec::new();
        let kind = |obj: &mut Vec<(String, Value)>, k: &str| {
            obj.push(("kind".into(), Value::Str(k.into())));
        };
        match self {
            LayerNode::Conv {
                name,
                geom,
                centrosymmetric,
                sparsity,
            }
            | LayerNode::Depthwise {
                name,
                geom,
                centrosymmetric,
                sparsity,
            } => {
                kind(
                    &mut obj,
                    if matches!(self, LayerNode::Conv { .. }) {
                        "conv"
                    } else {
                        "depthwise"
                    },
                );
                obj.push(("name".into(), Value::Str(name.clone())));
                geom_fields(geom, &mut obj);
                obj.push(("centrosymmetric".into(), Value::Bool(*centrosymmetric)));
                obj.push(("sparsity".into(), sparsity.to_json()));
            }
            LayerNode::FullyConnected {
                name,
                inputs,
                outputs,
                sparsity,
            } => {
                kind(&mut obj, "fc");
                obj.push(("name".into(), Value::Str(name.clone())));
                obj.push(("inputs".into(), Value::U64(*inputs as u64)));
                obj.push(("outputs".into(), Value::U64(*outputs as u64)));
                obj.push(("sparsity".into(), sparsity.to_json()));
            }
            LayerNode::Pool {
                kind: pool,
                window,
                stride,
            } => {
                kind(&mut obj, "pool");
                let label = match pool {
                    PoolKind::Max => "max",
                    PoolKind::Avg => "avg",
                };
                obj.push(("pool".into(), Value::Str(label.into())));
                obj.push(("window".into(), Value::U64(*window as u64)));
                obj.push(("stride".into(), Value::U64(*stride as u64)));
            }
            LayerNode::Activation { kind: act } => {
                kind(&mut obj, "activation");
                let label = match act {
                    ActivationKind::Relu => "relu",
                };
                obj.push(("activation".into(), Value::Str(label.into())));
            }
            LayerNode::Flatten => kind(&mut obj, "flatten"),
            LayerNode::Norm { channels } => {
                kind(&mut obj, "norm");
                obj.push(("channels".into(), Value::U64(*channels as u64)));
            }
            LayerNode::Dropout { p } => {
                kind(&mut obj, "dropout");
                obj.push(("p".into(), Value::F64(*p)));
            }
            LayerNode::Add { name } => {
                kind(&mut obj, "add");
                obj.push(("name".into(), Value::Str(name.clone())));
            }
            LayerNode::Concat { name } => {
                kind(&mut obj, "concat");
                obj.push(("name".into(), Value::Str(name.clone())));
            }
        }
        Value::Obj(obj)
    }
}

impl cscnn_json::ToJson for ModelIr {
    fn to_json(&self) -> Value {
        let mut obj = vec![
            ("format".into(), Value::Str(SCHEMA_FORMAT.into())),
            ("version".into(), Value::U64(SCHEMA_VERSION)),
            ("name".into(), Value::Str(self.name.clone())),
            (
                "nodes".into(),
                Value::Arr(self.nodes.iter().map(|n| n.to_json()).collect()),
            ),
        ];
        // An implicit linear chain carries no edge list — the absent field
        // round-trips to an empty `edges`, keeping v1-era linear artifacts
        // and their v2 re-serializations structurally identical.
        if !self.edges.is_empty() {
            obj.push((
                "edges".into(),
                Value::Arr(
                    self.edges
                        .iter()
                        .map(|e| {
                            Value::Obj(vec![
                                ("from".into(), Value::U64(e.from as u64)),
                                ("to".into(), Value::U64(e.to as u64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Value::Obj(obj)
    }
}

// ---------------------------------------------------------------------------
// Parsing + validation
// ---------------------------------------------------------------------------

/// Per-node parse cursor: accumulates the context every error must name.
struct NodeCx<'a> {
    index: usize,
    layer: Option<String>,
    obj: &'a Value,
}

impl NodeCx<'_> {
    fn err(&self, field: &'static str, reason: impl Into<String>) -> ArtifactError {
        ArtifactError::Node {
            index: self.index,
            layer: self.layer.clone(),
            field,
            reason: reason.into(),
        }
    }

    fn field(&self, field: &'static str) -> Result<&Value, ArtifactError> {
        self.obj
            .get(field)
            .ok_or_else(|| self.err(field, "missing"))
    }

    fn str_field(&self, field: &'static str) -> Result<String, ArtifactError> {
        self.field(field)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| self.err(field, "expected a string"))
    }

    fn usize_field(&self, field: &'static str) -> Result<usize, ArtifactError> {
        let n = self
            .field(field)?
            .as_u64()
            .ok_or_else(|| self.err(field, "expected a non-negative integer"))?;
        usize::try_from(n).map_err(|_| self.err(field, format!("{n} out of range")))
    }

    fn positive_field(&self, field: &'static str) -> Result<usize, ArtifactError> {
        let n = self.usize_field(field)?;
        if n == 0 {
            return Err(self.err(field, "must be non-zero"));
        }
        Ok(n)
    }

    fn bool_field(&self, field: &'static str) -> Result<bool, ArtifactError> {
        self.field(field)?
            .as_bool()
            .ok_or_else(|| self.err(field, "expected a boolean"))
    }

    fn f64_field(&self, field: &'static str) -> Result<f64, ArtifactError> {
        self.field(field)?
            .as_f64()
            .ok_or_else(|| self.err(field, "expected a number"))
    }

    fn density(&self, v: &Value, field: &'static str) -> Result<f64, ArtifactError> {
        let d = v
            .as_f64()
            .ok_or_else(|| self.err(field, "expected a number"))?;
        if !(0.0..=1.0).contains(&d) {
            return Err(self.err(field, format!("density {d} outside [0, 1]")));
        }
        Ok(d)
    }

    fn sparsity(&self) -> Result<Option<SparsityAnnotation>, ArtifactError> {
        let v = self.field("sparsity")?;
        if v.is_null() {
            return Ok(None);
        }
        let wd = v
            .get("weight_density")
            .ok_or_else(|| self.err("sparsity.weight_density", "missing"))?;
        let ad = v
            .get("activation_density")
            .ok_or_else(|| self.err("sparsity.activation_density", "missing"))?;
        Ok(Some(SparsityAnnotation {
            weight_density: self.density(wd, "sparsity.weight_density")?,
            activation_density: self.density(ad, "sparsity.activation_density")?,
        }))
    }

    fn geom(&self) -> Result<ConvGeom, ArtifactError> {
        let geom = ConvGeom {
            c: self.positive_field("c")?,
            k: self.positive_field("k")?,
            r: self.positive_field("r")?,
            s: self.positive_field("s")?,
            h: self.positive_field("h")?,
            w: self.positive_field("w")?,
            stride: self.positive_field("stride")?,
            padding: self.usize_field("padding")?,
            groups: self.positive_field("groups")?,
        };
        if geom.c % geom.groups != 0 || geom.k % geom.groups != 0 {
            return Err(self.err(
                "groups",
                format!(
                    "groups {} must divide channels (c={}, k={})",
                    geom.groups, geom.c, geom.k
                ),
            ));
        }
        if geom.h + 2 * geom.padding < geom.r || geom.w + 2 * geom.padding < geom.s {
            return Err(self.err(
                "r",
                format!(
                    "kernel {}x{} larger than padded input {}x{}",
                    geom.r,
                    geom.s,
                    geom.h + 2 * geom.padding,
                    geom.w + 2 * geom.padding
                ),
            ));
        }
        Ok(geom)
    }
}

fn parse_node(index: usize, obj: &Value) -> Result<LayerNode, ArtifactError> {
    let mut cx = NodeCx {
        index,
        layer: None,
        obj,
    };
    if obj.as_object().is_none() {
        return Err(cx.err("kind", "node is not a JSON object"));
    }
    let kind = cx.str_field("kind")?;
    // Weight-bearing and join nodes have a name; record it so later
    // errors name it.
    if matches!(
        kind.as_str(),
        "conv" | "depthwise" | "fc" | "add" | "concat"
    ) {
        cx.layer = Some(cx.str_field("name")?);
    }
    match kind.as_str() {
        "conv" | "depthwise" => {
            let geom = cx.geom()?;
            let depthwise = kind == "depthwise";
            if depthwise && !(geom.groups == geom.c && geom.groups == geom.k && geom.groups > 1) {
                return Err(cx.err(
                    "groups",
                    format!(
                        "depthwise requires groups == c == k > 1 (got groups={}, c={}, k={})",
                        geom.groups, geom.c, geom.k
                    ),
                ));
            }
            if !depthwise && geom.groups == geom.c && geom.groups == geom.k && geom.groups > 1 {
                return Err(cx.err(
                    "kind",
                    "groups == c == k > 1 must be declared `depthwise`, not `conv`",
                ));
            }
            let name = cx.layer.clone().unwrap_or_default();
            let centrosymmetric = cx.bool_field("centrosymmetric")?;
            let sparsity = cx.sparsity()?;
            Ok(if depthwise {
                LayerNode::Depthwise {
                    name,
                    geom,
                    centrosymmetric,
                    sparsity,
                }
            } else {
                LayerNode::Conv {
                    name,
                    geom,
                    centrosymmetric,
                    sparsity,
                }
            })
        }
        "fc" => Ok(LayerNode::FullyConnected {
            name: cx.layer.clone().unwrap_or_default(),
            inputs: cx.positive_field("inputs")?,
            outputs: cx.positive_field("outputs")?,
            sparsity: cx.sparsity()?,
        }),
        "pool" => {
            let pool = match cx.str_field("pool")?.as_str() {
                "max" => PoolKind::Max,
                "avg" => PoolKind::Avg,
                other => {
                    return Err(cx.err("pool", format!("unknown pool kind `{other}`")));
                }
            };
            Ok(LayerNode::Pool {
                kind: pool,
                window: cx.positive_field("window")?,
                stride: cx.positive_field("stride")?,
            })
        }
        "activation" => match cx.str_field("activation")?.as_str() {
            "relu" => Ok(LayerNode::Activation {
                kind: ActivationKind::Relu,
            }),
            other => Err(cx.err("activation", format!("unknown activation `{other}`"))),
        },
        "flatten" => Ok(LayerNode::Flatten),
        "norm" => Ok(LayerNode::Norm {
            channels: cx.positive_field("channels")?,
        }),
        "dropout" => {
            let p = cx.f64_field("p")?;
            if !(0.0..=1.0).contains(&p) {
                return Err(cx.err("p", format!("probability {p} outside [0, 1]")));
            }
            Ok(LayerNode::Dropout { p })
        }
        "add" => Ok(LayerNode::Add {
            name: cx.layer.clone().unwrap_or_default(),
        }),
        "concat" => Ok(LayerNode::Concat {
            name: cx.layer.clone().unwrap_or_default(),
        }),
        other => Err(cx.err("kind", format!("unknown node kind `{other}`"))),
    }
}

impl ModelIr {
    /// Serializes to the compact single-line artifact form.
    pub fn to_json_string(&self) -> String {
        cscnn_json::to_string(self).unwrap_or_default()
    }

    /// Serializes to the pretty (2-space indented) artifact form — the
    /// layout `sim_batch` and the docs use.
    pub fn to_json_pretty(&self) -> String {
        cscnn_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parses and validates an artifact document.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] naming the offending node and field: JSON syntax
    /// errors, missing/mistyped fields, unknown kinds, zero extents,
    /// indivisible groups, mis-declared depthwise nodes, and out-of-range
    /// densities are all rejected.
    pub fn from_json_str(text: &str) -> Result<Self, ArtifactError> {
        let doc: Value = cscnn_json::from_str(text)?;
        Self::from_json_value(&doc)
    }

    /// Like [`ModelIr::from_json_str`], but from an already-parsed
    /// [`Value`] (e.g. an artifact embedded in a larger report).
    ///
    /// # Errors
    ///
    /// See [`ModelIr::from_json_str`].
    pub fn from_json_value(doc: &Value) -> Result<Self, ArtifactError> {
        let doc_err = |field: &'static str, reason: &str| ArtifactError::Document {
            field,
            reason: reason.into(),
        };
        if doc.as_object().is_none() {
            return Err(doc_err("format", "artifact is not a JSON object"));
        }
        let format = doc
            .get("format")
            .and_then(Value::as_str)
            .ok_or_else(|| doc_err("format", "missing or not a string"))?;
        if format != SCHEMA_FORMAT {
            return Err(doc_err("format", &format!("expected `{SCHEMA_FORMAT}`")));
        }
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| doc_err("version", "missing or not an integer"))?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(ArtifactError::Document {
                field: "version",
                reason: format!(
                    "unsupported version {version} \
                     (this build reads {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
                ),
            });
        }
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| doc_err("name", "missing or not a string"))?;
        let nodes = doc
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or_else(|| doc_err("nodes", "missing or not an array"))?;
        let nodes = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| parse_node(i, n))
            .collect::<Result<Vec<_>, _>>()?;
        if version < 2 {
            // Joins and explicit edges are version-2 schema surface; a v1
            // document carrying them is corrupt, not merely old.
            if let Some(i) = nodes.iter().position(LayerNode::is_join) {
                return Err(ArtifactError::Node {
                    index: i,
                    layer: nodes[i].name().map(str::to_owned),
                    field: "kind",
                    reason: format!("`{}` joins require schema version 2", nodes[i].kind_label()),
                });
            }
            if doc.get("edges").is_some() {
                return Err(doc_err("edges", "explicit edges require schema version 2"));
            }
        }
        let edges = match doc.get("edges") {
            None => Vec::new(),
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or_else(|| doc_err("edges", "expected an array"))?;
                arr.iter()
                    .enumerate()
                    .map(|(i, e)| {
                        let endpoint = |key: &str| {
                            e.get(key).and_then(Value::as_u64).ok_or_else(|| {
                                ArtifactError::Document {
                                    field: "edges",
                                    reason: format!(
                                        "edge {i}: `{key}` missing or not a non-negative integer"
                                    ),
                                }
                            })
                        };
                        Ok(IrEdge::new(
                            endpoint("from")? as usize,
                            endpoint("to")? as usize,
                        ))
                    })
                    .collect::<Result<Vec<_>, ArtifactError>>()?
            }
        };
        let ir = ModelIr::with_edges(name, nodes, edges);
        ir.validate()?;
        Ok(ir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn annotated_ir() -> ModelIr {
        let mut ir = ModelIr::new(
            "m",
            vec![
                LayerNode::conv("C1", 3, 8, 3, 3, 16, 16, 1, 1).with_centrosymmetric(true),
                LayerNode::Pool {
                    kind: PoolKind::Max,
                    window: 2,
                    stride: 2,
                },
                LayerNode::Activation {
                    kind: ActivationKind::Relu,
                },
                LayerNode::grouped("DW", 8, 8, 3, 3, 8, 8, 1, 1, 8),
                LayerNode::Norm { channels: 8 },
                LayerNode::Dropout { p: 0.5 },
                LayerNode::Flatten,
                LayerNode::fc("F1", 512, 10),
            ],
        );
        for (i, node) in ir.weight_nodes_mut().enumerate() {
            node.set_sparsity(SparsityAnnotation {
                weight_density: 0.25 + 0.1 * i as f64,
                activation_density: 0.75,
            });
        }
        ir
    }

    #[test]
    fn round_trip_is_lossless_compact_and_pretty() {
        let ir = annotated_ir();
        assert_eq!(ModelIr::from_json_str(&ir.to_json_string()), Ok(ir.clone()));
        assert_eq!(ModelIr::from_json_str(&ir.to_json_pretty()), Ok(ir));
    }

    #[test]
    fn unannotated_nodes_serialize_as_null_sparsity() {
        let ir = ModelIr::new("m", vec![LayerNode::fc("F", 4, 2)]);
        let text = ir.to_json_string();
        assert!(text.contains("\"sparsity\":null"), "{text}");
        assert_eq!(ModelIr::from_json_str(&text), Ok(ir));
    }

    #[test]
    fn errors_name_node_and_field() {
        let mut bad = annotated_ir().to_json_string();
        bad = bad.replace("\"window\":2", "\"window\":0");
        let err = ModelIr::from_json_str(&bad).expect_err("zero window");
        assert_eq!(
            err,
            ArtifactError::Node {
                index: 1,
                layer: None,
                field: "window",
                reason: "must be non-zero".into(),
            }
        );
        assert!(err.to_string().contains("node 1"), "{err}");

        let mut bad = annotated_ir().to_json_string();
        bad = bad.replace("0.75", "1.75");
        let err = ModelIr::from_json_str(&bad).expect_err("density out of range");
        let ArtifactError::Node {
            layer: Some(layer),
            field,
            ..
        } = &err
        else {
            panic!("wrong variant: {err:?}");
        };
        assert_eq!(layer, "C1");
        assert_eq!(*field, "sparsity.activation_density");
        assert!(err.to_string().contains("C1"), "{err}");
    }

    #[test]
    fn document_level_errors_are_typed() {
        assert!(matches!(
            ModelIr::from_json_str("{nope"),
            Err(ArtifactError::Syntax(_))
        ));
        let err = ModelIr::from_json_str(r#"{"format":"other","version":1,"name":"m","nodes":[]}"#)
            .expect_err("wrong format");
        assert!(matches!(
            err,
            ArtifactError::Document {
                field: "format",
                ..
            }
        ));
        let err =
            ModelIr::from_json_str(r#"{"format":"cscnn-ir","version":99,"name":"m","nodes":[]}"#)
                .expect_err("future version");
        assert!(err.to_string().contains("99"), "{err}");
    }

    fn residual_ir() -> ModelIr {
        let mut b = crate::IrBuilder::new("res");
        let stem = b.push(LayerNode::conv("C1", 3, 8, 3, 3, 16, 16, 1, 1));
        let branch = b.push_after(LayerNode::conv("C2", 8, 8, 3, 3, 16, 16, 1, 1), &[stem]);
        let join = b.push_after(LayerNode::add("C2_add"), &[branch]);
        b.edge(stem, join);
        b.finish().expect("valid residual block")
    }

    #[test]
    fn dag_artifacts_round_trip_with_edges_and_joins() {
        let ir = residual_ir();
        for text in [ir.to_json_string(), ir.to_json_pretty()] {
            assert!(text.contains("\"edges\""), "{text}");
            assert!(text.contains("\"kind\":\"add\"") || text.contains("\"kind\": \"add\""));
            assert_eq!(ModelIr::from_json_str(&text), Ok(ir.clone()));
        }
        // Linear chains omit the edge list entirely.
        let linear = annotated_ir();
        assert!(!linear.to_json_string().contains("\"edges\""));
    }

    #[test]
    fn v1_artifacts_upgrade_losslessly_but_reject_v2_surface() {
        // A v1 document (what pre-DAG builds wrote) still loads, as the
        // implicit linear chain.
        let v1 = annotated_ir()
            .to_json_string()
            .replace("\"version\":2", "\"version\":1");
        let loaded = ModelIr::from_json_str(&v1).expect("v1 artifacts still load");
        assert_eq!(loaded, annotated_ir());
        assert!(loaded.is_linear());

        // But v2 surface under a v1 version tag is corruption, not age.
        let joined = residual_ir().to_json_string();
        let err = ModelIr::from_json_str(&joined.replace("\"version\":2", "\"version\":1"))
            .expect_err("joins need v2");
        assert!(err.to_string().contains("schema version 2"), "{err}");

        let edges_only = annotated_ir()
            .to_json_string()
            .replace("\"version\":2", "\"version\":1")
            .replace("\"nodes\":", "\"edges\":[],\"nodes\":");
        let err = ModelIr::from_json_str(&edges_only).expect_err("edges need v2");
        assert!(matches!(
            err,
            ArtifactError::Document { field: "edges", .. }
        ));
    }

    #[test]
    fn topology_errors_surface_through_the_parser() {
        let mut ir = residual_ir();
        ir.edges.push(crate::IrEdge::new(1, 99));
        let err = ModelIr::from_json_str(&ir.to_json_string()).expect_err("dangling edge");
        assert!(
            matches!(
                err,
                ArtifactError::Topology(TopologyError::DanglingEdge { to: 99, .. })
            ),
            "{err}"
        );
        assert!(err.to_string().contains("99"), "{err}");

        let mut ir = residual_ir();
        ir.edges.retain(|e| !(e.from == 0 && e.to == 2));
        let err = ModelIr::from_json_str(&ir.to_json_string()).expect_err("starved join");
        assert!(err.to_string().contains("C2_add"), "{err}");
    }

    #[test]
    fn depthwise_declaration_must_match_geometry() {
        let text = annotated_ir()
            .to_json_string()
            .replace("\"kind\":\"depthwise\"", "\"kind\":\"conv\"");
        let err = ModelIr::from_json_str(&text).expect_err("mis-declared depthwise");
        assert!(err.to_string().contains("depthwise"), "{err}");

        let text = annotated_ir().to_json_string().replacen(
            "\"kind\":\"conv\"",
            "\"kind\":\"depthwise\"",
            1,
        );
        let err = ModelIr::from_json_str(&text).expect_err("conv declared depthwise");
        assert!(err.to_string().contains("groups == c == k"), "{err}");
    }
}
