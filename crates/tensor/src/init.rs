//! Weight initialization schemes.

use cscnn_rng::Rng;

use crate::Tensor;

/// Uniform initialization in `[-bound, bound]`.
///
/// # Panics
///
/// Panics if `bound` is negative or not finite.
pub fn uniform<R: Rng>(rng: &mut R, dims: &[usize], bound: f32) -> Tensor {
    assert!(
        bound.is_finite() && bound >= 0.0,
        "bound must be finite and non-negative"
    );
    Tensor::from_fn(dims, |_| rng.gen_range(-bound..=bound))
}

/// Kaiming (He) uniform initialization for ReLU networks.
///
/// `fan_in` is the number of input connections per output unit (for a conv
/// filter: `C·R·S`).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(rng, dims, bound)
}

/// Xavier (Glorot) uniform initialization.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, dims, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_rng::rngs::StdRng;
    use cscnn_rng::SeedableRng;

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(&mut rng, &[100], 0.5);
        assert!(t.as_slice().iter().all(|x| x.abs() <= 0.5));
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(7);
        let wide = kaiming_uniform(&mut rng, &[1000], 9);
        let narrow = kaiming_uniform(&mut rng, &[1000], 900);
        assert!(wide.max() > narrow.max());
        assert!(narrow
            .as_slice()
            .iter()
            .all(|x| x.abs() <= (6.0f32 / 900.0).sqrt()));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = kaiming_uniform(&mut StdRng::seed_from_u64(42), &[3, 3], 9);
        let b = kaiming_uniform(&mut StdRng::seed_from_u64(42), &[3, 3], 9);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
