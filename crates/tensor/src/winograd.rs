//! Winograd fast convolution `F(2×2, 3×3)` (Lavin & Gray).
//!
//! The paper's related-work section (§VI-C) positions centrosymmetric reuse
//! against Winograd's algebraic reuse: Winograd computes a `3×3` unit-stride
//! convolution with 16 multiplications per `2×2` output tile (4 per output
//! vs the direct 9 — a 2.25× reduction), at the cost of transform adds and
//! incompatibility with weight sparsity. This implementation exists so the
//! reproduction can compare both reuse styles numerically and in
//! multiplication counts.

use crate::Tensor;

/// Multiplications per output element for a direct 3×3 convolution.
pub const DIRECT_MULTS_PER_OUTPUT: f64 = 9.0;
/// Multiplications per output element for Winograd `F(2×2, 3×3)`.
pub const WINOGRAD_MULTS_PER_OUTPUT: f64 = 4.0;

/// Transforms a 3×3 kernel slice to the 4×4 Winograd domain: `G g Gᵀ`.
fn transform_kernel(g: &[f32; 9]) -> [f32; 16] {
    // G = [[1,0,0],[0.5,0.5,0.5],[0.5,-0.5,0.5],[0,0,1]]
    let mut tmp = [0.0f32; 12]; // G·g : 4x3
    for col in 0..3 {
        let (a, b, c) = (g[col], g[3 + col], g[6 + col]);
        tmp[col] = a;
        tmp[3 + col] = 0.5 * (a + b + c);
        tmp[6 + col] = 0.5 * (a - b + c);
        tmp[9 + col] = c;
    }
    let mut out = [0.0f32; 16]; // (G·g)·Gᵀ : 4x4
    for row in 0..4 {
        let (a, b, c) = (tmp[row * 3], tmp[row * 3 + 1], tmp[row * 3 + 2]);
        out[row * 4] = a;
        out[row * 4 + 1] = 0.5 * (a + b + c);
        out[row * 4 + 2] = 0.5 * (a - b + c);
        out[row * 4 + 3] = c;
    }
    out
}

/// Transforms a 4×4 input tile to the Winograd domain: `Bᵀ d B`.
fn transform_input(d: &[f32; 16]) -> [f32; 16] {
    // Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]
    let mut tmp = [0.0f32; 16]; // Bᵀ·d
    for col in 0..4 {
        let (a, b, c, e) = (d[col], d[4 + col], d[8 + col], d[12 + col]);
        tmp[col] = a - c;
        tmp[4 + col] = b + c;
        tmp[8 + col] = c - b;
        tmp[12 + col] = b - e;
    }
    let mut out = [0.0f32; 16]; // (Bᵀ·d)·B
    for row in 0..4 {
        let (a, b, c, e) = (
            tmp[row * 4],
            tmp[row * 4 + 1],
            tmp[row * 4 + 2],
            tmp[row * 4 + 3],
        );
        out[row * 4] = a - c;
        out[row * 4 + 1] = b + c;
        out[row * 4 + 2] = c - b;
        out[row * 4 + 3] = b - e;
    }
    out
}

/// Maps a 4×4 Winograd-domain product back to the 2×2 output tile:
/// `Aᵀ m A`.
fn transform_output(m: &[f32; 16]) -> [f32; 4] {
    // Aᵀ = [[1,1,1,0],[0,1,-1,-1]]
    let mut tmp = [0.0f32; 8]; // Aᵀ·m : 2x4
    for col in 0..4 {
        let (a, b, c, e) = (m[col], m[4 + col], m[8 + col], m[12 + col]);
        tmp[col] = a + b + c;
        tmp[4 + col] = b - c - e;
    }
    let mut out = [0.0f32; 4]; // (Aᵀ·m)·A : 2x2
    for row in 0..2 {
        let (a, b, c, e) = (
            tmp[row * 4],
            tmp[row * 4 + 1],
            tmp[row * 4 + 2],
            tmp[row * 4 + 3],
        );
        out[row * 2] = a + b + c;
        out[row * 2 + 1] = b - c - e;
    }
    out
}

/// Winograd `F(2×2, 3×3)` convolution, numerically equivalent to
/// [`crate::conv2d`] with a `3×3` unit-stride spec.
///
/// Also returns the number of Winograd-domain multiplications performed
/// (4 per output element, vs 9 for direct convolution).
///
/// # Panics
///
/// Panics if `weight` is not `[K, C, 3, 3]` or the padded input's spatial
/// extent is not even (tiles are 2×2; pad to even extents).
pub fn winograd_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    padding: usize,
) -> (Tensor, u64) {
    let id = input.shape().dims();
    let (n, c, h, w) = (id[0], id[1], id[2], id[3]);
    let wd = weight.shape().dims();
    assert_eq!(&wd[2..], &[3, 3], "Winograd F(2x2,3x3) needs 3x3 kernels");
    assert_eq!(wd[1], c, "channel mismatch");
    let k = wd[0];
    let oh = h + 2 * padding - 2;
    let ow = w + 2 * padding - 2;
    assert!(
        oh.is_multiple_of(2) && ow.is_multiple_of(2),
        "output extent must be even for 2x2 tiling (got {oh}x{ow})"
    );
    // Pre-transform all kernels.
    let mut u = vec![[0.0f32; 16]; k * c];
    for ki in 0..k {
        for ci in 0..c {
            let base = (ki * c + ci) * 9;
            let mut g = [0.0f32; 9];
            g.copy_from_slice(&weight.as_slice()[base..base + 9]);
            u[ki * c + ci] = transform_kernel(&g);
        }
    }
    let src = input.as_slice();
    let mut out = Tensor::zeros(&[n, k, oh, ow]);
    let mut mults: u64 = 0;
    let pad = padding as isize;
    for ni in 0..n {
        for ty in (0..oh).step_by(2) {
            for tx in (0..ow).step_by(2) {
                // Winograd-domain accumulators per output channel.
                let mut m_acc = vec![[0.0f32; 16]; k];
                for ci in 0..c {
                    // Gather the 4x4 input tile (with zero padding).
                    let mut d = [0.0f32; 16];
                    for dy in 0..4 {
                        for dx in 0..4 {
                            let iy = ty as isize + dy as isize - pad;
                            let ix = tx as isize + dx as isize - pad;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                d[dy * 4 + dx] =
                                    src[((ni * c + ci) * h + iy as usize) * w + ix as usize];
                            }
                        }
                    }
                    let v = transform_input(&d);
                    for ki in 0..k {
                        let uk = &u[ki * c + ci];
                        let acc = &mut m_acc[ki];
                        for i in 0..16 {
                            acc[i] += uk[i] * v[i];
                        }
                        mults += 16;
                    }
                }
                for ki in 0..k {
                    let y = transform_output(&m_acc[ki]);
                    let b = bias.as_slice()[ki];
                    let dst = out.as_mut_slice();
                    for dy in 0..2 {
                        for dx in 0..2 {
                            dst[((ni * k + ki) * oh + ty + dy) * ow + tx + dx] = y[dy * 2 + dx] + b;
                        }
                    }
                }
            }
        }
    }
    (out, mults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conv2d, ConvSpec};

    fn seq(dims: &[usize], scale: f32) -> Tensor {
        Tensor::from_fn(dims, |i| ((i as f32) * scale).sin())
    }

    #[test]
    fn matches_direct_convolution_unpadded() {
        let input = seq(&[2, 3, 8, 8], 0.13);
        let weight = seq(&[4, 3, 3, 3], 0.29);
        let bias = seq(&[4], 0.7);
        let (wino, _) = winograd_conv2d(&input, &weight, &bias, 0);
        let direct = conv2d(&input, &weight, &bias, &ConvSpec::new(3, 3));
        assert_eq!(wino.shape(), direct.shape());
        for (a, b) in wino.as_slice().iter().zip(direct.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn matches_direct_convolution_padded() {
        let input = seq(&[1, 2, 6, 6], 0.17);
        let weight = seq(&[3, 2, 3, 3], 0.31);
        let bias = Tensor::zeros(&[3]);
        let (wino, _) = winograd_conv2d(&input, &weight, &bias, 1);
        let direct = conv2d(&input, &weight, &bias, &ConvSpec::new(3, 3).with_padding(1));
        for (a, b) in wino.as_slice().iter().zip(direct.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn multiplication_count_is_2_25x_lower() {
        let input = seq(&[1, 4, 10, 10], 0.11);
        let weight = seq(&[8, 4, 3, 3], 0.23);
        let bias = Tensor::zeros(&[8]);
        let (out, mults) = winograd_conv2d(&input, &weight, &bias, 0);
        let direct_mults = (out.len() * 4 * 9) as u64; // outputs × C × 9
        assert_eq!(mults * 9, direct_mults * 4, "exactly 2.25x fewer");
        let per_output = mults as f64 / (out.len() * 4) as f64;
        assert!((per_output - WINOGRAD_MULTS_PER_OUTPUT).abs() < 1e-9);
        let _ = DIRECT_MULTS_PER_OUTPUT;
    }

    #[test]
    #[should_panic(expected = "even for 2x2 tiling")]
    fn odd_output_extent_is_rejected() {
        let input = Tensor::zeros(&[1, 1, 7, 7]);
        let weight = Tensor::zeros(&[1, 1, 3, 3]);
        let bias = Tensor::zeros(&[1]);
        let _ = winograd_conv2d(&input, &weight, &bias, 0);
    }
}
