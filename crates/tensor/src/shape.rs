//! Tensor shapes and row-major stride arithmetic.

use std::fmt;

/// The extents of a tensor along each dimension, in row-major order.
///
/// `Shape` is a thin wrapper over a `Vec<usize>` that pre-computes row-major
/// strides and total element count so that index arithmetic in hot loops is
/// branch-free.
///
/// # Example
///
/// ```
/// use cscnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), &[12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
    len: usize,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// A zero-dimensional shape (`&[]`) describes a scalar with one element.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        let mut strides = vec![0usize; dims.len()];
        let mut acc = 1usize;
        for (stride, &dim) in strides.iter_mut().zip(dims.iter()).rev() {
            *stride = acc;
            let next = acc.checked_mul(dim);
            assert!(next.is_some(), "shape element count overflows usize");
            acc = next.unwrap_or(usize::MAX);
        }
        Shape {
            dims: dims.to_vec(),
            strides,
            len: acc,
        }
    }

    /// Total number of elements described by this shape.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` only for the (impossible) empty tensor; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extents along each dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (elements, not bytes).
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index rank mismatches or any
    /// coordinate is out of range.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &stride)) in index.iter().zip(self.strides.iter()).enumerate() {
            debug_assert!(ix < self.dims[i], "index {ix} out of range on axis {i}");
            off += ix * stride;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", parts.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), &[6, 2, 1]);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn offset_walks_in_row_major_order() {
        let s = Shape::new(&[2, 3]);
        let mut expected = 0usize;
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(s.offset(&[i, j]), expected);
                expected += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero-sized dimension")]
    fn zero_extent_rejected() {
        let _ = Shape::new(&[3, 0]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }
}
