//! Kernel thread-count configuration.
//!
//! The blocked kernels in [`crate::kernels`] parallelize over deterministic
//! row-block / task partitions in which every output element is produced by
//! exactly one thread with a fixed reduction order, so the thread count
//! affects wall-clock time only — results are **bit-identical** at any
//! setting (see `docs/kernels.md`).
//!
//! The count is resolved, in priority order, from:
//!
//! 1. an explicit in-process [`set_num_threads`] override,
//! 2. the `CSCNN_NUM_THREADS` environment variable (validated once: it must
//!    be an integer in `1..=MAX_THREADS`, anything else aborts with a clear
//!    message rather than being silently ignored),
//! 3. [`std::thread::available_parallelism`] (falling back to 1).
//!
//! `cscnn-sim`'s `BatchRunner` reads the same environment variable for its
//! simulation worker pool, so one knob sizes both halves of the system.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Upper bound on the configurable thread count. Far above any sensible
/// machine; it exists so a typo (`CSCNN_NUM_THREADS=10000`) is rejected
/// instead of spawning a thread flood.
pub const MAX_THREADS: usize = 512;

/// In-process override installed by [`set_num_threads`]; 0 means "none".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved environment/hardware default.
static DEFAULT: OnceLock<usize> = OnceLock::new();

/// Overrides the kernel thread count for this process.
///
/// Takes precedence over `CSCNN_NUM_THREADS` and the hardware default.
/// Because the kernels are bit-identical at every thread count, changing
/// this mid-run (even concurrently with running kernels) affects only
/// scheduling, never results.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds [`MAX_THREADS`].
pub fn set_num_threads(n: usize) {
    assert!(
        (1..=MAX_THREADS).contains(&n),
        "kernel thread count must be in 1..={MAX_THREADS}, got {n}"
    );
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// Removes any [`set_num_threads`] override, returning to the
/// environment/hardware default.
pub fn reset_num_threads() {
    OVERRIDE.store(0, Ordering::SeqCst);
}

/// The thread count the blocked kernels will use for their next dispatch.
///
/// # Panics
///
/// Panics (once, on first resolution) if `CSCNN_NUM_THREADS` is set to
/// anything other than an integer in `1..=MAX_THREADS`.
pub fn num_threads() -> usize {
    match OVERRIDE.load(Ordering::SeqCst) {
        0 => *DEFAULT.get_or_init(env_or_available),
        n => n,
    }
}

/// Resolves the default: validated `CSCNN_NUM_THREADS`, else the machine's
/// available parallelism.
fn env_or_available() -> usize {
    match std::env::var("CSCNN_NUM_THREADS") {
        Ok(raw) => {
            let parsed = raw
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|n| (1..=MAX_THREADS).contains(n));
            assert!(
                parsed.is_some(),
                "CSCNN_NUM_THREADS must be an integer in 1..={MAX_THREADS}, got `{raw}`"
            );
            parsed.unwrap_or(1)
        }
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_resets() {
        // Note: other tests in this binary may also touch the override;
        // every assertion here is about the override mechanics only.
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(1);
        assert_eq!(num_threads(), 1);
        reset_num_threads();
        assert!(num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "thread count must be in")]
    fn rejects_zero_threads() {
        set_num_threads(0);
    }

    #[test]
    #[should_panic(expected = "thread count must be in")]
    fn rejects_flood_threads() {
        set_num_threads(MAX_THREADS + 1);
    }
}
