//! Dense matrix multiplication kernels.
//!
//! Three variants cover every use in the NN stack without materializing
//! transposes: `A·B`, `Aᵀ·B` (weight gradients), and `A·Bᵀ` (input
//! gradients). All three dispatch to the cache-blocked, multithreaded
//! GEMM in [`crate::kernels`]; results are **bit-identical** to the naive
//! [`crate::reference`] kernels at any thread count (see `docs/kernels.md`
//! for the determinism contract).
//!
//! All variants apply the same sparsity short-circuit: products whose
//! left-operand element is exactly `0.0` are skipped, so pruned CSCNN
//! weight matrices multiply faster at identical results (for finite
//! inputs; a `0·∞`/`0·NaN` term is skipped rather than propagated).

use crate::kernels::{self, Lhs, Rhs};
use crate::Tensor;

/// `C = A · B` for row-major matrices.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use cscnn_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// let c = matmul(&a, &b);
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    if kernels::reference_mode() {
        return crate::reference::matmul(a, b);
    }
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    kernels::gemm(
        Lhs::RowMajor,
        Rhs::RowMajor,
        a.as_slice(),
        b.as_slice(),
        m,
        k,
        n,
        &mut out,
    );
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` without materializing `Aᵀ`.
///
/// `A` is `[k, m]`, `B` is `[k, n]`, result is `[m, n]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    if kernels::reference_mode() {
        return crate::reference::matmul_at(a, b);
    }
    let (k, m) = dims2(a, "matmul_at lhs");
    let (k2, n) = dims2(b, "matmul_at rhs");
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    kernels::gemm(
        Lhs::Transposed,
        Rhs::RowMajor,
        a.as_slice(),
        b.as_slice(),
        m,
        k,
        n,
        &mut out,
    );
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` without materializing `Bᵀ`.
///
/// `A` is `[m, k]`, `B` is `[n, k]`, result is `[m, n]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    if kernels::reference_mode() {
        return crate::reference::matmul_bt(a, b);
    }
    let (m, k) = dims2(a, "matmul_bt lhs");
    let (n, k2) = dims2(b, "matmul_bt rhs");
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    kernels::gemm(
        Lhs::RowMajor,
        Rhs::Transposed,
        a.as_slice(),
        b.as_slice(),
        m,
        k,
        n,
        &mut out,
    );
    Tensor::from_vec(out, &[m, n])
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "{what} must be rank 2, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

impl Tensor {
    /// Method form of [`matmul`].
    ///
    /// # Panics
    ///
    /// See [`matmul`].
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        matmul(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], s);
            }
        }
        out
    }

    fn seq(dims: &[usize]) -> Tensor {
        Tensor::from_fn(dims, |i| (i as f32 * 0.37).sin())
    }

    #[test]
    fn matches_naive_reference() {
        let a = seq(&[5, 7]);
        let b = seq(&[7, 3]);
        let got = matmul(&a, &b);
        let want = naive(&a, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_variants_agree_with_plain() {
        let a = seq(&[6, 4]);
        let b = seq(&[6, 5]);
        let via_at = matmul_at(&a, &b);
        let plain = matmul(&a.transpose(), &b);
        assert_eq!(via_at.shape().dims(), &[4, 5]);
        for (x, y) in via_at.as_slice().iter().zip(plain.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = seq(&[3, 4]);
        let d = seq(&[5, 4]);
        let via_bt = matmul_bt(&c, &d);
        let plain = matmul(&c, &d.transpose());
        for (x, y) in via_bt.as_slice().iter().zip(plain.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn all_variants_bit_match_naive_reference_oracle() {
        let a = seq(&[37, 45]);
        let b = seq(&[45, 29]);
        let (fast, slow) = (matmul(&a, &b), crate::reference::matmul(&a, &b));
        assert_eq!(bits(&fast), bits(&slow));

        let at = seq(&[45, 37]);
        let (fast, slow) = (matmul_at(&at, &b), crate::reference::matmul_at(&at, &b));
        assert_eq!(bits(&fast), bits(&slow));

        let bt = seq(&[29, 45]);
        let (fast, slow) = (matmul_bt(&a, &bt), crate::reference::matmul_bt(&a, &bt));
        assert_eq!(bits(&fast), bits(&slow));
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn zero_rows_are_skipped_identically_in_every_variant() {
        // A zero left-operand row must yield an exactly-zero output row in
        // all variants (the sparsity short-circuit contract).
        let mut a = seq(&[4, 6]);
        for v in &mut a.as_mut_slice()[6..12] {
            *v = 0.0;
        }
        let b = seq(&[6, 5]);
        let c = matmul(&a, &b);
        assert!(c.as_slice()[5..10].iter().all(|v| v.to_bits() == 0));
        let bt = seq(&[5, 6]);
        let c = matmul_bt(&a, &bt);
        assert!(c.as_slice()[5..10].iter().all(|v| v.to_bits() == 0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn rejects_mismatched_inner_dims() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
