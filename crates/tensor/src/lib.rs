#![warn(missing_docs)]

//! # cscnn-tensor
//!
//! A minimal, dependency-light N-dimensional `f32` tensor library providing
//! exactly the kernels the CSCNN reproduction needs: element-wise ops,
//! matrix multiplication, 2-D convolution (forward and backward, via im2col),
//! pooling, and weight initialization.
//!
//! Matmul and convolution run on the cache-blocked, multithreaded GEMM in
//! [`kernels`] (thread count via [`set_num_threads`] / `CSCNN_NUM_THREADS`),
//! with results **bit-identical** to the frozen naive kernels in
//! [`mod@reference`] at any thread count — see `docs/kernels.md`. Convolutions
//! share one im2col lowering between forward and backward through
//! [`ConvLowering`]/[`ConvScratch`].
//!
//! The library is deliberately *not* an autograd engine: each NN layer in
//! [`cscnn-nn`](../cscnn_nn/index.html) implements its own backward pass on
//! top of these kernels, mirroring how the paper's algorithmic contribution
//! (centrosymmetric gradient tying, Eq. 7) manipulates raw gradients.
//!
//! In the workspace's lowering chain (`Network`/`ModelDesc` → `ModelIr` →
//! `LayerWorkload` → simulation) this crate sits *below* the chain's entry
//! point: it supplies the numeric kernels `cscnn-nn` trains with and knows
//! nothing about the IR or the simulator.
//!
//! # Example
//!
//! ```
//! use cscnn_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

mod conv;
mod init;
pub mod kernels;
mod matmul;
mod ops;
mod pool;
pub mod reference;
mod shape;
mod tensor;
pub mod threads;
mod winograd;

pub use conv::{
    conv2d, conv2d_backward, conv2d_grouped, conv2d_grouped_backward, Conv2dGrads, ConvLowering,
    ConvScratch, ConvSpec,
};
pub use init::{kaiming_uniform, uniform, xavier_uniform};
pub use matmul::{matmul, matmul_at, matmul_bt};
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, PoolSpec};
pub use shape::Shape;
pub use tensor::Tensor;
pub use threads::{num_threads, reset_num_threads, set_num_threads, MAX_THREADS};
pub use winograd::{winograd_conv2d, DIRECT_MULTS_PER_OUTPUT, WINOGRAD_MULTS_PER_OUTPUT};
