//! Frozen naive reference kernels — the correctness oracle.
//!
//! These are the original triple-loop matmul and per-item im2col
//! convolution kernels that shipped before the blocked/multithreaded
//! [`crate::kernels`] layer existed. They are kept verbatim (modulo the
//! documented zero-skip fix below) as the oracle that the fast kernels are
//! **bit-identical** to: `tests/property_kernels.rs` compares the two
//! stacks with `f32::to_bits` equality across random shapes, strides,
//! paddings, groups and thread counts.
//!
//! They are also reachable at runtime via
//! [`crate::kernels::set_reference_mode`], which benches use to time the
//! seed implementation against the blocked one inside a single binary.
//!
//! # Zero-skip contract
//!
//! All three matmul variants skip products whose **left operand** element
//! is exactly `0.0` (the sparsity short-circuit that makes pruned CSCNN
//! weights cheaper). Historically [`matmul_bt`] lacked the skip; since
//! `acc + ±0.0` can never change a running sum that starts at `+0.0`, for
//! finite inputs the skip is a pure win and the variants now agree. The
//! blocked kernels implement the identical skip, which is what makes
//! zero-padded packing fringes free there.

use crate::{Conv2dGrads, ConvSpec, Tensor};

/// Naive `C = A · B` for row-major matrices (`i`,`p`,`j` loop order,
/// ascending-`p` accumulation, `a == 0.0` skip).
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let (av, bv) = (a.as_slice(), b.as_slice());
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &bv[p * n..(p + 1) * n];
            for (o, &b_pn) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pn;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Naive `C = Aᵀ · B` without materializing `Aᵀ`.
///
/// `A` is `[k, m]`, `B` is `[k, n]`, result is `[m, n]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at lhs");
    let (k2, n) = dims2(b, "matmul_at rhs");
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let (av, bv) = (a.as_slice(), b.as_slice());
    for p in 0..k {
        let a_row = &av[p * m..(p + 1) * m];
        let b_row = &bv[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pn) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pn;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Naive `C = A · Bᵀ` without materializing `Bᵀ`.
///
/// `A` is `[m, k]`, `B` is `[n, k]`, result is `[m, n]`. Applies the same
/// left-operand zero skip as the other variants (see the module docs).
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_bt lhs");
    let (n, k2) = dims2(b, "matmul_bt rhs");
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let (av, bv) = (a.as_slice(), b.as_slice());
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                if x == 0.0 {
                    continue;
                }
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "{what} must be rank 2, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

/// Lowers one batch item to a `[C·R·S, H'·W']` column matrix (allocating).
pub(crate) fn im2col(input: &Tensor, n: usize, spec: &ConvSpec) -> Tensor {
    let dims = input.shape().dims();
    let (c, h, w) = (dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_dim(h, w);
    let rows = c * spec.kernel_h * spec.kernel_w;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let src = input.as_slice();
    let base = n * c * h * w;
    let pad = spec.padding as isize;
    for ci in 0..c {
        for r in 0..spec.kernel_h {
            for s in 0..spec.kernel_w {
                let row = (ci * spec.kernel_h + r) * spec.kernel_w + s;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + r as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = base + (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + s as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = src[src_row + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Scatter-adds a `[C·R·S, H'·W']` column-gradient matrix back into image space.
fn col2im_add(col: &Tensor, grad: &mut Tensor, n: usize, spec: &ConvSpec) {
    let dims = grad.shape().dims();
    let (c, h, w) = (dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_dim(h, w);
    let cols = oh * ow;
    let src = col.as_slice();
    let base = n * c * h * w;
    let pad = spec.padding as isize;
    let dst = grad.as_mut_slice();
    for ci in 0..c {
        for r in 0..spec.kernel_h {
            for s in 0..spec.kernel_w {
                let row = (ci * spec.kernel_h + r) * spec.kernel_w + s;
                let src_row = &src[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + r as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = base + (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + s as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_row + ix as usize] += src_row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Naive forward 2-D convolution: per-item im2col (freshly allocated each
/// call) followed by [`matmul`].
///
/// # Panics
///
/// Panics if any shape is inconsistent with `spec`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
    let (n, c, h, w) = dims4(input, "conv2d input");
    let (k, wc, wr, ws) = dims4(weight, "conv2d weight");
    assert_eq!(c, wc, "channel mismatch: input C={c}, weight C={wc}");
    assert_eq!(
        (wr, ws),
        (spec.kernel_h, spec.kernel_w),
        "weight spatial dims disagree with spec"
    );
    assert_eq!(bias.len(), k, "bias length must equal K={k}");
    let (oh, ow) = spec.output_dim(h, w);
    let w_mat = weight.reshape(&[k, c * wr * ws]);
    let mut out = Tensor::zeros(&[n, k, oh, ow]);
    let bias_v = bias.as_slice();
    for ni in 0..n {
        let col = im2col(input, ni, spec);
        let res = matmul(&w_mat, &col); // [K, oh*ow]
        let dst = out.as_mut_slice();
        let base = ni * k * oh * ow;
        for ki in 0..k {
            let src = &res.as_slice()[ki * oh * ow..(ki + 1) * oh * ow];
            let b = bias_v[ki];
            for (d, &s) in dst[base + ki * oh * ow..base + (ki + 1) * oh * ow]
                .iter_mut()
                .zip(src)
            {
                *d = s + b;
            }
        }
    }
    out
}

/// Naive backward 2-D convolution. Re-lowers each batch item with im2col
/// (the redundancy [`crate::ConvScratch`] exists to remove) and reduces
/// `dW` per item in ascending batch order via `axpy`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
) -> Conv2dGrads {
    let (n, c, h, w) = dims4(input, "conv2d_backward input");
    let (k, _, wr, ws) = dims4(weight, "conv2d_backward weight");
    let (oh, ow) = spec.output_dim(h, w);
    assert_eq!(
        grad_out.shape().dims(),
        &[n, k, oh, ow],
        "grad_out shape mismatch"
    );
    let w_mat = weight.reshape(&[k, c * wr * ws]);
    let mut d_input = Tensor::zeros(&[n, c, h, w]);
    let mut d_weight = Tensor::zeros(&[k, c * wr * ws]);
    let mut d_bias = Tensor::zeros(&[k]);
    for ni in 0..n {
        let col = im2col(input, ni, spec);
        let go = Tensor::from_vec(
            grad_out.as_slice()[ni * k * oh * ow..(ni + 1) * k * oh * ow].to_vec(),
            &[k, oh * ow],
        );
        // dW += dOut · colᵀ
        d_weight.axpy(1.0, &matmul_bt(&go, &col));
        // dCol = Wᵀ · dOut, scattered back to image space.
        let d_col = matmul_at(&w_mat, &go);
        col2im_add(&d_col, &mut d_input, ni, spec);
        // dBias += row sums of dOut.
        for ki in 0..k {
            let s: f32 = go.as_slice()[ki * oh * ow..(ki + 1) * oh * ow].iter().sum();
            d_bias.as_mut_slice()[ki] += s;
        }
    }
    Conv2dGrads {
        input: d_input,
        weight: d_weight.reshape(&[k, c, wr, ws]),
        bias: d_bias,
    }
}

/// Copies `count` channels starting at `start` out of a `[N, C, H, W]`
/// tensor into a dense `[N, count, H, W]` tensor.
fn take_channels(t: &Tensor, start: usize, count: usize) -> Tensor {
    let (n, c, h, w) = dims4(t, "take_channels");
    assert!(start + count <= c, "channel slice out of range");
    let plane = h * w;
    let mut out = Tensor::zeros(&[n, count, h, w]);
    let src = t.as_slice();
    let dst = out.as_mut_slice();
    for ni in 0..n {
        let s0 = (ni * c + start) * plane;
        let d0 = ni * count * plane;
        dst[d0..d0 + count * plane].copy_from_slice(&src[s0..s0 + count * plane]);
    }
    out
}

/// Writes a `[N, count, H, W]` tensor into the channel window starting at
/// `start` of a `[N, C, H, W]` tensor (plain copy — groups are disjoint).
fn put_channels(dst_t: &mut Tensor, src_t: &Tensor, start: usize) {
    let (n, c, h, w) = dims4(dst_t, "put_channels dst");
    let (sn, count, sh, sw) = dims4(src_t, "put_channels src");
    assert!(sn == n && sh == h && sw == w, "spatial/batch mismatch");
    assert!(start + count <= c, "channel slice out of range");
    let plane = h * w;
    let src = src_t.as_slice();
    let dst = dst_t.as_mut_slice();
    for ni in 0..n {
        let d0 = (ni * c + start) * plane;
        let s0 = ni * count * plane;
        dst[d0..d0 + count * plane].copy_from_slice(&src[s0..s0 + count * plane]);
    }
}

/// Naive grouped forward convolution: a literal per-group loop of channel
/// slicing + [`conv2d`] (`groups == C` is depthwise).
///
/// # Panics
///
/// Panics if any shape is inconsistent with `spec` or `groups` does not
/// divide the channel counts.
pub fn conv2d_grouped(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &ConvSpec,
    groups: usize,
) -> Tensor {
    assert!(groups > 0, "groups must be positive");
    if groups == 1 {
        return conv2d(input, weight, bias, spec);
    }
    let (n, c, h, w) = dims4(input, "conv2d_grouped input");
    let (k, wc, wr, ws) = dims4(weight, "conv2d_grouped weight");
    assert!(
        c % groups == 0 && k % groups == 0,
        "groups={groups} must divide C={c} and K={k}"
    );
    let cg = c / groups;
    let kg = k / groups;
    assert_eq!(wc, cg, "weight C={wc} must be C/groups={cg}");
    assert_eq!(bias.len(), k, "bias length must equal K={k}");
    let (oh, ow) = spec.output_dim(h, w);
    let mut out = Tensor::zeros(&[n, k, oh, ow]);
    let slab = kg * cg * wr * ws;
    for g in 0..groups {
        let gi = take_channels(input, g * cg, cg);
        // Filters of one group are a contiguous [kg, cg, R, S] slab.
        let gw = Tensor::from_vec(
            weight.as_slice()[g * slab..(g + 1) * slab].to_vec(),
            &[kg, cg, wr, ws],
        );
        let gb = Tensor::from_vec(bias.as_slice()[g * kg..(g + 1) * kg].to_vec(), &[kg]);
        let go = conv2d(&gi, &gw, &gb, spec);
        put_channels(&mut out, &go, g * kg);
    }
    out
}

/// Naive grouped backward convolution: a literal per-group loop of channel
/// slicing + [`conv2d_backward`].
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn conv2d_grouped_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
    groups: usize,
) -> Conv2dGrads {
    assert!(groups > 0, "groups must be positive");
    if groups == 1 {
        return conv2d_backward(input, weight, grad_out, spec);
    }
    let (n, c, h, w) = dims4(input, "conv2d_grouped_backward input");
    let (k, wc, wr, ws) = dims4(weight, "conv2d_grouped_backward weight");
    assert!(
        c % groups == 0 && k % groups == 0,
        "groups={groups} must divide C={c} and K={k}"
    );
    let cg = c / groups;
    let kg = k / groups;
    assert_eq!(wc, cg, "weight C={wc} must be C/groups={cg}");
    let (oh, ow) = spec.output_dim(h, w);
    assert_eq!(
        grad_out.shape().dims(),
        &[n, k, oh, ow],
        "grad_out shape mismatch"
    );
    let mut d_input = Tensor::zeros(&[n, c, h, w]);
    let mut d_weight = Tensor::zeros(&[k, cg, wr, ws]);
    let mut d_bias = Tensor::zeros(&[k]);
    let slab = kg * cg * wr * ws;
    for g in 0..groups {
        let gi = take_channels(input, g * cg, cg);
        let gw = Tensor::from_vec(
            weight.as_slice()[g * slab..(g + 1) * slab].to_vec(),
            &[kg, cg, wr, ws],
        );
        let ggo = take_channels(grad_out, g * kg, kg);
        let grads = conv2d_backward(&gi, &gw, &ggo, spec);
        put_channels(&mut d_input, &grads.input, g * cg);
        d_weight.as_mut_slice()[g * slab..(g + 1) * slab].copy_from_slice(grads.weight.as_slice());
        d_bias.as_mut_slice()[g * kg..(g + 1) * kg].copy_from_slice(grads.bias.as_slice());
    }
    Conv2dGrads {
        input: d_input,
        weight: d_weight,
        bias: d_bias,
    }
}

fn dims4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().rank(),
        4,
        "{what} must be rank 4, got {}",
        t.shape()
    );
    let d = t.shape().dims();
    (d[0], d[1], d[2], d[3])
}
