//! 2-D max and average pooling, forward and backward.

use crate::Tensor;

/// Pooling window geometry.
///
/// # Example
///
/// ```
/// use cscnn_tensor::PoolSpec;
///
/// let p = PoolSpec::new(2); // 2x2 window, stride 2
/// assert_eq!(p.output_dim(8, 8), (4, 4));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolSpec {
    /// Square window side.
    pub window: usize,
    /// Stride (defaults to the window side — non-overlapping pooling).
    pub stride: usize,
}

impl PoolSpec {
    /// Non-overlapping pooling with a square `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        PoolSpec {
            window,
            stride: window,
        }
    }

    /// Overrides the stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "pool stride must be positive");
        self.stride = stride;
        self
    }

    /// Output spatial extent for an `(h, w)` input.
    pub fn output_dim(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.window && w >= self.window,
            "input smaller than window"
        );
        (
            (h - self.window) / self.stride + 1,
            (w - self.window) / self.stride + 1,
        )
    }
}

/// Max pooling over `[N, C, H, W]`; also returns the argmax index map used by
/// the backward pass.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or is smaller than the window.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> (Tensor, Vec<usize>) {
    let d = input.shape().dims();
    assert_eq!(d.len(), 4, "max_pool2d expects [N,C,H,W]");
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (oh, ow) = spec.output_dim(h, w);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    let mut o = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..spec.window {
                        for dx in 0..spec.window {
                            let idx = plane + (oy * spec.stride + dy) * w + ox * spec.stride + dx;
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    dst[o] = best;
                    argmax[o] = best_idx;
                    o += 1;
                }
            }
        }
    }
    (out, argmax)
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// position recorded in `argmax`.
///
/// # Panics
///
/// Panics if `grad_out.len() != argmax.len()`.
pub fn max_pool2d_backward(grad_out: &Tensor, argmax: &[usize], input_dims: &[usize]) -> Tensor {
    assert_eq!(grad_out.len(), argmax.len(), "grad/argmax length mismatch");
    let mut grad_in = Tensor::zeros(input_dims);
    let dst = grad_in.as_mut_slice();
    for (&g, &idx) in grad_out.as_slice().iter().zip(argmax) {
        dst[idx] += g;
    }
    grad_in
}

/// Average pooling over `[N, C, H, W]`.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or is smaller than the window.
pub fn avg_pool2d(input: &Tensor, spec: &PoolSpec) -> Tensor {
    let d = input.shape().dims();
    assert_eq!(d.len(), 4, "avg_pool2d expects [N,C,H,W]");
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (oh, ow) = spec.output_dim(h, w);
    let inv = 1.0 / (spec.window * spec.window) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    let mut o = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for dy in 0..spec.window {
                        for dx in 0..spec.window {
                            acc += src[plane + (oy * spec.stride + dy) * w + ox * spec.stride + dx];
                        }
                    }
                    dst[o] = acc * inv;
                    o += 1;
                }
            }
        }
    }
    out
}

/// Backward pass of [`avg_pool2d`].
///
/// # Panics
///
/// Panics if `grad_out`'s shape is inconsistent with `input_dims` and `spec`.
pub fn avg_pool2d_backward(grad_out: &Tensor, input_dims: &[usize], spec: &PoolSpec) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = spec.output_dim(h, w);
    assert_eq!(
        grad_out.shape().dims(),
        &[n, c, oh, ow],
        "grad_out shape mismatch"
    );
    let inv = 1.0 / (spec.window * spec.window) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let src = grad_out.as_slice();
    let dst = grad_in.as_mut_slice();
    let mut o = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = src[o] * inv;
                    o += 1;
                    for dy in 0..spec.window {
                        for dx in 0..spec.window {
                            dst[plane + (oy * spec.stride + dy) * w + ox * spec.stride + dx] += g;
                        }
                    }
                }
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maxima() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, 9.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        );
        let (out, argmax) = max_pool2d(&input, &PoolSpec::new(2));
        assert_eq!(out.as_slice(), &[4.0, 8.0, 9.0, 0.75]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let (out, argmax) = max_pool2d(&input, &PoolSpec::new(2));
        let go = Tensor::full(out.shape().dims(), 2.0);
        let gi = max_pool2d_backward(&go, &argmax, &[1, 1, 4, 4]);
        // Maxima are bottom-right of each window: indices 5, 7, 13, 15.
        let mut expect = [0.0f32; 16];
        for idx in [5usize, 7, 13, 15] {
            expect[idx] = 2.0;
        }
        assert_eq!(gi.as_slice(), &expect[..]);
    }

    #[test]
    fn avg_pool_round_trip_gradient_is_uniform() {
        let input = Tensor::from_fn(&[2, 3, 4, 4], |i| (i as f32).cos());
        let spec = PoolSpec::new(2);
        let out = avg_pool2d(&input, &spec);
        assert_eq!(out.shape().dims(), &[2, 3, 2, 2]);
        let go = Tensor::full(out.shape().dims(), 1.0);
        let gi = avg_pool2d_backward(&go, &[2, 3, 4, 4], &spec);
        for &g in gi.as_slice() {
            assert!((g - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn overlapping_pooling_dimension_math() {
        // AlexNet-style 3x3 stride-2 pooling.
        let spec = PoolSpec::new(3).with_stride(2);
        assert_eq!(spec.output_dim(55, 55), (27, 27));
    }
}
