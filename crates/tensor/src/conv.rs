//! 2-D convolution, forward and backward, via im2col.
//!
//! Tensor layouts follow the paper's notation (§II-A): inputs are
//! `[N, C, H, W]`, filters are `[K, C, R, S]`, outputs are `[N, K, H', W']`.

use crate::{matmul, matmul_at, matmul_bt, Tensor};

/// Static description of a convolution: filter geometry, stride and padding.
///
/// # Example
///
/// ```
/// use cscnn_tensor::ConvSpec;
///
/// let spec = ConvSpec::new(3, 3).with_stride(1).with_padding(1);
/// assert_eq!(spec.output_dim(32, 32), (32, 32)); // "same" convolution
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Filter height (`R` in the paper).
    pub kernel_h: usize,
    /// Filter width (`S` in the paper).
    pub kernel_w: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every spatial border.
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a unit-stride, unpadded convolution spec.
    ///
    /// # Panics
    ///
    /// Panics if either kernel extent is zero.
    pub fn new(kernel_h: usize, kernel_w: usize) -> Self {
        assert!(
            kernel_h > 0 && kernel_w > 0,
            "kernel extents must be positive"
        );
        ConvSpec {
            kernel_h,
            kernel_w,
            stride: 1,
            padding: 0,
        }
    }

    /// Sets the stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Sets the zero padding.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Output spatial extent for an `(h, w)` input.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_dim(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel_h && pw >= self.kernel_w,
            "input {h}x{w} (+pad {}) smaller than kernel {}x{}",
            self.padding,
            self.kernel_h,
            self.kernel_w
        );
        (
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        )
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the layer input, `[N, C, H, W]`.
    pub input: Tensor,
    /// Gradient w.r.t. the filters, `[K, C, R, S]`.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, `[K]`.
    pub bias: Tensor,
}

/// Lowers one batch item to a `[C·R·S, H'·W']` column matrix.
fn im2col(input: &Tensor, n: usize, spec: &ConvSpec) -> Tensor {
    let dims = input.shape().dims();
    let (c, h, w) = (dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_dim(h, w);
    let rows = c * spec.kernel_h * spec.kernel_w;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let src = input.as_slice();
    let base = n * c * h * w;
    let pad = spec.padding as isize;
    for ci in 0..c {
        for r in 0..spec.kernel_h {
            for s in 0..spec.kernel_w {
                let row = (ci * spec.kernel_h + r) * spec.kernel_w + s;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + r as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = base + (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + s as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = src[src_row + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Scatter-adds a `[C·R·S, H'·W']` column-gradient matrix back into image space.
fn col2im_add(col: &Tensor, grad: &mut Tensor, n: usize, spec: &ConvSpec) {
    let dims = grad.shape().dims();
    let (c, h, w) = (dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_dim(h, w);
    let cols = oh * ow;
    let src = col.as_slice();
    let base = n * c * h * w;
    let pad = spec.padding as isize;
    let dst = grad.as_mut_slice();
    for ci in 0..c {
        for r in 0..spec.kernel_h {
            for s in 0..spec.kernel_w {
                let row = (ci * spec.kernel_h + r) * spec.kernel_w + s;
                let src_row = &src[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + r as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = base + (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + s as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_row + ix as usize] += src_row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// `input` is `[N, C, H, W]`, `weight` is `[K, C, R, S]`, `bias` is `[K]`;
/// returns `[N, K, H', W']`.
///
/// # Panics
///
/// Panics if any shape is inconsistent with `spec`.
///
/// # Example
///
/// ```
/// use cscnn_tensor::{conv2d, ConvSpec, Tensor};
///
/// let input = Tensor::full(&[1, 1, 3, 3], 1.0);
/// let weight = Tensor::full(&[1, 1, 3, 3], 1.0);
/// let bias = Tensor::zeros(&[1]);
/// let out = conv2d(&input, &weight, &bias, &ConvSpec::new(3, 3));
/// assert_eq!(out.as_slice(), &[9.0]);
/// ```
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
    let (n, c, h, w) = dims4(input, "conv2d input");
    let (k, wc, wr, ws) = dims4(weight, "conv2d weight");
    assert_eq!(c, wc, "channel mismatch: input C={c}, weight C={wc}");
    assert_eq!(
        (wr, ws),
        (spec.kernel_h, spec.kernel_w),
        "weight spatial dims disagree with spec"
    );
    assert_eq!(bias.len(), k, "bias length must equal K={k}");
    let (oh, ow) = spec.output_dim(h, w);
    let w_mat = weight.reshape(&[k, c * wr * ws]);
    let mut out = Tensor::zeros(&[n, k, oh, ow]);
    let bias_v = bias.as_slice();
    for ni in 0..n {
        let col = im2col(input, ni, spec);
        let res = matmul(&w_mat, &col); // [K, oh*ow]
        let dst = out.as_mut_slice();
        let base = ni * k * oh * ow;
        for ki in 0..k {
            let src = &res.as_slice()[ki * oh * ow..(ki + 1) * oh * ow];
            let b = bias_v[ki];
            for (d, &s) in dst[base + ki * oh * ow..base + (ki + 1) * oh * ow]
                .iter_mut()
                .zip(src)
            {
                *d = s + b;
            }
        }
    }
    out
}

/// Backward 2-D convolution: gradients w.r.t. input, weight and bias.
///
/// `grad_out` must be `[N, K, H', W']` for the same `input`/`weight`/`spec`
/// that produced the forward output.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
) -> Conv2dGrads {
    let (n, c, h, w) = dims4(input, "conv2d_backward input");
    let (k, _, wr, ws) = dims4(weight, "conv2d_backward weight");
    let (oh, ow) = spec.output_dim(h, w);
    assert_eq!(
        grad_out.shape().dims(),
        &[n, k, oh, ow],
        "grad_out shape mismatch"
    );
    let w_mat = weight.reshape(&[k, c * wr * ws]);
    let mut d_input = Tensor::zeros(&[n, c, h, w]);
    let mut d_weight = Tensor::zeros(&[k, c * wr * ws]);
    let mut d_bias = Tensor::zeros(&[k]);
    for ni in 0..n {
        let col = im2col(input, ni, spec);
        let go = Tensor::from_vec(
            grad_out.as_slice()[ni * k * oh * ow..(ni + 1) * k * oh * ow].to_vec(),
            &[k, oh * ow],
        );
        // dW += dOut · colᵀ
        d_weight.axpy(1.0, &matmul_bt(&go, &col));
        // dCol = Wᵀ · dOut, scattered back to image space.
        let d_col = matmul_at(&w_mat, &go);
        col2im_add(&d_col, &mut d_input, ni, spec);
        // dBias += row sums of dOut.
        for ki in 0..k {
            let s: f32 = go.as_slice()[ki * oh * ow..(ki + 1) * oh * ow].iter().sum();
            d_bias.as_mut_slice()[ki] += s;
        }
    }
    Conv2dGrads {
        input: d_input,
        weight: d_weight.reshape(&[k, c, wr, ws]),
        bias: d_bias,
    }
}

/// Copies `count` channels starting at `start` out of a `[N, C, H, W]`
/// tensor into a dense `[N, count, H, W]` tensor.
fn take_channels(t: &Tensor, start: usize, count: usize) -> Tensor {
    let (n, c, h, w) = dims4(t, "take_channels");
    assert!(start + count <= c, "channel slice out of range");
    let plane = h * w;
    let mut out = Tensor::zeros(&[n, count, h, w]);
    let src = t.as_slice();
    let dst = out.as_mut_slice();
    for ni in 0..n {
        let s0 = (ni * c + start) * plane;
        let d0 = ni * count * plane;
        dst[d0..d0 + count * plane].copy_from_slice(&src[s0..s0 + count * plane]);
    }
    out
}

/// Writes a `[N, count, H, W]` tensor into the channel window starting at
/// `start` of a `[N, C, H, W]` tensor (plain copy — groups are disjoint).
fn put_channels(dst_t: &mut Tensor, src_t: &Tensor, start: usize) {
    let (n, c, h, w) = dims4(dst_t, "put_channels dst");
    let (sn, count, sh, sw) = dims4(src_t, "put_channels src");
    assert!(sn == n && sh == h && sw == w, "spatial/batch mismatch");
    assert!(start + count <= c, "channel slice out of range");
    let plane = h * w;
    let src = src_t.as_slice();
    let dst = dst_t.as_mut_slice();
    for ni in 0..n {
        let d0 = (ni * c + start) * plane;
        let s0 = ni * count * plane;
        dst[d0..d0 + count * plane].copy_from_slice(&src[s0..s0 + count * plane]);
    }
}

/// Forward grouped 2-D convolution (`groups == C` is depthwise).
///
/// `input` is `[N, C, H, W]`, `weight` is `[K, C/groups, R, S]`, `bias` is
/// `[K]`; returns `[N, K, H', W']`. With `groups == 1` this is exactly
/// [`conv2d`]. Filters `K/groups·g .. K/groups·(g+1)` see only input
/// channels `C/groups·g .. C/groups·(g+1)`.
///
/// # Panics
///
/// Panics if any shape is inconsistent with `spec` or `groups` does not
/// divide the channel counts.
pub fn conv2d_grouped(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &ConvSpec,
    groups: usize,
) -> Tensor {
    assert!(groups > 0, "groups must be positive");
    if groups == 1 {
        return conv2d(input, weight, bias, spec);
    }
    let (n, c, h, w) = dims4(input, "conv2d_grouped input");
    let (k, wc, wr, ws) = dims4(weight, "conv2d_grouped weight");
    assert!(
        c % groups == 0 && k % groups == 0,
        "groups={groups} must divide C={c} and K={k}"
    );
    let cg = c / groups;
    let kg = k / groups;
    assert_eq!(wc, cg, "weight C={wc} must be C/groups={cg}");
    assert_eq!(bias.len(), k, "bias length must equal K={k}");
    let (oh, ow) = spec.output_dim(h, w);
    let mut out = Tensor::zeros(&[n, k, oh, ow]);
    let slab = kg * cg * wr * ws;
    for g in 0..groups {
        let gi = take_channels(input, g * cg, cg);
        // Filters of one group are a contiguous [kg, cg, R, S] slab.
        let gw = Tensor::from_vec(
            weight.as_slice()[g * slab..(g + 1) * slab].to_vec(),
            &[kg, cg, wr, ws],
        );
        let gb = Tensor::from_vec(bias.as_slice()[g * kg..(g + 1) * kg].to_vec(), &[kg]);
        let go = conv2d(&gi, &gw, &gb, spec);
        put_channels(&mut out, &go, g * kg);
    }
    out
}

/// Backward grouped 2-D convolution: gradients w.r.t. input, weight and
/// bias. With `groups == 1` this is exactly [`conv2d_backward`].
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn conv2d_grouped_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
    groups: usize,
) -> Conv2dGrads {
    assert!(groups > 0, "groups must be positive");
    if groups == 1 {
        return conv2d_backward(input, weight, grad_out, spec);
    }
    let (n, c, h, w) = dims4(input, "conv2d_grouped_backward input");
    let (k, wc, wr, ws) = dims4(weight, "conv2d_grouped_backward weight");
    assert!(
        c % groups == 0 && k % groups == 0,
        "groups={groups} must divide C={c} and K={k}"
    );
    let cg = c / groups;
    let kg = k / groups;
    assert_eq!(wc, cg, "weight C={wc} must be C/groups={cg}");
    let (oh, ow) = spec.output_dim(h, w);
    assert_eq!(
        grad_out.shape().dims(),
        &[n, k, oh, ow],
        "grad_out shape mismatch"
    );
    let mut d_input = Tensor::zeros(&[n, c, h, w]);
    let mut d_weight = Tensor::zeros(&[k, cg, wr, ws]);
    let mut d_bias = Tensor::zeros(&[k]);
    let slab = kg * cg * wr * ws;
    for g in 0..groups {
        let gi = take_channels(input, g * cg, cg);
        let gw = Tensor::from_vec(
            weight.as_slice()[g * slab..(g + 1) * slab].to_vec(),
            &[kg, cg, wr, ws],
        );
        let ggo = take_channels(grad_out, g * kg, kg);
        let grads = conv2d_backward(&gi, &gw, &ggo, spec);
        put_channels(&mut d_input, &grads.input, g * cg);
        d_weight.as_mut_slice()[g * slab..(g + 1) * slab].copy_from_slice(grads.weight.as_slice());
        d_bias.as_mut_slice()[g * kg..(g + 1) * kg].copy_from_slice(grads.bias.as_slice());
    }
    Conv2dGrads {
        input: d_input,
        weight: d_weight,
        bias: d_bias,
    }
}

fn dims4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().rank(),
        4,
        "{what} must be rank 4, got {}",
        t.shape()
    );
    let d = t.shape().dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(dims: &[usize], scale: f32) -> Tensor {
        Tensor::from_fn(dims, |i| ((i as f32) * scale).sin())
    }

    /// Direct (loop-nest) convolution used as a reference.
    fn conv_ref(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
        let d = input.shape().dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let wd = weight.shape().dims();
        let k = wd[0];
        let (oh, ow) = spec.output_dim(h, w);
        let mut out = Tensor::zeros(&[n, k, oh, ow]);
        for ni in 0..n {
            for ki in 0..k {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.at(&[ki]);
                        for ci in 0..c {
                            for r in 0..spec.kernel_h {
                                for s in 0..spec.kernel_w {
                                    let iy =
                                        (oy * spec.stride + r) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + s) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[ni, ci, iy as usize, ix as usize])
                                        * weight.at(&[ki, ci, r, s]);
                                }
                            }
                        }
                        out.set(&[ni, ki, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_reference_padded_strided() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1), (2, 0)] {
            let spec = ConvSpec::new(3, 3)
                .with_stride(stride)
                .with_padding(padding);
            let input = seq(&[2, 3, 7, 8], 0.13);
            let weight = seq(&[4, 3, 3, 3], 0.29);
            let bias = seq(&[4], 0.7);
            let got = conv2d(&input, &weight, &bias, &spec);
            let want = conv_ref(&input, &weight, &bias, &spec);
            assert_eq!(got.shape(), want.shape());
            for (g, v) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - v).abs() < 1e-4, "stride={stride} pad={padding}");
            }
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let input = seq(&[1, 2, 5, 5], 0.17);
        let weight = seq(&[3, 2, 3, 3], 0.31);
        let bias = seq(&[3], 0.5);
        // Loss = sum of outputs; dLoss/dOut = 1 everywhere.
        let out = conv2d(&input, &weight, &bias, &spec);
        let go = Tensor::full(out.shape().dims(), 1.0);
        let grads = conv2d_backward(&input, &weight, &go, &spec);

        let eps = 5e-3;
        // Spot-check weight gradient entries with central differences.
        for &idx in &[0usize, 7, 23, 53] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&input, &wp, &bias, &spec).sum();
            let lm = conv2d(&input, &wm, &bias, &spec).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.weight.as_slice()[idx];
            assert!((fd - an).abs() < 3e-2, "weight[{idx}]: fd={fd} an={an}");
        }
        // Spot-check input gradient entries.
        for &idx in &[0usize, 11, 31, 49] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&ip, &weight, &bias, &spec).sum();
            let lm = conv2d(&im, &weight, &bias, &spec).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.input.as_slice()[idx];
            assert!((fd - an).abs() < 3e-2, "input[{idx}]: fd={fd} an={an}");
        }
        // Bias gradient of a sum loss is the number of output pixels per k.
        let per_k = out.len() as f32 / 3.0;
        for &g in grads.bias.as_slice() {
            assert!((g - per_k).abs() < 1e-3);
        }
    }

    #[test]
    fn output_dim_math() {
        let spec = ConvSpec::new(11, 11).with_stride(4).with_padding(2);
        assert_eq!(spec.output_dim(224, 224), (55, 55));
    }

    /// Expands a grouped `[K, C/g, R, S]` weight to the block-diagonal
    /// dense `[K, C, R, S]` equivalent.
    fn expand_grouped_weight(weight: &Tensor, c: usize, groups: usize) -> Tensor {
        let wd = weight.shape().dims();
        let (k, cg, r, s) = (wd[0], wd[1], wd[2], wd[3]);
        assert_eq!(cg, c / groups);
        let kg = k / groups;
        let mut dense = Tensor::zeros(&[k, c, r, s]);
        for ki in 0..k {
            let g = ki / kg;
            for ci in 0..cg {
                for ri in 0..r {
                    for si in 0..s {
                        dense.set(&[ki, g * cg + ci, ri, si], weight.at(&[ki, ci, ri, si]));
                    }
                }
            }
        }
        dense
    }

    #[test]
    fn grouped_forward_matches_block_diagonal_dense() {
        for &(c, k, groups, stride, padding) in &[
            (4usize, 6usize, 2usize, 1usize, 1usize),
            (6, 6, 6, 1, 1),
            (4, 4, 4, 2, 1),
        ] {
            let spec = ConvSpec::new(3, 3)
                .with_stride(stride)
                .with_padding(padding);
            let input = seq(&[2, c, 6, 6], 0.19);
            let weight = seq(&[k, c / groups, 3, 3], 0.37);
            let bias = seq(&[k], 0.61);
            let got = conv2d_grouped(&input, &weight, &bias, &spec, groups);
            let dense = expand_grouped_weight(&weight, c, groups);
            let want = conv2d(&input, &dense, &bias, &spec);
            assert_eq!(got.shape(), want.shape());
            for (g, v) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - v).abs() < 1e-4, "c={c} k={k} groups={groups}");
            }
        }
    }

    #[test]
    fn grouped_backward_matches_block_diagonal_dense() {
        let (c, k, groups) = (6usize, 6usize, 3usize);
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let input = seq(&[2, c, 5, 5], 0.23);
        let weight = seq(&[k, c / groups, 3, 3], 0.41);
        let bias = seq(&[k], 0.3);
        let out = conv2d_grouped(&input, &weight, &bias, &spec, groups);
        let go = Tensor::from_fn(out.shape().dims(), |i| ((i as f32) * 0.11).cos());
        let grads = conv2d_grouped_backward(&input, &weight, &go, &spec, groups);

        let dense = expand_grouped_weight(&weight, c, groups);
        let dense_grads = conv2d_backward(&input, &dense, &go, &spec);
        for (g, v) in grads
            .input
            .as_slice()
            .iter()
            .zip(dense_grads.input.as_slice())
        {
            assert!((g - v).abs() < 1e-4);
        }
        for (g, v) in grads
            .bias
            .as_slice()
            .iter()
            .zip(dense_grads.bias.as_slice())
        {
            assert!((g - v).abs() < 1e-3);
        }
        // The grouped weight gradient equals the dense gradient at the
        // block-diagonal positions.
        let cg = c / groups;
        let kg = k / groups;
        for ki in 0..k {
            let g = ki / kg;
            for ci in 0..cg {
                for ri in 0..3 {
                    for si in 0..3 {
                        let a = grads.weight.at(&[ki, ci, ri, si]);
                        let b = dense_grads.weight.at(&[ki, g * cg + ci, ri, si]);
                        assert!((a - b).abs() < 1e-3, "weight[{ki},{ci},{ri},{si}]");
                    }
                }
            }
        }
    }

    #[test]
    fn grouped_with_one_group_is_dense_conv() {
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let input = seq(&[1, 3, 5, 5], 0.17);
        let weight = seq(&[4, 3, 3, 3], 0.29);
        let bias = seq(&[4], 0.5);
        let a = conv2d_grouped(&input, &weight, &bias, &spec, 1);
        let b = conv2d(&input, &weight, &bias, &spec);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn grouped_rejects_indivisible_channels() {
        let spec = ConvSpec::new(3, 3);
        let _ = conv2d_grouped(
            &Tensor::zeros(&[1, 5, 5, 5]),
            &Tensor::zeros(&[4, 2, 3, 3]),
            &Tensor::zeros(&[4]),
            &spec,
            2,
        );
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_channel_mismatch() {
        let spec = ConvSpec::new(3, 3);
        let _ = conv2d(
            &Tensor::zeros(&[1, 2, 5, 5]),
            &Tensor::zeros(&[1, 3, 3, 3]),
            &Tensor::zeros(&[1]),
            &spec,
        );
    }
}
