//! 2-D convolution, forward and backward, via im2col.
//!
//! Tensor layouts follow the paper's notation (§II-A): inputs are
//! `[N, C, H, W]`, filters are `[K, C, R, S]`, outputs are `[N, K, H', W']`.
//!
//! # Lowering architecture
//!
//! All convolution entry points run over a [`ConvLowering`]: the input is
//! lowered **once** into a block-contiguous im2col buffer holding one
//! `[C/g·R·S, H'·W']` column block per `(batch item, group)` task, and
//! both the forward GEMMs and all three backward GEMMs read from that
//! single buffer. [`ConvScratch`] keeps the lowering (and its allocation)
//! alive across calls so a forward/backward pair — or repeated training
//! steps at a fixed geometry — lowers each input exactly once and never
//! reallocates. The GEMMs themselves are the cache-blocked multithreaded
//! kernels in [`crate::kernels`]; when a batch offers enough
//! `(item × group)` tasks the work is parallelized across tasks instead
//! (whole output chunks per thread), which keeps every output element
//! single-writer.
//!
//! Results are **bit-identical** to the naive per-item / per-group
//! reference implementations in [`crate::reference`] at every thread
//! count; see `docs/kernels.md` for why the accumulation orders match.

use crate::kernels::{self, Lhs, Rhs};
use crate::{reference, threads, Tensor};

/// Static description of a convolution: filter geometry, stride and padding.
///
/// # Example
///
/// ```
/// use cscnn_tensor::ConvSpec;
///
/// let spec = ConvSpec::new(3, 3).with_stride(1).with_padding(1);
/// assert_eq!(spec.output_dim(32, 32), (32, 32)); // "same" convolution
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Filter height (`R` in the paper).
    pub kernel_h: usize,
    /// Filter width (`S` in the paper).
    pub kernel_w: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every spatial border.
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a unit-stride, unpadded convolution spec.
    ///
    /// # Panics
    ///
    /// Panics if either kernel extent is zero.
    pub fn new(kernel_h: usize, kernel_w: usize) -> Self {
        assert!(
            kernel_h > 0 && kernel_w > 0,
            "kernel extents must be positive"
        );
        ConvSpec {
            kernel_h,
            kernel_w,
            stride: 1,
            padding: 0,
        }
    }

    /// Sets the stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Sets the zero padding.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Output spatial extent for an `(h, w)` input.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_dim(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel_h && pw >= self.kernel_w,
            "input {h}x{w} (+pad {}) smaller than kernel {}x{}",
            self.padding,
            self.kernel_h,
            self.kernel_w
        );
        (
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        )
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the layer input, `[N, C, H, W]`.
    pub input: Tensor,
    /// Gradient w.r.t. the filters, `[K, C, R, S]`.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, `[K]`.
    pub bias: Tensor,
}

/// Cap on the transient per-task partial-gradient buffer (in f32 slots,
/// 64 Mi ≈ 256 MB) that the task-parallel backward path may allocate;
/// above it the backward falls back to the sequential-tasks path whose
/// GEMMs are internally parallel instead.
const PART_BUDGET_FLOATS: usize = 1 << 26;

/// One input tensor lowered to im2col form — the shared artifact of
/// satellite concern "don't lower the same input twice".
///
/// The buffer holds `N·groups` contiguous blocks in `(item, group)`-major
/// order; block `(ni, g)` is the `[C/g·R·S, H'·W']` column matrix of batch
/// item `ni` restricted to input-channel group `g`. [`ConvLowering::forward`]
/// and [`ConvLowering::backward`] both consume it, so callers that keep the
/// lowering around (directly, or via [`ConvScratch`]) pay the im2col cost
/// once per input instead of once per direction.
///
/// # Example
///
/// ```
/// use cscnn_tensor::{ConvLowering, ConvSpec, Tensor};
///
/// let spec = ConvSpec::new(3, 3).with_padding(1);
/// let input = Tensor::full(&[2, 4, 8, 8], 0.5);
/// let weight = Tensor::full(&[6, 4, 3, 3], 0.1);
/// let bias = Tensor::zeros(&[6]);
/// let lowering = ConvLowering::lower(&input, &spec, 1);
/// let out = lowering.forward(&weight, &bias);          // uses the lowering
/// let grad = Tensor::full(out.shape().dims(), 1.0);
/// let grads = lowering.backward(&weight, &grad);       // reuses it — no re-lower
/// assert_eq!(grads.input.shape().dims(), &[2, 4, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct ConvLowering {
    /// `n·groups` blocks of `rows_g·cols_len` each, `(item, group)`-major.
    cols: Vec<f32>,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    groups: usize,
    oh: usize,
    ow: usize,
    spec: ConvSpec,
}

impl ConvLowering {
    /// Lowers `input` (`[N, C, H, W]`) for a convolution with `spec` and
    /// `groups` input-channel groups.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not rank 4, `groups` is zero or does not
    /// divide `C`, or the padded input is smaller than the kernel.
    pub fn lower(input: &Tensor, spec: &ConvSpec, groups: usize) -> Self {
        let mut lowering = ConvLowering {
            cols: Vec::new(),
            n: 0,
            c: 0,
            h: 0,
            w: 0,
            groups: 1,
            oh: 0,
            ow: 0,
            spec: *spec,
        };
        lowering.lower_into(input, spec, groups);
        lowering
    }

    /// Re-lowers into `self`, reusing the column buffer's allocation when
    /// the geometry still fits. Semantically identical to replacing `self`
    /// with [`ConvLowering::lower`]`(input, spec, groups)`.
    ///
    /// # Panics
    ///
    /// As [`ConvLowering::lower`].
    pub fn lower_into(&mut self, input: &Tensor, spec: &ConvSpec, groups: usize) {
        let (n, c, h, w) = dims4(input, "conv lowering input");
        assert!(groups > 0, "groups must be positive");
        assert!(c % groups == 0, "groups={groups} must divide C={c}");
        let (oh, ow) = spec.output_dim(h, w);
        let cg = c / groups;
        let rows_g = cg * spec.kernel_h * spec.kernel_w;
        let cols_len = oh * ow;
        let total = n * groups * rows_g * cols_len;
        self.cols.clear();
        self.cols.resize(total, 0.0);
        (self.n, self.c, self.h, self.w) = (n, c, h, w);
        self.groups = groups;
        (self.oh, self.ow) = (oh, ow);
        self.spec = *spec;
        let src = input.as_slice();
        let block_len = rows_g * cols_len;
        let t = threads::num_threads();
        let spec = *spec;
        kernels::parallel_chunks(&mut self.cols, block_len, t, |task, block| {
            let (ni, g) = (task / groups, task % groups);
            let base = (ni * c + g * cg) * h * w;
            im2col_block(block, src, base, cg, h, w, &spec, oh, ow);
        });
    }

    /// The `(ni, g)` column block, `[C/g·R·S, H'·W']` row-major.
    fn block(&self, ni: usize, g: usize) -> &[f32] {
        let cg = self.c / self.groups;
        let block_len = cg * self.spec.kernel_h * self.spec.kernel_w * self.oh * self.ow;
        let at = (ni * self.groups + g) * block_len;
        &self.cols[at..at + block_len]
    }

    /// Validates `weight` against the lowered geometry, returning
    /// `(k, kg, rows_g, cols_len)`.
    fn weight_geometry(&self, weight: &Tensor, what: &str) -> (usize, usize, usize, usize) {
        let (k, wc, wr, ws) = dims4(weight, what);
        let cg = self.c / self.groups;
        assert_eq!(wc, cg, "weight C={wc} must be C/groups={cg}");
        assert_eq!(
            (wr, ws),
            (self.spec.kernel_h, self.spec.kernel_w),
            "weight spatial dims disagree with spec"
        );
        assert!(
            k % self.groups == 0,
            "groups={} must divide K={k}",
            self.groups
        );
        (k, k / self.groups, cg * wr * ws, self.oh * self.ow)
    }

    /// Forward convolution over the lowered input: `[N, K, H', W']`.
    ///
    /// `weight` is `[K, C/groups, R, S]`, `bias` is `[K]`. Bit-identical
    /// to [`crate::reference::conv2d_grouped`] on the lowered input.
    ///
    /// # Panics
    ///
    /// Panics if `weight`/`bias` disagree with the lowered geometry.
    pub fn forward(&self, weight: &Tensor, bias: &Tensor) -> Tensor {
        let (k, kg, rows_g, cols_len) = self.weight_geometry(weight, "conv2d weight");
        assert_eq!(bias.len(), k, "bias length must equal K={k}");
        let (n, groups) = (self.n, self.groups);
        let mut out = Tensor::zeros(&[n, k, self.oh, self.ow]);
        let wv = weight.as_slice();
        let bias_v = bias.as_slice();
        let tasks = n * groups;
        let chunk = kg * cols_len;
        let t = threads::num_threads();
        // Each (item, group) task owns the contiguous output chunk
        // [ni, g·kg..(g+1)·kg, :, :]; with enough tasks, parallelize
        // across them (serial GEMM per task), otherwise run the tasks
        // sequentially with internally parallel GEMMs. Both schedules
        // compute every element with the same reduction order.
        let task_parallel = t > 1 && tasks >= t;
        let run = |task: usize, dst: &mut [f32], budget: usize| {
            let (ni, g) = (task / groups, task % groups);
            let wg = &wv[g * kg * rows_g..(g + 1) * kg * rows_g];
            let col = self.block(ni, g);
            kernels::gemm_with_threads(
                Lhs::RowMajor,
                Rhs::RowMajor,
                wg,
                col,
                kg,
                rows_g,
                cols_len,
                dst,
                budget,
            );
            for kl in 0..kg {
                let b = bias_v[g * kg + kl];
                for d in &mut dst[kl * cols_len..(kl + 1) * cols_len] {
                    *d += b;
                }
            }
        };
        if task_parallel {
            kernels::parallel_chunks(out.as_mut_slice(), chunk, t, |task, dst| {
                run(task, dst, 1);
            });
        } else {
            let dst = out.as_mut_slice();
            for task in 0..tasks {
                run(task, &mut dst[task * chunk..(task + 1) * chunk], t);
            }
        }
        out
    }

    /// Backward convolution over the lowered input (no re-lowering).
    ///
    /// `weight` is `[K, C/groups, R, S]`; `grad_out` is `[N, K, H', W']`.
    /// Bit-identical to [`crate::reference::conv2d_grouped_backward`] on
    /// the lowered input: per-task partial gradients are reduced in
    /// ascending batch order within each group.
    ///
    /// # Panics
    ///
    /// Panics if `weight`/`grad_out` disagree with the lowered geometry.
    pub fn backward(&self, weight: &Tensor, grad_out: &Tensor) -> Conv2dGrads {
        let (k, kg, rows_g, cols_len) = self.weight_geometry(weight, "conv2d_backward weight");
        let (n, c, h, w, groups) = (self.n, self.c, self.h, self.w, self.groups);
        let cg = c / groups;
        assert_eq!(
            grad_out.shape().dims(),
            &[n, k, self.oh, self.ow],
            "grad_out shape mismatch"
        );
        let mut d_input = Tensor::zeros(&[n, c, h, w]);
        let mut d_weight = vec![0.0f32; k * rows_g];
        let mut d_bias = vec![0.0f32; k];
        let gov = grad_out.as_slice();
        let wv = weight.as_slice();
        let tasks = n * groups;
        // Per-task partials: a [kg, rows_g] dW block followed by kg dBias
        // slots. Kept out of the shared gradients so the parallel path can
        // reduce them in the exact order the sequential path uses.
        let part_len = kg * rows_g + kg;
        let spec = self.spec;
        let t = threads::num_threads();
        let compute =
            |task: usize, din: &mut [f32], dw_part: &mut [f32], db_part: &mut [f32], budget| {
                let (ni, g) = (task / groups, task % groups);
                let goslab = &gov[(ni * k + g * kg) * cols_len..(ni * k + (g + 1) * kg) * cols_len];
                let wg = &wv[g * kg * rows_g..(g + 1) * kg * rows_g];
                let col = self.block(ni, g);
                // dW part = dOut · colᵀ (reference: matmul_bt(go, col)).
                kernels::gemm_with_threads(
                    Lhs::RowMajor,
                    Rhs::Transposed,
                    goslab,
                    col,
                    kg,
                    cols_len,
                    rows_g,
                    dw_part,
                    budget,
                );
                // dCol = Wᵀ · dOut (reference: matmul_at(w, go)), scattered
                // back into this task's disjoint d_input chunk.
                let mut d_col = vec![0.0f32; rows_g * cols_len];
                kernels::gemm_with_threads(
                    Lhs::Transposed,
                    Rhs::RowMajor,
                    wg,
                    goslab,
                    rows_g,
                    kg,
                    cols_len,
                    &mut d_col,
                    budget,
                );
                col2im_block(&d_col, din, cg, h, w, &spec, self.oh, self.ow);
                // dBias part = row sums of dOut, in the reference's order.
                for (kl, db) in db_part.iter_mut().enumerate() {
                    let s: f32 = goslab[kl * cols_len..(kl + 1) * cols_len].iter().sum();
                    *db = s;
                }
            };
        let din_chunk = cg * h * w;
        if t > 1 && tasks >= t && tasks * part_len <= PART_BUDGET_FLOATS {
            let mut parts = vec![0.0f32; tasks * part_len];
            kernels::parallel_chunk_pairs(
                d_input.as_mut_slice(),
                din_chunk,
                &mut parts,
                part_len,
                t,
                |task, din, part| {
                    let (dw_part, db_part) = part.split_at_mut(kg * rows_g);
                    compute(task, din, dw_part, db_part, 1);
                },
            );
            for (task, part) in parts.chunks(part_len).enumerate() {
                reduce_part(task, part, groups, kg, rows_g, &mut d_weight, &mut d_bias);
            }
        } else {
            let din = d_input.as_mut_slice();
            let mut part = vec![0.0f32; part_len];
            for task in 0..tasks {
                part.fill(0.0);
                let (dw_part, db_part) = part.split_at_mut(kg * rows_g);
                let chunk = &mut din[task * din_chunk..(task + 1) * din_chunk];
                compute(task, chunk, dw_part, db_part, t);
                reduce_part(task, &part, groups, kg, rows_g, &mut d_weight, &mut d_bias);
            }
        }
        Conv2dGrads {
            input: d_input,
            weight: Tensor::from_vec(d_weight, &[k, cg, self.spec.kernel_h, self.spec.kernel_w]),
            bias: Tensor::from_vec(d_bias, &[k]),
        }
    }
}

/// Folds one task's `(dW part, dBias part)` into the shared gradients.
/// Called in ascending task order, which is ascending batch order within
/// each group — the reference reduction order.
fn reduce_part(
    task: usize,
    part: &[f32],
    groups: usize,
    kg: usize,
    rows_g: usize,
    d_weight: &mut [f32],
    d_bias: &mut [f32],
) {
    let g = task % groups;
    let (dw_part, db_part) = part.split_at(kg * rows_g);
    let dw = &mut d_weight[g * kg * rows_g..(g + 1) * kg * rows_g];
    for (d, &p) in dw.iter_mut().zip(dw_part) {
        *d += p;
    }
    let db = &mut d_bias[g * kg..(g + 1) * kg];
    for (d, &p) in db.iter_mut().zip(db_part) {
        *d += p;
    }
}

/// Lowers channels `[0, cg)` at flat offset `base` of an image into a
/// (pre-zeroed) `[cg·R·S, H'·W']` column block.
#[allow(clippy::too_many_arguments)]
fn im2col_block(
    block: &mut [f32],
    src: &[f32],
    base: usize,
    cg: usize,
    h: usize,
    w: usize,
    spec: &ConvSpec,
    oh: usize,
    ow: usize,
) {
    let cols = oh * ow;
    let pad = spec.padding as isize;
    for ci in 0..cg {
        for r in 0..spec.kernel_h {
            for s in 0..spec.kernel_w {
                let row = (ci * spec.kernel_h + r) * spec.kernel_w + s;
                let out_row = &mut block[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + r as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = base + (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + s as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = src[src_row + ix as usize];
                    }
                }
            }
        }
    }
}

/// Scatter-adds a `[cg·R·S, H'·W']` column-gradient block into a
/// `[cg, H, W]` image chunk.
#[allow(clippy::too_many_arguments)]
fn col2im_block(
    col: &[f32],
    dst: &mut [f32],
    cg: usize,
    h: usize,
    w: usize,
    spec: &ConvSpec,
    oh: usize,
    ow: usize,
) {
    let cols = oh * ow;
    let pad = spec.padding as isize;
    for ci in 0..cg {
        for r in 0..spec.kernel_h {
            for s in 0..spec.kernel_w {
                let row = (ci * spec.kernel_h + r) * spec.kernel_w + s;
                let src_row = &col[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + r as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + s as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_row + ix as usize] += src_row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// A reusable convolution arena: keeps the most recent [`ConvLowering`]
/// (and its buffer) alive across calls.
///
/// A forward/backward pair over the same input lowers it exactly once —
/// the backward call recognizes the input by a content fingerprint and
/// reuses the forward's lowering; any other input (or geometry) re-lowers
/// into the existing allocation. `Conv2d` layers own one of these, so a
/// training step does one im2col per layer instead of two, and steady-state
/// training stops allocating column buffers entirely.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    lowering: Option<ConvLowering>,
    key: Option<u64>,
}

impl ConvScratch {
    /// Creates an empty scratch (no buffer held yet).
    pub fn new() -> Self {
        ConvScratch::default()
    }

    /// Ensures `self.lowering` covers `input` with `spec`/`groups`,
    /// lowering (into the reused buffer) only when the fingerprint or
    /// geometry changed.
    fn ensure(&mut self, input: &Tensor, spec: &ConvSpec, groups: usize) -> &ConvLowering {
        let key = fingerprint(input, spec, groups);
        if self.key != Some(key) || self.lowering.is_none() {
            if let Some(lowering) = self.lowering.as_mut() {
                lowering.lower_into(input, spec, groups);
            } else {
                self.lowering = Some(ConvLowering::lower(input, spec, groups));
            }
            self.key = Some(key);
        }
        // Populated just above; the fallback lower never runs.
        self.lowering
            .get_or_insert_with(|| ConvLowering::lower(input, spec, groups))
    }

    /// Grouped forward convolution through the scratch (use `groups = 1`
    /// for dense). Results are identical to [`conv2d_grouped`].
    ///
    /// # Panics
    ///
    /// As [`conv2d_grouped`].
    pub fn forward(
        &mut self,
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        spec: &ConvSpec,
        groups: usize,
    ) -> Tensor {
        if kernels::reference_mode() {
            return reference::conv2d_grouped(input, weight, bias, spec, groups);
        }
        self.ensure(input, spec, groups).forward(weight, bias)
    }

    /// Grouped backward convolution through the scratch; when the same
    /// input was just lowered by [`ConvScratch::forward`] the lowering is
    /// reused. Results are identical to [`conv2d_grouped_backward`].
    ///
    /// # Panics
    ///
    /// As [`conv2d_grouped_backward`].
    pub fn backward(
        &mut self,
        input: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        spec: &ConvSpec,
        groups: usize,
    ) -> Conv2dGrads {
        if kernels::reference_mode() {
            return reference::conv2d_grouped_backward(input, weight, grad_out, spec, groups);
        }
        self.ensure(input, spec, groups).backward(weight, grad_out)
    }
}

/// FNV-1a over the input's contents and the convolution geometry — the
/// [`ConvScratch`] reuse key. Content-based (not address-based) so reuse
/// is sound: equal fingerprints mean the existing lowering is valid for
/// this exact input.
fn fingerprint(input: &Tensor, spec: &ConvSpec, groups: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        h = (h ^ v).wrapping_mul(PRIME);
    };
    for &d in input.shape().dims() {
        eat(d as u64);
    }
    eat(spec.kernel_h as u64);
    eat(spec.kernel_w as u64);
    eat(spec.stride as u64);
    eat(spec.padding as u64);
    eat(groups as u64);
    for &v in input.as_slice() {
        eat(u64::from(v.to_bits()));
    }
    h
}

/// Forward 2-D convolution.
///
/// `input` is `[N, C, H, W]`, `weight` is `[K, C, R, S]`, `bias` is `[K]`;
/// returns `[N, K, H', W']`. Lowers the input once and runs the blocked
/// kernels; to share the lowering with the backward pass use
/// [`ConvLowering`] or [`ConvScratch`] instead of this free function.
///
/// # Panics
///
/// Panics if any shape is inconsistent with `spec`.
///
/// # Example
///
/// ```
/// use cscnn_tensor::{conv2d, ConvSpec, Tensor};
///
/// let input = Tensor::full(&[1, 1, 3, 3], 1.0);
/// let weight = Tensor::full(&[1, 1, 3, 3], 1.0);
/// let bias = Tensor::zeros(&[1]);
/// let out = conv2d(&input, &weight, &bias, &ConvSpec::new(3, 3));
/// assert_eq!(out.as_slice(), &[9.0]);
/// ```
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
    let (_, c, _, _) = dims4(input, "conv2d input");
    let (k, wc, wr, ws) = dims4(weight, "conv2d weight");
    assert_eq!(c, wc, "channel mismatch: input C={c}, weight C={wc}");
    assert_eq!(
        (wr, ws),
        (spec.kernel_h, spec.kernel_w),
        "weight spatial dims disagree with spec"
    );
    assert_eq!(bias.len(), k, "bias length must equal K={k}");
    if kernels::reference_mode() {
        return reference::conv2d(input, weight, bias, spec);
    }
    ConvLowering::lower(input, spec, 1).forward(weight, bias)
}

/// Backward 2-D convolution: gradients w.r.t. input, weight and bias.
///
/// `grad_out` must be `[N, K, H', W']` for the same `input`/`weight`/`spec`
/// that produced the forward output. This free function lowers the input
/// itself; pair it with [`ConvLowering`]/[`ConvScratch`] to reuse the
/// forward pass's lowering instead.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
) -> Conv2dGrads {
    if kernels::reference_mode() {
        return reference::conv2d_backward(input, weight, grad_out, spec);
    }
    ConvLowering::lower(input, spec, 1).backward(weight, grad_out)
}

/// Forward grouped 2-D convolution (`groups == C` is depthwise).
///
/// `input` is `[N, C, H, W]`, `weight` is `[K, C/groups, R, S]`, `bias` is
/// `[K]`; returns `[N, K, H', W']`. With `groups == 1` this is exactly
/// [`conv2d`]. Filters `K/groups·g .. K/groups·(g+1)` see only input
/// channels `C/groups·g .. C/groups·(g+1)`. All groups are lowered into
/// one fused buffer and the `(batch × group)` tasks run in parallel.
///
/// # Panics
///
/// Panics if any shape is inconsistent with `spec` or `groups` does not
/// divide the channel counts.
pub fn conv2d_grouped(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &ConvSpec,
    groups: usize,
) -> Tensor {
    assert!(groups > 0, "groups must be positive");
    if groups == 1 {
        return conv2d(input, weight, bias, spec);
    }
    let (_, c, _, _) = dims4(input, "conv2d_grouped input");
    let (k, wc, wr, ws) = dims4(weight, "conv2d_grouped weight");
    assert!(
        c % groups == 0 && k % groups == 0,
        "groups={groups} must divide C={c} and K={k}"
    );
    let cg = c / groups;
    assert_eq!(wc, cg, "weight C={wc} must be C/groups={cg}");
    assert_eq!(
        (wr, ws),
        (spec.kernel_h, spec.kernel_w),
        "weight spatial dims disagree with spec"
    );
    assert_eq!(bias.len(), k, "bias length must equal K={k}");
    if kernels::reference_mode() {
        return reference::conv2d_grouped(input, weight, bias, spec, groups);
    }
    ConvLowering::lower(input, spec, groups).forward(weight, bias)
}

/// Backward grouped 2-D convolution: gradients w.r.t. input, weight and
/// bias. With `groups == 1` this is exactly [`conv2d_backward`].
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn conv2d_grouped_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
    groups: usize,
) -> Conv2dGrads {
    assert!(groups > 0, "groups must be positive");
    if groups == 1 {
        return conv2d_backward(input, weight, grad_out, spec);
    }
    let (_, c, _, _) = dims4(input, "conv2d_grouped_backward input");
    let (k, wc, _, _) = dims4(weight, "conv2d_grouped_backward weight");
    assert!(
        c % groups == 0 && k % groups == 0,
        "groups={groups} must divide C={c} and K={k}"
    );
    let cg = c / groups;
    assert_eq!(wc, cg, "weight C={wc} must be C/groups={cg}");
    if kernels::reference_mode() {
        return reference::conv2d_grouped_backward(input, weight, grad_out, spec, groups);
    }
    ConvLowering::lower(input, spec, groups).backward(weight, grad_out)
}

fn dims4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().rank(),
        4,
        "{what} must be rank 4, got {}",
        t.shape()
    );
    let d = t.shape().dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(dims: &[usize], scale: f32) -> Tensor {
        Tensor::from_fn(dims, |i| ((i as f32) * scale).sin())
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    /// Direct (loop-nest) convolution used as a reference.
    fn conv_ref(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
        let d = input.shape().dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let wd = weight.shape().dims();
        let k = wd[0];
        let (oh, ow) = spec.output_dim(h, w);
        let mut out = Tensor::zeros(&[n, k, oh, ow]);
        for ni in 0..n {
            for ki in 0..k {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.at(&[ki]);
                        for ci in 0..c {
                            for r in 0..spec.kernel_h {
                                for s in 0..spec.kernel_w {
                                    let iy =
                                        (oy * spec.stride + r) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + s) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[ni, ci, iy as usize, ix as usize])
                                        * weight.at(&[ki, ci, r, s]);
                                }
                            }
                        }
                        out.set(&[ni, ki, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_reference_padded_strided() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1), (2, 0)] {
            let spec = ConvSpec::new(3, 3)
                .with_stride(stride)
                .with_padding(padding);
            let input = seq(&[2, 3, 7, 8], 0.13);
            let weight = seq(&[4, 3, 3, 3], 0.29);
            let bias = seq(&[4], 0.7);
            let got = conv2d(&input, &weight, &bias, &spec);
            let want = conv_ref(&input, &weight, &bias, &spec);
            assert_eq!(got.shape(), want.shape());
            for (g, v) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - v).abs() < 1e-4, "stride={stride} pad={padding}");
            }
        }
    }

    #[test]
    fn forward_and_backward_bit_match_naive_oracle() {
        let spec = ConvSpec::new(3, 3).with_stride(2).with_padding(1);
        let input = seq(&[3, 5, 9, 11], 0.13);
        let weight = seq(&[4, 5, 3, 3], 0.29);
        let bias = seq(&[4], 0.7);
        let fast = conv2d(&input, &weight, &bias, &spec);
        let slow = crate::reference::conv2d(&input, &weight, &bias, &spec);
        assert_eq!(bits(&fast), bits(&slow));

        let go = Tensor::from_fn(fast.shape().dims(), |i| ((i as f32) * 0.17).cos());
        let fast = conv2d_backward(&input, &weight, &go, &spec);
        let slow = crate::reference::conv2d_backward(&input, &weight, &go, &spec);
        assert_eq!(bits(&fast.input), bits(&slow.input));
        assert_eq!(bits(&fast.weight), bits(&slow.weight));
        assert_eq!(bits(&fast.bias), bits(&slow.bias));
    }

    #[test]
    fn grouped_bit_matches_naive_oracle() {
        for &(c, k, groups) in &[(6usize, 6usize, 3usize), (4, 4, 4), (8, 4, 2)] {
            let spec = ConvSpec::new(3, 3).with_padding(1);
            let input = seq(&[2, c, 6, 7], 0.19);
            let weight = seq(&[k, c / groups, 3, 3], 0.37);
            let bias = seq(&[k], 0.61);
            let fast = conv2d_grouped(&input, &weight, &bias, &spec, groups);
            let slow = crate::reference::conv2d_grouped(&input, &weight, &bias, &spec, groups);
            assert_eq!(bits(&fast), bits(&slow), "c={c} k={k} g={groups}");

            let go = Tensor::from_fn(fast.shape().dims(), |i| ((i as f32) * 0.11).cos());
            let fast = conv2d_grouped_backward(&input, &weight, &go, &spec, groups);
            let slow =
                crate::reference::conv2d_grouped_backward(&input, &weight, &go, &spec, groups);
            assert_eq!(bits(&fast.input), bits(&slow.input));
            assert_eq!(bits(&fast.weight), bits(&slow.weight));
            assert_eq!(bits(&fast.bias), bits(&slow.bias));
        }
    }

    #[test]
    fn scratch_reuses_forward_lowering_in_backward() {
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let input = seq(&[2, 4, 6, 6], 0.23);
        let weight = seq(&[6, 4, 3, 3], 0.41);
        let bias = seq(&[6], 0.3);
        let mut scratch = ConvScratch::new();
        let out = scratch.forward(&input, &weight, &bias, &spec, 1);
        let key_after_forward = scratch.key;
        let go = Tensor::full(out.shape().dims(), 1.0);
        let grads = scratch.backward(&input, &weight, &go, &spec, 1);
        assert_eq!(scratch.key, key_after_forward, "backward reused the key");
        let plain = conv2d_backward(&input, &weight, &go, &spec);
        assert_eq!(bits(&grads.input), bits(&plain.input));
        assert_eq!(bits(&grads.weight), bits(&plain.weight));
        assert_eq!(bits(&grads.bias), bits(&plain.bias));

        // A different input re-lowers (fingerprint is content-based).
        let other = seq(&[2, 4, 6, 6], 0.77);
        let out2 = scratch.forward(&other, &weight, &bias, &spec, 1);
        assert_ne!(scratch.key, key_after_forward);
        assert_eq!(bits(&out2), bits(&conv2d(&other, &weight, &bias, &spec)));
    }

    #[test]
    fn shared_lowering_matches_free_functions() {
        let spec = ConvSpec::new(3, 3).with_stride(2).with_padding(1);
        let input = seq(&[2, 6, 8, 8], 0.19);
        let weight = seq(&[4, 3, 3, 3], 0.37);
        let bias = seq(&[4], 0.61);
        let lowering = ConvLowering::lower(&input, &spec, 2);
        let out = lowering.forward(&weight, &bias);
        assert_eq!(
            bits(&out),
            bits(&conv2d_grouped(&input, &weight, &bias, &spec, 2))
        );
        let go = Tensor::from_fn(out.shape().dims(), |i| ((i as f32) * 0.13).sin());
        let grads = lowering.backward(&weight, &go);
        let want = conv2d_grouped_backward(&input, &weight, &go, &spec, 2);
        assert_eq!(bits(&grads.input), bits(&want.input));
        assert_eq!(bits(&grads.weight), bits(&want.weight));
        assert_eq!(bits(&grads.bias), bits(&want.bias));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let input = seq(&[1, 2, 5, 5], 0.17);
        let weight = seq(&[3, 2, 3, 3], 0.31);
        let bias = seq(&[3], 0.5);
        // Loss = sum of outputs; dLoss/dOut = 1 everywhere.
        let out = conv2d(&input, &weight, &bias, &spec);
        let go = Tensor::full(out.shape().dims(), 1.0);
        let grads = conv2d_backward(&input, &weight, &go, &spec);

        let eps = 5e-3;
        // Spot-check weight gradient entries with central differences.
        for &idx in &[0usize, 7, 23, 53] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&input, &wp, &bias, &spec).sum();
            let lm = conv2d(&input, &wm, &bias, &spec).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.weight.as_slice()[idx];
            assert!((fd - an).abs() < 3e-2, "weight[{idx}]: fd={fd} an={an}");
        }
        // Spot-check input gradient entries.
        for &idx in &[0usize, 11, 31, 49] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&ip, &weight, &bias, &spec).sum();
            let lm = conv2d(&im, &weight, &bias, &spec).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.input.as_slice()[idx];
            assert!((fd - an).abs() < 3e-2, "input[{idx}]: fd={fd} an={an}");
        }
        // Bias gradient of a sum loss is the number of output pixels per k.
        let per_k = out.len() as f32 / 3.0;
        for &g in grads.bias.as_slice() {
            assert!((g - per_k).abs() < 1e-3);
        }
    }

    #[test]
    fn output_dim_math() {
        let spec = ConvSpec::new(11, 11).with_stride(4).with_padding(2);
        assert_eq!(spec.output_dim(224, 224), (55, 55));
    }

    /// Expands a grouped `[K, C/g, R, S]` weight to the block-diagonal
    /// dense `[K, C, R, S]` equivalent.
    fn expand_grouped_weight(weight: &Tensor, c: usize, groups: usize) -> Tensor {
        let wd = weight.shape().dims();
        let (k, cg, r, s) = (wd[0], wd[1], wd[2], wd[3]);
        assert_eq!(cg, c / groups);
        let kg = k / groups;
        let mut dense = Tensor::zeros(&[k, c, r, s]);
        for ki in 0..k {
            let g = ki / kg;
            for ci in 0..cg {
                for ri in 0..r {
                    for si in 0..s {
                        dense.set(&[ki, g * cg + ci, ri, si], weight.at(&[ki, ci, ri, si]));
                    }
                }
            }
        }
        dense
    }

    #[test]
    fn grouped_forward_matches_block_diagonal_dense() {
        for &(c, k, groups, stride, padding) in &[
            (4usize, 6usize, 2usize, 1usize, 1usize),
            (6, 6, 6, 1, 1),
            (4, 4, 4, 2, 1),
        ] {
            let spec = ConvSpec::new(3, 3)
                .with_stride(stride)
                .with_padding(padding);
            let input = seq(&[2, c, 6, 6], 0.19);
            let weight = seq(&[k, c / groups, 3, 3], 0.37);
            let bias = seq(&[k], 0.61);
            let got = conv2d_grouped(&input, &weight, &bias, &spec, groups);
            let dense = expand_grouped_weight(&weight, c, groups);
            let want = conv2d(&input, &dense, &bias, &spec);
            assert_eq!(got.shape(), want.shape());
            for (g, v) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - v).abs() < 1e-4, "c={c} k={k} groups={groups}");
            }
        }
    }

    #[test]
    fn grouped_backward_matches_block_diagonal_dense() {
        let (c, k, groups) = (6usize, 6usize, 3usize);
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let input = seq(&[2, c, 5, 5], 0.23);
        let weight = seq(&[k, c / groups, 3, 3], 0.41);
        let bias = seq(&[k], 0.3);
        let out = conv2d_grouped(&input, &weight, &bias, &spec, groups);
        let go = Tensor::from_fn(out.shape().dims(), |i| ((i as f32) * 0.11).cos());
        let grads = conv2d_grouped_backward(&input, &weight, &go, &spec, groups);

        let dense = expand_grouped_weight(&weight, c, groups);
        let dense_grads = conv2d_backward(&input, &dense, &go, &spec);
        for (g, v) in grads
            .input
            .as_slice()
            .iter()
            .zip(dense_grads.input.as_slice())
        {
            assert!((g - v).abs() < 1e-4);
        }
        for (g, v) in grads
            .bias
            .as_slice()
            .iter()
            .zip(dense_grads.bias.as_slice())
        {
            assert!((g - v).abs() < 1e-3);
        }
        // The grouped weight gradient equals the dense gradient at the
        // block-diagonal positions.
        let cg = c / groups;
        let kg = k / groups;
        for ki in 0..k {
            let g = ki / kg;
            for ci in 0..cg {
                for ri in 0..3 {
                    for si in 0..3 {
                        let a = grads.weight.at(&[ki, ci, ri, si]);
                        let b = dense_grads.weight.at(&[ki, g * cg + ci, ri, si]);
                        assert!((a - b).abs() < 1e-3, "weight[{ki},{ci},{ri},{si}]");
                    }
                }
            }
        }
    }

    #[test]
    fn grouped_with_one_group_is_dense_conv() {
        let spec = ConvSpec::new(3, 3).with_padding(1);
        let input = seq(&[1, 3, 5, 5], 0.17);
        let weight = seq(&[4, 3, 3, 3], 0.29);
        let bias = seq(&[4], 0.5);
        let a = conv2d_grouped(&input, &weight, &bias, &spec, 1);
        let b = conv2d(&input, &weight, &bias, &spec);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn grouped_rejects_indivisible_channels() {
        let spec = ConvSpec::new(3, 3);
        let _ = conv2d_grouped(
            &Tensor::zeros(&[1, 5, 5, 5]),
            &Tensor::zeros(&[4, 2, 3, 3]),
            &Tensor::zeros(&[4]),
            &spec,
            2,
        );
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_channel_mismatch() {
        let spec = ConvSpec::new(3, 3);
        let _ = conv2d(
            &Tensor::zeros(&[1, 2, 5, 5]),
            &Tensor::zeros(&[1, 3, 3, 3]),
            &Tensor::zeros(&[1]),
            &spec,
        );
    }
}
