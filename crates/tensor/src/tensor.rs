//! The dense `f32` tensor type.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::Shape;

/// A dense, row-major, owned `f32` tensor.
///
/// `Tensor` is the single data container used throughout the training stack.
/// It keeps its element buffer contiguous so kernels (`matmul`, `conv2d`,
/// pooling) can operate on raw slices.
///
/// # Example
///
/// ```
/// use cscnn_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t[&[i, i]] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the element count of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { data, shape }
    }

    /// Builds a tensor by evaluating `f` at every multi-index, in row-major
    /// order. `f` receives the linear element index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: tensors have at least one element.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy reinterpreted with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// Element at a multi-index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns the 2-D transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }
}

impl Index<&[usize]> for Tensor {
    type Output = f32;

    fn index(&self, index: &[usize]) -> &f32 {
        &self.data[self.shape.offset(index)]
    }
}

impl IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", [{:.4}, {:.4}, .., {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[3, 4]);
        t.set(&[2, 1], 7.5);
        assert_eq!(t.at(&[2, 1]), 7.5);
        assert_eq!(t[&[2, 1]], 7.5);
        t[&[0, 3]] = -1.0;
        assert_eq!(t.at(&[0, 3]), -1.0);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape().dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_wrong_length() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn transpose_swaps_axes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 0]), 3.0);
        assert_eq!(tt.at(&[0, 1]), 4.0);
    }
}
