//! Cache-blocked, register-tiled, multithreaded GEMM kernels.
//!
//! This is the workhorse under [`crate::matmul`]/[`crate::conv2d`]: a
//! classic three-level blocked GEMM (Goto-style `NC`/`KC`/`MC` panels with
//! packed operands and an `MR×NR` register microkernel), parallelized over
//! deterministic row-block partitions via [`std::thread::scope`].
//!
//! # Determinism contract
//!
//! Results are **bit-identical** to the naive kernels in
//! [`crate::reference`] at any thread count:
//!
//! * every output element is produced by exactly one thread;
//! * each element accumulates its `k` products in ascending-`p` order —
//!   the `KC` blocks are visited in ascending order and the microkernel
//!   loads the running value, appends the block's products in order, and
//!   stores it back (f32 store/load is lossless, so splitting the
//!   reduction across blocks does not change the rounding sequence);
//! * the same sparsity short-circuit is applied: products whose
//!   left-operand element is exactly `0.0` are skipped, in all three
//!   variants, exactly as the reference kernels skip them.
//!
//! The partition (how many rows each thread gets) therefore changes
//! scheduling only, never results. See `docs/kernels.md`.

use crate::threads;
use std::sync::atomic::{AtomicBool, Ordering};

/// Microkernel tile height (rows of `C` held in registers).
pub const MR: usize = 4;
/// Microkernel tile width (columns of `C` held in registers).
pub const NR: usize = 8;
/// Row-panel height packed per `A` block (L2-resident).
const MC: usize = 128;
/// Reduction-dimension block depth (shared by both packed panels).
const KC: usize = 256;
/// Column-panel width packed per `B` block (L2/L3-resident).
const NC: usize = 512;
/// Below this many multiply-accumulates a GEMM runs inline on the calling
/// thread: spawn overhead would dominate any parallel win.
const PARALLEL_MAC_FLOOR: usize = 1 << 18;
/// Below this many multiply-accumulates a GEMM skips packing entirely and
/// runs the direct loop nest ([`small_gemm`]): at this size the operands
/// fit in cache and pack-buffer allocation would dominate. Same
/// accumulation order, so bit-identical either way.
const SMALL_GEMM_MACS: usize = 1 << 15;

/// When set, the public kernel entry points dispatch to the naive
/// [`crate::reference`] implementations. Benchmark/debug hook.
static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Routes `matmul*`/`conv2d*` through the naive [`crate::reference`]
/// kernels (`true`) or the blocked multithreaded kernels (`false`, the
/// default). Intended for benchmarking the two stacks against each other
/// and for bisecting kernel regressions; not a tuning knob.
pub fn set_reference_mode(on: bool) {
    REFERENCE_MODE.store(on, Ordering::SeqCst);
}

/// Whether [`set_reference_mode`] routed the kernels to the naive oracle.
pub fn reference_mode() -> bool {
    REFERENCE_MODE.load(Ordering::SeqCst)
}

/// Storage layout of the left GEMM operand.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Lhs {
    /// `A` is `[m, k]` row-major (`A·B`, `A·Bᵀ`).
    RowMajor,
    /// `A` is `[k, m]` row-major and used as `Aᵀ` (`Aᵀ·B`).
    Transposed,
}

/// Storage layout of the right GEMM operand.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Rhs {
    /// `B` is `[k, n]` row-major (`A·B`, `Aᵀ·B`).
    RowMajor,
    /// `B` is `[n, k]` row-major and used as `Bᵀ` (`A·Bᵀ`).
    Transposed,
}

/// `C += op(A) · op(B)` with the configured thread count.
///
/// `c` must hold `m·n` elements; it is accumulated into (callers that want
/// plain `=` semantics pass a zeroed buffer, which reproduces the
/// reference kernels' from-zero accumulation exactly).
pub(crate) fn gemm(
    lhs: Lhs,
    rhs: Rhs,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
) {
    gemm_with_threads(lhs, rhs, a, b, m, k, n, c, threads::num_threads());
}

/// [`gemm`] with an explicit thread budget (1 = run inline; used by the
/// conv task-parallel path, which parallelizes across `(batch × group)`
/// tasks instead of inside each small GEMM).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_with_threads(
    lhs: Lhs,
    rhs: Rhs,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    thread_budget: usize,
) {
    assert_eq!(a.len(), m * k, "lhs buffer disagrees with m×k");
    assert_eq!(b.len(), k * n, "rhs buffer disagrees with k×n");
    assert_eq!(c.len(), m * n, "dst buffer disagrees with m×n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let macs = m.saturating_mul(k).saturating_mul(n);
    if macs <= SMALL_GEMM_MACS {
        small_gemm(lhs, rhs, a, b, m, k, n, c);
        return;
    }
    let micro_rows = m.div_ceil(MR);
    let t = thread_budget.clamp(1, micro_rows);
    if t == 1 || macs < PARALLEL_MAC_FLOOR {
        gemm_range(lhs, rhs, a, b, 0, m, m, k, n, c);
        return;
    }
    // Deterministic partition of the MR-aligned row blocks: thread `w`
    // owns rows [blocks·w/t·MR, blocks·(w+1)/t·MR). Each element of `c`
    // is written by exactly one thread and computed by the identical
    // blocked loop nest, so the partition never affects results.
    std::thread::scope(|scope| {
        let mut rest = c;
        for w in 0..t {
            let begin = (micro_rows * w / t) * MR;
            let end = ((micro_rows * (w + 1) / t) * MR).min(m);
            if end <= begin {
                continue;
            }
            let (head, tail) = rest.split_at_mut((end - begin) * n);
            rest = tail;
            scope.spawn(move || gemm_range(lhs, rhs, a, b, begin, end, m, k, n, head));
        }
        debug_assert!(rest.is_empty(), "row partition must cover all of C");
    });
}

/// Direct (unpacked, unblocked) GEMM for problems too small to amortize
/// pack buffers. Accumulates each `C` element in ascending-`p` order with
/// the left-operand zero skip — the exact sequence the blocked path and
/// the naive reference produce, so all three are bit-identical.
fn small_gemm(
    lhs: Lhs,
    rhs: Rhs,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
) {
    for i in 0..m {
        let row = &mut c[i * n..(i + 1) * n];
        match rhs {
            Rhs::RowMajor => {
                for p in 0..k {
                    let x = match lhs {
                        Lhs::RowMajor => a[i * k + p],
                        Lhs::Transposed => a[p * m + i],
                    };
                    if x == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (d, &y) in row.iter_mut().zip(brow) {
                        *d += x * y;
                    }
                }
            }
            Rhs::Transposed => {
                for (j, d) in row.iter_mut().enumerate() {
                    let mut acc = *d;
                    let bcol = &b[j * k..(j + 1) * k];
                    for (p, &y) in bcol.iter().enumerate() {
                        let x = match lhs {
                            Lhs::RowMajor => a[i * k + p],
                            Lhs::Transposed => a[p * m + i],
                        };
                        if x == 0.0 {
                            continue;
                        }
                        acc += x * y;
                    }
                    *d = acc;
                }
            }
        }
    }
}

/// Blocked GEMM over output rows `[r0, r1)`; `c` holds exactly those rows.
#[allow(clippy::too_many_arguments)]
fn gemm_range(
    lhs: Lhs,
    rhs: Rhs,
    a: &[f32],
    b: &[f32],
    r0: usize,
    r1: usize,
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
) {
    // Sized to the largest block this problem actually uses, not the
    // MC/KC/NC maxima — small problems must not pay for 640 KB of zeroed
    // scratch they never touch.
    let kc_max = KC.min(k);
    let mut apack = vec![0.0f32; MC.min(r1 - r0).div_ceil(MR) * MR * kc_max];
    let mut bpack = vec![0.0f32; NC.min(n).div_ceil(NR) * NR * kc_max];
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let b_panels = nc.div_ceil(NR);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(rhs, b, k, n, pc, kc, jc, nc, &mut bpack);
            let mut ic = r0;
            while ic < r1 {
                let mc = MC.min(r1 - ic);
                pack_a(lhs, a, m, k, ic, mc, pc, kc, &mut apack);
                let a_panels = mc.div_ceil(MR);
                for pj in 0..b_panels {
                    let jr = pj * NR;
                    let nr = NR.min(nc - jr);
                    let bpanel = &bpack[pj * kc * NR..(pj + 1) * kc * NR];
                    for pi in 0..a_panels {
                        let ir = pi * MR;
                        let mr = MR.min(mc - ir);
                        let apanel = &apack[pi * kc * MR..(pi + 1) * kc * MR];
                        microkernel(apanel, bpanel, kc, mr, nr, c, ic - r0 + ir, n, jc + jr);
                    }
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Packs the `[ic..ic+mc) × [pc..pc+kc)` block of `A` into `MR`-row
/// panels, `p`-major within each panel; fringe rows are zero-padded (the
/// microkernel's `a == 0.0` skip makes the padding free).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    lhs: Lhs,
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    apack: &mut [f32],
) {
    for pi in 0..mc.div_ceil(MR) {
        let rows = MR.min(mc - pi * MR);
        let dst = &mut apack[pi * kc * MR..(pi + 1) * kc * MR];
        for p in 0..kc {
            let d = &mut dst[p * MR..p * MR + MR];
            for (r, slot) in d.iter_mut().enumerate() {
                *slot = if r < rows {
                    let row = ic + pi * MR + r;
                    let col = pc + p;
                    match lhs {
                        Lhs::RowMajor => a[row * k + col],
                        Lhs::Transposed => a[col * m + row],
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs the `[pc..pc+kc) × [jc..jc+nc)` block of `B` into `NR`-column
/// panels, `p`-major within each panel; fringe columns are zero-padded
/// (their accumulator lanes are computed but never stored).
#[allow(clippy::too_many_arguments)]
fn pack_b(
    rhs: Rhs,
    b: &[f32],
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bpack: &mut [f32],
) {
    for pj in 0..nc.div_ceil(NR) {
        let cols = NR.min(nc - pj * NR);
        let dst = &mut bpack[pj * kc * NR..(pj + 1) * kc * NR];
        for p in 0..kc {
            let d = &mut dst[p * NR..p * NR + NR];
            for (j, slot) in d.iter_mut().enumerate() {
                *slot = if j < cols {
                    let col = jc + pj * NR + j;
                    let row = pc + p;
                    match rhs {
                        Rhs::RowMajor => b[row * n + col],
                        Rhs::Transposed => b[col * k + row],
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// The `MR×NR` register microkernel: loads the running `C` tile, appends
/// this `KC` block's products in ascending-`p` order (skipping `a == 0.0`
/// terms exactly like the reference kernels), stores the tile back.
/// `inline(never)` is deliberate and load-bearing: inlined into
/// `gemm_range`'s loop nest, LLVM spills the accumulator tile to the stack
/// (~7× slower); as a standalone function the tile stays in registers.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn microkernel(
    apanel: &[f32],
    bpanel: &[f32],
    kc: usize,
    mr: usize,
    nr: usize,
    c: &mut [f32],
    row0: usize,
    ldc: usize,
    col0: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate().take(mr) {
        let base = (row0 + r) * ldc + col0;
        accr[..nr].copy_from_slice(&c[base..base + nr]);
    }
    let (arows, _) = apanel.as_chunks::<MR>();
    let (brows, _) = bpanel.as_chunks::<NR>();
    for (av, bv) in arows.iter().zip(brows).take(kc) {
        if av.iter().all(|&a| a != 0.0) {
            // Dense fast path: no `a` is zero, so the skip branch can never
            // fire — dropping it from the inner loops changes nothing but
            // lets the 4×8 block stay branch-free (and vectorized).
            for (&a, accr) in av.iter().zip(acc.iter_mut()) {
                for (slot, &bj) in accr.iter_mut().zip(bv) {
                    *slot += a * bj;
                }
            }
        } else {
            for (&a, accr) in av.iter().zip(acc.iter_mut()) {
                if a == 0.0 {
                    continue;
                }
                for (slot, &bj) in accr.iter_mut().zip(bv) {
                    *slot += a * bj;
                }
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let base = (row0 + r) * ldc + col0;
        c[base..base + nr].copy_from_slice(&accr[..nr]);
    }
}

/// Runs `f(i, chunk_i)` over `data.chunks_mut(chunk)` with chunks dealt
/// round-robin to at most `thread_budget` scoped threads. Each chunk is
/// visited exactly once by exactly one thread, so any `f` whose output for
/// chunk `i` depends only on `i` and shared read-only state is
/// deterministic at every thread count.
pub(crate) fn parallel_chunks<F>(data: &mut [f32], chunk: usize, thread_budget: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let total = data.len() / chunk;
    let t = thread_budget.clamp(1, total.max(1));
    if t == 1 {
        for (i, ch) in data.chunks_mut(chunk).enumerate() {
            f(i, ch);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut [f32])>> = (0..t).map(|_| Vec::new()).collect();
    for (i, ch) in data.chunks_mut(chunk).enumerate() {
        buckets[i % t].push((i, ch));
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            let f = &f;
            scope.spawn(move || {
                for (i, ch) in bucket {
                    f(i, ch);
                }
            });
        }
    });
}

/// Like [`parallel_chunks`], but each task `i` receives the `i`-th chunk
/// of two independent buffers (e.g. its `d_input` region and its private
/// partial-gradient slot).
pub(crate) fn parallel_chunk_pairs<F>(
    a: &mut [f32],
    chunk_a: usize,
    b: &mut [f32],
    chunk_b: usize,
    thread_budget: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    assert!(chunk_a > 0 && chunk_b > 0, "chunk sizes must be positive");
    let total = (a.len() / chunk_a).min(b.len() / chunk_b);
    let t = thread_budget.clamp(1, total.max(1));
    if t == 1 {
        for (i, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
            f(i, ca, cb);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut [f32], &mut [f32])>> =
        (0..t).map(|_| Vec::new()).collect();
    for (i, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
        buckets[i % t].push((i, ca, cb));
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            let f = &f;
            scope.spawn(move || {
                for (i, ca, cb) in bucket {
                    f(i, ca, cb);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, scale: f32, zero_every: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                if zero_every != 0 && i % zero_every == 0 {
                    0.0
                } else {
                    ((i as f32) * scale).sin()
                }
            })
            .collect()
    }

    fn reference_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn blocked_gemm_bits_match_reference_across_fringe_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 5),
            (2 * MR + 3, 2 * KC + 1, 2 * NR + 7),
            (130, 70, 33),
        ] {
            let a = fill(m * k, 0.13, 7);
            let b = fill(k * n, 0.29, 5);
            let want = reference_nn(&a, &b, m, k, n);
            for t in [1usize, 2, 5] {
                let mut c = vec![0.0f32; m * n];
                gemm_with_threads(Lhs::RowMajor, Rhs::RowMajor, &a, &b, m, k, n, &mut c, t);
                assert!(
                    c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "m={m} k={k} n={n} t={t}"
                );
            }
        }
    }

    #[test]
    fn transposed_layouts_match_row_major() {
        let (m, k, n) = (9usize, 11usize, 13usize);
        let a = fill(m * k, 0.17, 6);
        let b = fill(k * n, 0.23, 4);
        let want = reference_nn(&a, &b, m, k, n);
        // Aᵀ layout: store A as [k, m].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm(Lhs::Transposed, Rhs::RowMajor, &at, &b, m, k, n, &mut c);
        assert!(c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()));
        // Bᵀ layout: store B as [n, k].
        let mut bt = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm(Lhs::RowMajor, Rhs::Transposed, &a, &bt, m, k, n, &mut c);
        assert!(c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn parallel_chunks_visits_every_chunk_once() {
        let mut data = vec![0.0f32; 40];
        parallel_chunks(&mut data, 4, 3, |i, ch| {
            for v in ch.iter_mut() {
                *v += (i + 1) as f32;
            }
        });
        for (i, ch) in data.chunks(4).enumerate() {
            assert!(ch.iter().all(|&v| v == (i + 1) as f32));
        }
    }

    #[test]
    fn reference_mode_toggle_round_trips() {
        assert!(!reference_mode());
        set_reference_mode(true);
        assert!(reference_mode());
        set_reference_mode(false);
        assert!(!reference_mode());
    }
}
