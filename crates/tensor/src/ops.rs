//! Element-wise tensor operations.
//!
//! These operate in place or produce new tensors; shapes must match exactly
//! (no broadcasting — the NN layers never need it and explicit shapes catch
//! more bugs).

use crate::Tensor;

impl Tensor {
    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(
            self.as_slice().iter().map(|&x| f(x)).collect(),
            self.shape().dims(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        Tensor::from_vec(
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape().dims(),
        )
    }

    /// `self += alpha * other`, element-wise (the BLAS `axpy` primitive).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        self.map_inplace(|x| x * alpha);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element. At least one element always exists.
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (first occurrence).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.as_slice().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Number of elements whose absolute value is at most `eps`.
    pub fn count_near_zero(&self, eps: f32) -> usize {
        self.as_slice().iter().filter(|x| x.abs() <= eps).count()
    }

    /// Fraction of non-zero elements (|x| > eps).
    pub fn density(&self, eps: f32) -> f64 {
        1.0 - self.count_near_zero(eps) as f64 / self.len() as f64
    }

    /// Frobenius norm (L2 norm of the flattened tensor).
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_zip_compose() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.as_slice(), &[2.0, -4.0, 6.0]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[3.0, -6.0, 9.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::full(&[4], 1.0);
        let b = Tensor::full(&[4], 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 0.0, -3.0, 2.0], &[4]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.argmax(), 3);
        assert_eq!(a.count_near_zero(1e-9), 1);
        assert!((a.density(1e-9) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.zip(&b, |x, _| x);
    }

    #[test]
    fn norm_is_euclidean() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }
}
