//! Trained-network → simulator bridge.
//!
//! The paper's simulator "takes the weights and activations extracted from
//! PyTorch as input" (§IV). This module is that extraction for our stack,
//! phrased as explicit IR lowering passes: a trained [`Network`] lowers to
//! typed [`ModelIr`] (`Network → Ir`, via each layer's `Layer::describe`),
//! measured per-layer densities are attached as
//! [`SparsityAnnotation`]s, and the annotated IR drives the simulator
//! (`Ir → LayerWorkload`, via `Runner::run_ir`) — closing the
//! algorithm→hardware loop without any calibrated profile (or `Any`
//! downcast) in between.

use cscnn_ir::{IrError, ModelIr, SparsityAnnotation};
use cscnn_models::{lower, ModelDesc, SparsityProfile};
use cscnn_nn::datasets::SyntheticImages;
use cscnn_nn::Network;
use cscnn_sim::{Accelerator, RunStats, Runner, SimError};

/// Activation magnitude below which a value counts as zero when measuring
/// density (post-ReLU zeros are exact; this guards against denormals).
const ZERO_EPS: f32 = 1e-9;

/// A bridge failure: either the network would not lower to IR, or the
/// simulator rejected the lowered workloads.
#[derive(Clone, Debug, PartialEq)]
pub enum BridgeError {
    /// The `Network → Ir` (or `Ir → ModelDesc`) lowering failed.
    Ir(IrError),
    /// The `Ir → LayerWorkload` lowering or the simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::Ir(e) => write!(f, "lowering failed: {e}"),
            BridgeError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<IrError> for BridgeError {
    fn from(e: IrError) -> Self {
        BridgeError::Ir(e)
    }
}

impl From<SimError> for BridgeError {
    fn from(e: SimError) -> Self {
        BridgeError::Sim(e)
    }
}

/// Derives the weight-bearing layer descriptions of a trained network fed
/// with `(channels, height, width)` inputs: `Network → Ir → ModelDesc`.
///
/// # Errors
///
/// [`IrError`] naming the offending layer when the network contains a
/// layer that rejects its observed input shape, or has no weight-bearing
/// layers at all.
pub fn describe_network(
    net: &mut Network,
    name: &str,
    input: (usize, usize, usize),
) -> Result<ModelDesc, IrError> {
    let ir = net.to_ir(name, input)?;
    lower::to_model_desc(&ir)
}

/// Measures per-layer stored-weight and input-activation densities over a
/// batch of real data.
///
/// Weight densities come from each layer's typed
/// [`cscnn_nn::Layer::weight_density`] hook — measured over the *unique*
/// (canonical-half) positions for centrosymmetric conv layers, which is
/// the quantity the simulator's `centro` workloads expect.
pub fn measure_profile(net: &mut Network, data: &SyntheticImages, batch: usize) -> SparsityProfile {
    let indices: Vec<usize> = (0..data.len().min(batch)).collect();
    let (x, _) = data.batch(&indices);
    // Input-activation density of every layer (weight-bearing or not).
    let mut input_density = vec![0.0f64; net.len()];
    let _ = net.forward_observed(&x, |i, _, input| {
        input_density[i] = input.density(ZERO_EPS);
    });
    // Keep the pairs where the layer reports a stored-weight density.
    let mut weight_density = Vec::new();
    let mut activation_density = Vec::new();
    for i in 0..net.len() {
        if let Some(wd) = net.layer(i).weight_density(ZERO_EPS) {
            weight_density.push(wd);
            activation_density.push(input_density[i]);
        }
    }
    SparsityProfile {
        weight_density,
        activation_density,
    }
}

/// Lowers a trained network to typed IR with measured sparsity attached to
/// every weight-bearing node — the input `Runner::run_ir` expects.
///
/// # Errors
///
/// [`IrError`] when the network does not lower (see [`describe_network`]).
pub fn annotated_ir(
    net: &mut Network,
    name: &str,
    input: (usize, usize, usize),
    data: &SyntheticImages,
) -> Result<ModelIr, IrError> {
    let mut ir = net.to_ir(name, input)?;
    let profile = measure_profile(net, data, 16);
    for (i, node) in ir.weight_nodes_mut().enumerate() {
        node.set_sparsity(SparsityAnnotation {
            weight_density: profile.weight_density[i],
            activation_density: profile.activation_density[i],
        });
    }
    Ok(ir)
}

/// Simulates a *trained* network on an accelerator using measured shapes
/// and densities (no calibrated profiles anywhere in the path):
/// `Network → Ir → LayerWorkload`.
///
/// # Errors
///
/// [`BridgeError`] naming the offending layer when the network does not
/// lower to IR or the simulator rejects the annotated workloads.
pub fn simulate_trained(
    net: &mut Network,
    name: &str,
    input: (usize, usize, usize),
    data: &SyntheticImages,
    accelerator: &dyn Accelerator,
    seed: u64,
) -> Result<RunStats, BridgeError> {
    let ir = annotated_ir(net, name, input, data)?;
    Ok(Runner::new(seed).run_ir(accelerator, &ir)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_nn::centrosymmetric;
    use cscnn_nn::models;
    use cscnn_nn::pruning;
    use cscnn_nn::trainer::{TrainConfig, Trainer};
    use cscnn_sim::{baselines, CartesianAccelerator};

    #[test]
    fn describe_recovers_tiny_cnn_geometry() {
        let mut net = models::tiny_cnn(1, 16, 16, 4, 61);
        let desc = describe_network(&mut net, "tiny", (1, 16, 16)).expect("network lowers");
        assert_eq!(desc.layers.len(), 3); // 2 convs + 1 fc
        assert_eq!(desc.layers[0].c, 1);
        assert_eq!(desc.layers[0].k, 8);
        assert_eq!((desc.layers[0].h, desc.layers[0].w), (16, 16));
        assert_eq!(
            (desc.layers[1].h, desc.layers[1].w),
            (8, 8),
            "after pooling"
        );
        assert_eq!(desc.layers[2].kind, cscnn_models::LayerKind::FullyConnected);
        assert_eq!(desc.layers[2].c, 16 * 4 * 4);
    }

    #[test]
    fn describe_reports_empty_networks() {
        let mut net = Network::new();
        net.push(cscnn_nn::Relu::new());
        net.push(cscnn_nn::Flatten::new());
        let err = describe_network(&mut net, "empty", (1, 4, 4)).expect_err("no weight layers");
        assert_eq!(
            err,
            cscnn_ir::IrError::EmptyModel {
                model: "empty".into()
            }
        );
    }

    #[test]
    fn measured_profile_reflects_pruning_and_relu() {
        let data = SyntheticImages::generate(1, 16, 16, 3, 40, 0.12, 62);
        let (train, test) = data.split(0.25);
        let mut net = models::tiny_cnn(1, 16, 16, 3, 62);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        });
        let _ = trainer.fit(&mut net, &train, &test);
        let before = measure_profile(&mut net, &test, 16);
        // First layer input is the dense image; deeper inputs are post-ReLU.
        assert!(before.activation_density[0] > 0.95);
        assert!(before.activation_density[1] < 0.95);
        assert!(before.weight_density.iter().all(|&d| d > 0.95), "unpruned");
        // Prune and re-measure: weight densities must drop accordingly.
        for conv in net.conv_layers_mut() {
            pruning::prune_conv(conv, 0.4);
        }
        let after = measure_profile(&mut net, &test, 16);
        assert!(after.weight_density[0] < 0.5);
        assert!(after.weight_density[1] < 0.5);
    }

    #[test]
    fn centrosymmetric_density_is_measured_over_unique_positions() {
        let mut net = models::tiny_cnn(1, 16, 16, 3, 63);
        centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
        let data = SyntheticImages::generate(1, 16, 16, 3, 10, 0.12, 63);
        let profile = measure_profile(&mut net, &data, 8);
        // Unpruned centrosymmetric layers are fully dense over the unique
        // half.
        assert!(profile.weight_density[0] > 0.99);
    }

    #[test]
    fn annotated_ir_carries_measured_sparsity() {
        let data = SyntheticImages::generate(1, 16, 16, 3, 10, 0.12, 65);
        let mut net = models::tiny_cnn(1, 16, 16, 3, 65);
        let ir = annotated_ir(&mut net, "tiny", (1, 16, 16), &data).expect("network lowers");
        assert_eq!(ir.num_weight_nodes(), 3);
        for node in ir.weight_nodes() {
            let ann = node.sparsity().expect("annotated");
            assert!(ann.weight_density > 0.0 && ann.weight_density <= 1.0);
            assert!(ann.activation_density > 0.0 && ann.activation_density <= 1.0);
        }
    }

    #[test]
    fn trained_network_end_to_end_simulation_favors_cscnn() {
        let data = SyntheticImages::generate(1, 16, 16, 3, 40, 0.12, 64);
        let (train, test) = data.split(0.25);
        let mut net = models::tiny_cnn(1, 16, 16, 3, 64);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        });
        let _ = trainer.fit(&mut net, &train, &test);
        centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
        let _ = trainer.fit(&mut net, &train, &test);
        for conv in net.conv_layers_mut() {
            pruning::prune_conv(conv, 0.5);
        }
        let dcnn = simulate_trained(&mut net, "tiny", (1, 16, 16), &test, &baselines::dcnn(), 7)
            .expect("network simulates");
        let cscnn = simulate_trained(
            &mut net,
            "tiny",
            (1, 16, 16),
            &test,
            &CartesianAccelerator::cscnn(),
            7,
        )
        .expect("network simulates");
        assert!(
            cscnn.speedup_over(&dcnn) > 1.0,
            "measured-profile CSCNN speedup {}",
            cscnn.speedup_over(&dcnn)
        );
    }
}
