//! Trained-network → simulator bridge.
//!
//! The paper's simulator "takes the weights and activations extracted from
//! PyTorch as input" (§IV). This module is that extraction for our stack:
//! it derives a [`ModelDesc`] from a trained [`Network`], *measures* its
//! per-layer weight and activation densities on real data, and hands both
//! to the simulator — closing the algorithm→hardware loop without any
//! calibrated profile in between.

use cscnn_models::{LayerDesc, ModelDesc, SparsityProfile};
use cscnn_nn::datasets::SyntheticImages;
use cscnn_nn::{Conv2d, Linear, Network};
use cscnn_sim::{Accelerator, RunStats, Runner};
use cscnn_tensor::Tensor;

/// Activation magnitude below which a value counts as zero when measuring
/// density (post-ReLU zeros are exact; this guards against denormals).
const ZERO_EPS: f32 = 1e-9;

/// Derives the weight-bearing layer descriptions of a trained network fed
/// with `(channels, height, width)` inputs.
///
/// # Panics
///
/// Panics if the network contains a weight-bearing layer the bridge does
/// not recognize, or if a forward pass fails shape checks.
pub fn describe_network(net: &mut Network, name: &str, input: (usize, usize, usize)) -> ModelDesc {
    let (c, h, w) = input;
    // One tiny forward pass records each layer's input shape.
    let mut shapes: Vec<Vec<usize>> = Vec::new();
    let probe = Tensor::zeros(&[1, c, h, w]);
    let _ = net.forward_observed(&probe, |_, _, x| shapes.push(x.shape().dims().to_vec()));
    let mut layers = Vec::new();
    for (i, dims) in shapes.iter().enumerate() {
        let layer = net.layer_mut(i);
        if let Some(conv) = layer.as_any_mut().downcast_mut::<Conv2d>() {
            let wd = conv.weight().value.shape().dims().to_vec();
            let spec = *conv.spec();
            layers.push(LayerDesc::conv(
                &format!("L{i}"),
                wd[1],
                wd[0],
                wd[2],
                wd[3],
                dims[2],
                dims[3],
                spec.stride,
                spec.padding,
            ));
        } else if let Some(linear) = layer.as_any_mut().downcast_mut::<Linear>() {
            let wd = linear.weight().value.shape().dims().to_vec();
            layers.push(LayerDesc::fc(&format!("L{i}"), wd[1], wd[0]));
        }
    }
    ModelDesc::new(name, layers)
}

/// Measures per-layer stored-weight and input-activation densities over a
/// batch of real data.
///
/// For centrosymmetric conv layers the weight density is measured over the
/// *unique* (canonical-half) positions — the quantity the simulator's
/// `centro` workloads expect.
pub fn measure_profile(net: &mut Network, data: &SyntheticImages, batch: usize) -> SparsityProfile {
    let indices: Vec<usize> = (0..data.len().min(batch)).collect();
    let (x, _) = data.batch(&indices);
    // Activation densities of each weight-bearing layer's input.
    let mut act_density = Vec::new();
    let mut weight_layer_indices = Vec::new();
    let _ = net.forward_observed(&x, |i, name, input| {
        if name == "conv2d" || name == "linear" {
            act_density.push(input.density(ZERO_EPS));
            weight_layer_indices.push(i);
        }
    });
    // Stored-weight densities.
    let mut weight_density = Vec::new();
    for &i in &weight_layer_indices {
        let layer = net.layer_mut(i);
        if let Some(conv) = layer.as_any_mut().downcast_mut::<Conv2d>() {
            let dims = conv.weight().value.shape().dims().to_vec();
            let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
            let wv = conv.weight().value.as_slice();
            if conv.is_centrosymmetric() {
                let unique = cscnn_sparse::centro::unique_positions(r, s);
                let mut nnz = 0usize;
                for slice_idx in 0..k * c {
                    let base = slice_idx * r * s;
                    nnz += unique
                        .iter()
                        .filter(|&&(u, v)| wv[base + u * s + v].abs() > ZERO_EPS)
                        .count();
                }
                weight_density.push(nnz as f64 / (k * c * unique.len()) as f64);
            } else {
                weight_density.push(
                    wv.iter().filter(|x| x.abs() > ZERO_EPS).count() as f64 / wv.len() as f64,
                );
            }
        } else if let Some(linear) = layer.as_any_mut().downcast_mut::<Linear>() {
            let wv = linear.weight().value.as_slice();
            weight_density
                .push(wv.iter().filter(|x| x.abs() > ZERO_EPS).count() as f64 / wv.len() as f64);
        }
    }
    SparsityProfile {
        weight_density,
        activation_density: act_density,
    }
}

/// Simulates a *trained* network on an accelerator using measured shapes
/// and densities (no calibrated profiles anywhere in the path).
pub fn simulate_trained(
    net: &mut Network,
    name: &str,
    input: (usize, usize, usize),
    data: &SyntheticImages,
    accelerator: &dyn Accelerator,
    seed: u64,
) -> RunStats {
    let model = describe_network(net, name, input);
    let profile = measure_profile(net, data, 16);
    Runner::new(seed).run_model_with_profile(accelerator, &model, &profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_nn::centrosymmetric;
    use cscnn_nn::models;
    use cscnn_nn::pruning;
    use cscnn_nn::trainer::{TrainConfig, Trainer};
    use cscnn_sim::{baselines, CartesianAccelerator};

    #[test]
    fn describe_recovers_tiny_cnn_geometry() {
        let mut net = models::tiny_cnn(1, 16, 16, 4, 61);
        let desc = describe_network(&mut net, "tiny", (1, 16, 16));
        assert_eq!(desc.layers.len(), 3); // 2 convs + 1 fc
        assert_eq!(desc.layers[0].c, 1);
        assert_eq!(desc.layers[0].k, 8);
        assert_eq!((desc.layers[0].h, desc.layers[0].w), (16, 16));
        assert_eq!(
            (desc.layers[1].h, desc.layers[1].w),
            (8, 8),
            "after pooling"
        );
        assert_eq!(desc.layers[2].kind, cscnn_models::LayerKind::FullyConnected);
        assert_eq!(desc.layers[2].c, 16 * 4 * 4);
    }

    #[test]
    fn measured_profile_reflects_pruning_and_relu() {
        let data = SyntheticImages::generate(1, 16, 16, 3, 40, 0.12, 62);
        let (train, test) = data.split(0.25);
        let mut net = models::tiny_cnn(1, 16, 16, 3, 62);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        });
        let _ = trainer.fit(&mut net, &train, &test);
        let before = measure_profile(&mut net, &test, 16);
        // First layer input is the dense image; deeper inputs are post-ReLU.
        assert!(before.activation_density[0] > 0.95);
        assert!(before.activation_density[1] < 0.95);
        assert!(before.weight_density.iter().all(|&d| d > 0.95), "unpruned");
        // Prune and re-measure: weight densities must drop accordingly.
        for conv in net.conv_layers_mut() {
            pruning::prune_conv(conv, 0.4);
        }
        let after = measure_profile(&mut net, &test, 16);
        assert!(after.weight_density[0] < 0.5);
        assert!(after.weight_density[1] < 0.5);
    }

    #[test]
    fn centrosymmetric_density_is_measured_over_unique_positions() {
        let mut net = models::tiny_cnn(1, 16, 16, 3, 63);
        centrosymmetric::centrosymmetrize(&mut net);
        let data = SyntheticImages::generate(1, 16, 16, 3, 10, 0.12, 63);
        let profile = measure_profile(&mut net, &data, 8);
        // Unpruned centrosymmetric layers are fully dense over the unique
        // half.
        assert!(profile.weight_density[0] > 0.99);
    }

    #[test]
    fn trained_network_end_to_end_simulation_favors_cscnn() {
        let data = SyntheticImages::generate(1, 16, 16, 3, 40, 0.12, 64);
        let (train, test) = data.split(0.25);
        let mut net = models::tiny_cnn(1, 16, 16, 3, 64);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        });
        let _ = trainer.fit(&mut net, &train, &test);
        centrosymmetric::centrosymmetrize(&mut net);
        let _ = trainer.fit(&mut net, &train, &test);
        for conv in net.conv_layers_mut() {
            pruning::prune_conv(conv, 0.5);
        }
        let dcnn = simulate_trained(&mut net, "tiny", (1, 16, 16), &test, &baselines::dcnn(), 7);
        let cscnn = simulate_trained(
            &mut net,
            "tiny",
            (1, 16, 16),
            &test,
            &CartesianAccelerator::cscnn(),
            7,
        );
        assert!(
            cscnn.speedup_over(&dcnn) > 1.0,
            "measured-profile CSCNN speedup {}",
            cscnn.speedup_over(&dcnn)
        );
    }
}
