#![warn(missing_docs)]

//! # cscnn
//!
//! A full Rust reproduction of **"CSCNN: Algorithm-hardware Co-design for
//! CNN Accelerators using Centrosymmetric Filters"** (Li, Louri, Karanth,
//! Bunescu — HPCA 2021).
//!
//! The crate is a facade over the workspace:
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`tensor`] | N-d `f32` tensors, conv/pool/matmul kernels with backward passes |
//! | [`ir`] | The typed model IR every layer representation lowers through, plus its on-disk JSON artifact schema |
//! | [`json`] | The std-only JSON layer the IR artifacts and report exports serialize through |
//! | [`nn`] | Layers, SGD training, centrosymmetric constraint, pruning, synthetic datasets |
//! | [`sparse`] | Zero-run-length encodings, centrosymmetric filter storage |
//! | [`models`] | Shape catalogs of the benchmark CNNs + compression math |
//! | [`sim`] | The accelerator simulator, baselines, energy/area/DRAM models |
//!
//! The facade is also where the lowering chain closes: the bridge
//! functions ([`annotated_ir`], [`describe_network`], [`simulate_trained`])
//! carry a trained `nn` network through `ir` into `sim`, the same
//! `ModelDesc → ModelIr → LayerWorkload` path the catalog models take.
//!
//! Plus the high-level [`CompressionPipeline`] that performs the paper's
//! algorithm-side flow end-to-end — train → project (Eq. 5) → retrain
//! (Eq. 7) → prune → retrain — and [`evaluate_hardware`], which runs the
//! paper's accelerator comparison on any catalog model.
//!
//! # Quickstart
//!
//! ```
//! use cscnn::models::catalog;
//! use cscnn::sim::{baselines, CartesianAccelerator, Runner};
//!
//! // Simulate AlexNet on the CSCNN accelerator and the dense baseline.
//! let runner = Runner::new(42);
//! let model = catalog::lenet5();
//! let dense = runner.run_model(&baselines::dcnn(), &model);
//! let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
//! assert!(cscnn.speedup_over(&dense) > 1.0);
//! ```

pub use cscnn_ir as ir;
pub use cscnn_json as json;
pub use cscnn_models as models;
pub use cscnn_nn as nn;
pub use cscnn_sim as sim;
pub use cscnn_sparse as sparse;
pub use cscnn_tensor as tensor;

mod bridge;
mod functional;
mod pipeline;

pub use bridge::{annotated_ir, describe_network, measure_profile, simulate_trained, BridgeError};
pub use functional::forward_on_dataflow;
pub use pipeline::{evaluate_hardware, CompressionPipeline, HardwareComparison, PipelineReport};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::ir::{IrError, LayerNode, ModelIr, SparsityAnnotation};
    pub use crate::models::catalog;
    pub use crate::models::{CompressionScheme, ModelCompression, ModelDesc};
    pub use crate::nn::centrosymmetric;
    pub use crate::nn::datasets::SyntheticImages;
    pub use crate::nn::trainer::{TrainConfig, Trainer};
    pub use crate::nn::Network;
    pub use crate::sim::hybrid::CscnnEie;
    pub use crate::sim::{baselines, Accelerator, ArchConfig, CartesianAccelerator, Runner};
    pub use crate::{evaluate_hardware, CompressionPipeline};
}
