//! High-level co-design pipelines.

use cscnn_models::ModelDesc;
use cscnn_nn::centrosymmetric::{self, MultCount};
use cscnn_nn::datasets::SyntheticImages;
use cscnn_nn::pruning::{self, PruneConfig};
use cscnn_nn::trainer::{evaluate, TrainConfig, Trainer};
use cscnn_nn::{IrError, Network};
use cscnn_sim::{geomean, RunStats, Runner, SimError};

/// Results of the end-to-end algorithm pipeline (paper Fig. 2).
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Test accuracy of the dense baseline after initial training.
    pub baseline_accuracy: f64,
    /// Test accuracy immediately after the Eq. 5 centrosymmetric
    /// projection (before retraining) — the paper's "drops drastically"
    /// data point (99.2 % → 71.6 % for LeNet-5).
    pub post_projection_accuracy: f64,
    /// Test accuracy after centrosymmetric retraining.
    pub retrained_accuracy: f64,
    /// Test accuracy after pruning + final retraining (if pruning ran).
    pub pruned_accuracy: Option<f64>,
    /// Fraction of prunable weights kept by pruning (1.0 if disabled).
    pub kept_fraction: f64,
    /// Multiplication counts of the final network.
    pub mults: MultCount,
}

/// The paper's two-step compression flow (§II-B/§II-C, Fig. 2): train a
/// conventional network, project filters to centrosymmetric form (Eq. 5),
/// retrain with tied gradients (Eq. 7), optionally prune and retrain again.
///
/// # Example
///
/// ```no_run
/// use cscnn::nn::datasets::SyntheticImages;
/// use cscnn::nn::models;
/// use cscnn::nn::trainer::TrainConfig;
/// use cscnn::CompressionPipeline;
///
/// let data = SyntheticImages::generate(1, 16, 16, 4, 100, 0.15, 1);
/// let net = models::tiny_cnn(1, 16, 16, 4, 1);
/// let report = CompressionPipeline::new(TrainConfig::default())
///     .with_pruning(Default::default())
///     .run(net, &data, &models::tiny_cnn_conv_inputs(16, 16))
///     .expect("network lowers");
/// assert!(report.retrained_accuracy > report.post_projection_accuracy);
/// ```
pub struct CompressionPipeline {
    train: TrainConfig,
    retrain: TrainConfig,
    prune: Option<PruneConfig>,
}

impl CompressionPipeline {
    /// Creates a pipeline; `train` is used for both the dense phase and the
    /// retraining phases.
    pub fn new(train: TrainConfig) -> Self {
        CompressionPipeline {
            train,
            retrain: train,
            prune: None,
        }
    }

    /// Uses a different configuration for the retraining phases.
    pub fn with_retrain_config(mut self, retrain: TrainConfig) -> Self {
        self.retrain = retrain;
        self
    }

    /// Enables the pruning stage.
    pub fn with_pruning(mut self, config: PruneConfig) -> Self {
        self.prune = Some(config);
        self
    }

    /// Runs the full flow on `net` over `data` (split 80/20 train/test).
    /// `conv_inputs` lists the spatial input extent of each conv layer (for
    /// multiplication counting).
    ///
    /// # Errors
    ///
    /// [`IrError`] naming the offending layer when projection, pruning, or
    /// multiplication counting rejects the network (non-finite weights or
    /// a missing conv-input entry).
    pub fn run(
        &self,
        mut net: Network,
        data: &SyntheticImages,
        conv_inputs: &[(usize, usize)],
    ) -> Result<PipelineReport, IrError> {
        let (train_set, test_set) = data.split(0.2);
        // Phase 1: conventional training.
        let trainer = Trainer::new(self.train);
        let base = trainer.fit(&mut net, &train_set, &test_set);
        // Phase 2: Eq. 5 projection — accuracy collapses.
        centrosymmetric::centrosymmetrize(&mut net)?;
        let post_projection = evaluate(&mut net, &test_set, self.train.batch_size);
        // Phase 3: Eq. 7 retraining recovers accuracy.
        let retrainer = Trainer::new(self.retrain);
        let retrained = retrainer.fit(&mut net, &train_set, &test_set);
        // Phase 4 (optional): prune + retrain.
        let (pruned_accuracy, kept_fraction) = if let Some(cfg) = &self.prune {
            let kept = pruning::prune_network(&mut net, cfg)?;
            let rep = retrainer.fit(&mut net, &train_set, &test_set);
            (Some(rep.final_test_accuracy), kept)
        } else {
            (None, 1.0)
        };
        debug_assert!(centrosymmetric::check_invariant(&mut net, 1e-4));
        let mults = centrosymmetric::count_multiplications(&mut net, conv_inputs)?;
        Ok(PipelineReport {
            baseline_accuracy: base.final_test_accuracy,
            post_projection_accuracy: post_projection,
            retrained_accuracy: retrained.final_test_accuracy,
            pruned_accuracy,
            kept_fraction,
            mults,
        })
    }
}

/// One accelerator's results relative to the DCNN baseline.
#[derive(Clone, Debug)]
pub struct HardwareComparison {
    /// Accelerator name.
    pub accelerator: String,
    /// Per-model run statistics, in catalog order.
    pub runs: Vec<RunStats>,
    /// Geometric-mean speedup over DCNN.
    pub speedup_over_dcnn: f64,
    /// Geometric-mean on-chip energy gain over DCNN.
    pub energy_gain_over_dcnn: f64,
    /// Geometric-mean EDP gain over DCNN.
    pub edp_gain_over_dcnn: f64,
}

/// Runs the paper's full accelerator comparison (Fig. 7 / Fig. 9) for the
/// given models, returning one [`HardwareComparison`] per accelerator in
/// plotting order (DCNN first, CSCNN last).
///
/// # Errors
///
/// [`SimError::WorkerPanicked`] naming the model whose simulation worker
/// panicked, if any did.
pub fn evaluate_hardware(
    models: &[ModelDesc],
    seed: u64,
) -> Result<Vec<HardwareComparison>, SimError> {
    let runner = Runner::new(seed);
    let accs = cscnn_sim::baselines::evaluation_accelerators();
    let results = runner.run_suite(&accs, models)?;
    Ok((0..accs.len())
        .map(|ai| {
            let runs: Vec<RunStats> = results.iter().map(|row| row[ai].clone()).collect();
            let speedups: Vec<f64> = results
                .iter()
                .map(|row| row[0].total_time_s() / row[ai].total_time_s())
                .collect();
            let energy: Vec<f64> = results
                .iter()
                .map(|row| row[0].total_on_chip_pj() / row[ai].total_on_chip_pj())
                .collect();
            let edp: Vec<f64> = results
                .iter()
                .map(|row| row[0].edp() / row[ai].edp())
                .collect();
            HardwareComparison {
                accelerator: accs[ai].name().to_string(),
                runs,
                speedup_over_dcnn: geomean(&speedups),
                energy_gain_over_dcnn: geomean(&energy),
                edp_gain_over_dcnn: geomean(&edp),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_models::catalog;
    use cscnn_nn::models;

    #[test]
    fn pipeline_reproduces_collapse_and_recovery() {
        let data = SyntheticImages::generate(1, 8, 8, 3, 50, 0.1, 11);
        let net = models::tiny_cnn(1, 8, 8, 3, 11);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        };
        let report = CompressionPipeline::new(cfg)
            .run(net, &data, &[(8, 8), (4, 4)])
            .expect("network lowers");
        assert!(report.baseline_accuracy > 0.55, "baseline should learn");
        assert!(
            report.retrained_accuracy > report.post_projection_accuracy - 0.05,
            "retraining must not end below the projected network"
        );
        assert!(report.mults.centro_reduction() > 1.5);
    }

    #[test]
    fn hardware_evaluation_orders_accelerators() {
        let comparisons = evaluate_hardware(&[catalog::lenet5()], 5).expect("no worker panics");
        assert_eq!(comparisons.len(), 9);
        assert_eq!(comparisons[0].accelerator, "DCNN");
        assert!((comparisons[0].speedup_over_dcnn - 1.0).abs() < 1e-9);
        let cscnn = comparisons.last().expect("nine accelerators");
        assert_eq!(cscnn.accelerator, "CSCNN");
        assert!(cscnn.speedup_over_dcnn > 1.0);
    }
}
