//! Functional end-to-end execution of a trained network on the
//! accelerator's detailed dataflow.
//!
//! The timing simulator answers "how fast"; this module answers "does the
//! dataflow compute the right numbers". It drives every conv layer of a
//! real trained [`Network`] through [`cscnn_sim::pe_detailed`] — actual
//! weight fibers (the centrosymmetric unique half when the layer is
//! constrained), actual activation coordinates, the CCU's dual-coordinate
//! scatter, halo-plane accumulation and cropping — and the remaining
//! layers through `Layer::forward`, i.e. the blocked multithreaded CPU
//! kernels of `cscnn_tensor::kernels` (bit-identical to the naive
//! reference kernels at any thread count), producing logits that must
//! equal `Network::forward` exactly (up to f32 accumulation-order noise).
//!
//! This is the reproduction's stand-in for the paper's RTL prototype
//! correctness argument.

use cscnn_nn::{Conv2d, Layer, Network};
use cscnn_sim::pe_detailed::{simulate_detailed, ChannelFibers, PeGeometry, WeightEntry};
use cscnn_sparse::centro::unique_positions;
use cscnn_tensor::Tensor;

/// Runs `input` (`[1, C, H, W]`) through the network, executing every conv
/// layer on the detailed accelerator dataflow. Returns the logits.
///
/// Statistics are accumulated into `mults_out` (total multiplications the
/// dataflow issued) so callers can verify the reuse arithmetic.
///
/// # Panics
///
/// Panics if the batch is not 1, or if a conv layer has stride > 1
/// (outside the dataflow validation scope). Grouped and depthwise convs
/// are supported: each group runs as an independent sub-convolution on the
/// PE array, mirroring how the accelerator partitions the filter/channel
/// space.
pub fn forward_on_dataflow(net: &mut Network, input: &Tensor, mults_out: &mut u64) -> Tensor {
    assert_eq!(input.shape().dim(0), 1, "dataflow validation runs batch 1");
    // Collect each layer's input by observing a reference pass, then
    // replay: conv layers via the detailed dataflow, others via forward.
    // (Simplest correct approach: run layer by layer ourselves.)
    let n_layers = net.len();
    let mut x = input.clone();
    for i in 0..n_layers {
        let layer = net.layer_mut(i);
        if let Some(conv) = layer.as_conv_mut() {
            x = conv_on_dataflow(conv, &x, mults_out);
        } else {
            x = layer.forward(&x);
        }
    }
    x
}

/// Executes one conv layer on the detailed PE dataflow.
///
/// Grouped (and depthwise, `groups == c`) convolutions run as `groups`
/// independent sub-convolutions: group `g` sees `C/groups` input channels
/// and `K/groups` filters, exactly the `conv2d_grouped` semantics, so each
/// group is a standard Cartesian-product workload for the PE array.
fn conv_on_dataflow(conv: &mut Conv2d, input: &Tensor, mults_out: &mut u64) -> Tensor {
    let spec = *conv.spec();
    assert_eq!(spec.stride, 1, "dataflow validation covers unit stride");
    let dims = input.shape().dims();
    let (c, h, w) = (dims[1], dims[2], dims[3]);
    let wd = conv.weight().value.shape().dims().to_vec();
    let (k, r, s) = (wd[0], wd[2], wd[3]);
    let groups = conv.groups();
    let (kg, c_local) = (k / groups, c / groups);
    let dual = conv.is_centrosymmetric();
    let geo = PeGeometry {
        px: 4,
        py: 4,
        kernel_h: r,
        kernel_w: s,
        tile_h: h,
        tile_w: w,
        k_count: kg,
        dual,
    };
    let wv = conv.weight().value.as_slice();
    let xv = input.as_slice();
    let (oh, ow) = spec.output_dim(h, w);
    let acc_w = geo.acc_w();
    let bias = conv.params()[1].value.clone();
    let mut out = Tensor::zeros(&[1, k, oh, ow]);
    let dst = out.as_mut_slice();
    for g in 0..groups {
        // Build the group's fibers: per input channel, the non-zero weights
        // of every filter in the group (unique half when centrosymmetric)
        // and the non-zero activations. Weight storage is `[K, C/groups,
        // R, S]`, filter indices inside the PE geometry are group-local.
        let mut channels = Vec::with_capacity(c_local);
        for cl in 0..c_local {
            let ci = g * c_local + cl;
            let mut weights = Vec::new();
            for kl in 0..kg {
                let base = ((g * kg + kl) * c_local + cl) * r * s;
                if dual {
                    for (u, v) in unique_positions(r, s) {
                        let value = wv[base + u * s + v];
                        if value != 0.0 {
                            weights.push(WeightEntry {
                                k: kl as u16,
                                r: u as u8,
                                s: v as u8,
                                value,
                            });
                        }
                    }
                } else {
                    for u in 0..r {
                        for v in 0..s {
                            let value = wv[base + u * s + v];
                            if value != 0.0 {
                                weights.push(WeightEntry {
                                    k: kl as u16,
                                    r: u as u8,
                                    s: v as u8,
                                    value,
                                });
                            }
                        }
                    }
                }
            }
            let mut acts = Vec::new();
            for y in 0..h {
                for xx in 0..w {
                    let value = xv[(ci * h + y) * w + xx];
                    if value != 0.0 {
                        acts.push((y as u16, xx as u16, value));
                    }
                }
            }
            channels.push(ChannelFibers { weights, acts });
        }
        let result = simulate_detailed(&geo, &channels)
            .expect("fibers are built from the layer's own dims, so they are in range");
        *mults_out += result.counters.mults;
        // Crop the halo-extended full-mode planes to the layer's padded
        // output and add the bias:
        // out(oy, ox) = acc(oy + R-1-p, ox + S-1-p).
        for kl in 0..kg {
            let ki = g * kg + kl;
            let plane = &result.partial_sums[kl];
            let b = bias.as_slice()[ki];
            for oy in 0..oh {
                for ox in 0..ow {
                    let ay = oy + (r - 1) - spec.padding;
                    let ax = ox + (s - 1) - spec.padding;
                    dst[(ki * oh + oy) * ow + ox] = plane[ay * acc_w + ax] + b;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_nn::centrosymmetric;
    use cscnn_nn::datasets::SyntheticImages;
    use cscnn_nn::models;
    use cscnn_nn::pruning;
    use cscnn_nn::trainer::{TrainConfig, Trainer};

    fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn dataflow_matches_reference_forward_dense() {
        let data = SyntheticImages::generate(1, 16, 16, 3, 20, 0.12, 81);
        let mut net = models::tiny_cnn(1, 16, 16, 3, 81);
        let (x, _) = data.batch(&[0]);
        let reference = net.forward(&x);
        let mut mults = 0u64;
        let dataflow = forward_on_dataflow(&mut net, &x, &mut mults);
        assert_eq!(reference.shape(), dataflow.shape());
        let diff = max_abs_diff(&reference, &dataflow);
        assert!(diff < 1e-3, "max diff {diff}");
        assert!(mults > 0);
    }

    #[test]
    fn dataflow_matches_reference_after_full_compression() {
        // Train → centrosymmetrize → retrain → prune → retrain, then run
        // the compressed network on the dual-scatter dataflow: the logits
        // must match the reference forward, and the dataflow must issue
        // roughly half the multiplications of the dense run.
        let data = SyntheticImages::generate(1, 16, 16, 3, 40, 0.12, 82);
        let (train, test) = data.split(0.25);
        let mut net = models::tiny_cnn(1, 16, 16, 3, 82);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        });
        let _ = trainer.fit(&mut net, &train, &test);
        let (x, _) = test.batch(&[0]);
        let mut dense_mults = 0u64;
        let _ = forward_on_dataflow(&mut net, &x, &mut dense_mults);

        centrosymmetric::centrosymmetrize(&mut net).expect("finite weights");
        let _ = trainer.fit(&mut net, &train, &test);
        for conv in net.conv_layers_mut() {
            pruning::prune_conv(conv, 0.6);
        }
        let _ = trainer.fit(&mut net, &train, &test);

        let reference = net.forward(&x);
        let mut compressed_mults = 0u64;
        let dataflow = forward_on_dataflow(&mut net, &x, &mut compressed_mults);
        let diff = max_abs_diff(&reference, &dataflow);
        assert!(diff < 1e-3, "max diff {diff}");
        // Unique-half storage + pruning: well under dense multiplications.
        assert!(
            (compressed_mults as f64) < 0.65 * dense_mults as f64,
            "compressed {compressed_mults} vs dense {dense_mults}"
        );
    }

    #[test]
    fn dataflow_matches_reference_on_grouped_and_depthwise_convs() {
        // mobile_cnn carries a standard conv, a depthwise 3×3 (groups == C)
        // and a pointwise 1×1 — Network::forward computes the grouped
        // layers through conv2d_grouped, so matching its logits is parity
        // against the grouped reference kernel.
        let data = SyntheticImages::generate(3, 16, 16, 4, 12, 0.12, 84);
        let mut net = models::mobile_cnn(3, 16, 16, 4, 84);
        let (x, _) = data.batch(&[0]);
        let reference = net.forward(&x);
        let mut mults = 0u64;
        let dataflow = forward_on_dataflow(&mut net, &x, &mut mults);
        assert_eq!(reference.shape(), dataflow.shape());
        let diff = max_abs_diff(&reference, &dataflow);
        assert!(diff < 1e-3, "max diff {diff}");
        assert!(mults > 0);
    }

    #[test]
    fn grouped_conv_on_dataflow_matches_conv2d_grouped_directly() {
        use cscnn_tensor::conv2d_grouped;
        // Per-layer parity (not just end-to-end logits): run the depthwise
        // conv of mobile_cnn on the dataflow and against conv2d_grouped on
        // the same input.
        let mut net = models::mobile_cnn(2, 8, 8, 3, 85);
        let x = {
            let data = SyntheticImages::generate(2, 8, 8, 3, 4, 0.15, 85);
            let (x, _) = data.batch(&[1]);
            x
        };
        let conv = net
            .conv_layers_mut()
            .nth(1)
            .expect("mobile_cnn's second conv is depthwise");
        assert!(conv.groups() > 1, "test must exercise grouping");
        let spec = *conv.spec();
        // Feed a [1, 2, 8, 8] slice shaped like the layer's real input:
        // the first conv maps 2→8 channels, so build an 8-channel input by
        // tiling.
        let mut input = Tensor::zeros(&[1, 8, 8, 8]);
        {
            let src = x.as_slice().to_vec();
            let dst = input.as_mut_slice();
            for ci in 0..8 {
                let plane = &src[(ci % 2) * 64..(ci % 2) * 64 + 64];
                dst[ci * 64..(ci + 1) * 64].copy_from_slice(plane);
            }
        }
        let reference = conv2d_grouped(
            &input,
            &conv.weight().value,
            &conv.params()[1].value,
            &spec,
            conv.groups(),
        );
        let mut mults = 0u64;
        let dataflow = conv_on_dataflow(conv, &input, &mut mults);
        assert_eq!(reference.shape(), dataflow.shape());
        let diff = max_abs_diff(&reference, &dataflow);
        assert!(diff < 1e-4, "max diff {diff}");
    }

    #[test]
    fn dataflow_handles_all_zero_input() {
        let mut net = models::tiny_cnn(1, 16, 16, 2, 83);
        let x = Tensor::zeros(&[1, 1, 16, 16]);
        let reference = net.forward(&x);
        let mut mults = 0u64;
        let dataflow = forward_on_dataflow(&mut net, &x, &mut mults);
        let diff = max_abs_diff(&reference, &dataflow);
        assert!(diff < 1e-4, "max diff {diff}");
        assert_eq!(mults, 0, "no activations -> no multiplications");
    }
}
