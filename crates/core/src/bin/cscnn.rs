//! `cscnn` — command-line front end for the CSCNN reproduction.
//!
//! ```text
//! cscnn models                         list benchmark networks
//! cscnn compress <model>               compression-scheme comparison
//! cscnn simulate <model> [options]     run the accelerator comparison
//!     --accelerator <name>             one accelerator only (default: all)
//!     --seed <n>                       workload seed (default 42)
//!     --config <path>                  ArchConfig JSON override
//!     --json <path> | --csv <path>     export per-layer results
//!     --trace <path>                   Chrome-tracing timeline export
//! cscnn area                           Table V PE area model
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cscnn::models::{catalog, CompressionScheme, ModelCompression};
use cscnn::sim::area::PeArea;
use cscnn::sim::{
    baselines, export, trace, Accelerator, ArchConfig, CartesianAccelerator, RunStats, Runner,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => cmd_models(),
        Some("compress") => cmd_compress(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("area") => cmd_area(),
        Some("help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("cscnn — CSCNN (HPCA 2021) reproduction CLI\n");
    println!("usage:");
    println!("  cscnn models");
    println!("  cscnn compress <model>");
    println!("  cscnn simulate <model> [--accelerator NAME] [--seed N] [--json PATH] [--csv PATH]");
    println!("  cscnn area");
    println!("\nmodels: lenet5, convnet, alexnet, vgg16, vgg16-cifar, resnet-18/50/152,");
    println!("        resnext-101, wideresnet, squeezenet, shufflenet-v2, efficientnet-b7,");
    println!("        googlenet, mobilenet-v1");
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>10}",
        "model", "layers", "GMACs", "Mweights", "CSCNN red."
    );
    let mut models = catalog::evaluation_suite();
    models.push(catalog::vgg16_cifar());
    models.push(catalog::wide_resnet28_10());
    models.push(catalog::squeezenet());
    models.push(catalog::resnext101());
    models.push(catalog::googlenet());
    models.push(catalog::mobilenet_v1());
    for m in models {
        let red = ModelCompression::new(m.clone(), CompressionScheme::Cscnn).reduction();
        println!(
            "{:<16} {:>8} {:>12.2} {:>12.1} {:>9.2}x",
            m.name,
            m.layers.len(),
            m.dense_mults() as f64 / 1e9,
            m.weights() as f64 / 1e6,
            red
        );
    }
    ExitCode::SUCCESS
}

fn cmd_compress(args: &[String]) -> ExitCode {
    let Some(model) = args.first().and_then(|n| catalog::by_name(n)) else {
        eprintln!("usage: cscnn compress <model>");
        return ExitCode::FAILURE;
    };
    println!(
        "{}: {} layers, {:.2} GMACs dense\n",
        model.name,
        model.layers.len(),
        model.dense_mults() as f64 / 1e9
    );
    println!(
        "{:<18} {:>10} {:>12}",
        "scheme", "mult red.", "weight comp."
    );
    for scheme in [
        CompressionScheme::Dense,
        CompressionScheme::DeepCompression,
        CompressionScheme::Cscnn,
        CompressionScheme::CscnnPruning,
    ] {
        let mc = ModelCompression::new(model.clone(), scheme);
        println!(
            "{:<18} {:>9.2}x {:>11.2}x",
            scheme.label(),
            mc.reduction(),
            mc.weight_compression()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    let Some(model) = args.first().and_then(|n| catalog::by_name(n)) else {
        eprintln!("usage: cscnn simulate <model> [--accelerator NAME] [--seed N] [--json PATH]");
        return ExitCode::FAILURE;
    };
    let mut seed = 42u64;
    let mut only: Option<String> = None;
    let mut json: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut config: Option<ArchConfig> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed needs a number");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--accelerator" => {
                i += 1;
                only = args.get(i).cloned();
                if only.is_none() {
                    eprintln!("--accelerator needs a name");
                    return ExitCode::FAILURE;
                }
            }
            "--json" => {
                i += 1;
                json = args.get(i).map(PathBuf::from);
            }
            "--csv" => {
                i += 1;
                csv = args.get(i).map(PathBuf::from);
            }
            "--trace" => {
                i += 1;
                trace_path = args.get(i).map(PathBuf::from);
            }
            "--config" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--config needs a path");
                    return ExitCode::FAILURE;
                };
                config = match std::fs::read_to_string(path)
                    .map_err(|e| e.to_string())
                    .and_then(|s| cscnn_json::from_str::<ArchConfig>(&s).map_err(|e| e.to_string()))
                    .and_then(|c| c.validate().map(|()| c).map_err(|e| e.to_string()))
                {
                    Ok(c) => Some(c),
                    Err(e) => {
                        eprintln!("failed to load config {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown option '{other}'");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let runner = Runner::new(seed);
    let accs: Vec<Box<dyn Accelerator>> = baselines::evaluation_accelerators();
    let selected: Vec<&Box<dyn Accelerator>> = match &only {
        Some(name) => {
            let found: Vec<_> = accs
                .iter()
                .filter(|a| a.name().eq_ignore_ascii_case(name))
                .collect();
            if found.is_empty() {
                eprintln!(
                    "unknown accelerator '{name}'; choose from: {}",
                    accs.iter().map(|a| a.name()).collect::<Vec<_>>().join(", ")
                );
                return ExitCode::FAILURE;
            }
            found
        }
        None => accs.iter().collect(),
    };
    println!("simulating {} (seed {seed})\n", model.name);
    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>12}",
        "accelerator", "time (ms)", "cycles", "energy (uJ)", "EDP (nJ*s)"
    );
    let mut runs: Vec<RunStats> = Vec::new();
    for acc in selected {
        // An explicit --config overrides each accelerator's own sizing for
        // the Cartesian machines (analytic baselines keep their models).
        let stats = if let Some(cfg) = &config {
            let boxed: Box<dyn Accelerator> = match acc.name() {
                "CSCNN" => Box::new(CartesianAccelerator::cscnn().with_config(cfg.clone())),
                "SCNN" => Box::new(CartesianAccelerator::scnn().with_config(cfg.clone())),
                _ => {
                    eprintln!(
                        "--config applies to SCNN/CSCNN; {} uses its defaults",
                        acc.name()
                    );
                    runner.run_model(acc.as_ref(), &model);
                    continue;
                }
            };
            runner.run_model(boxed.as_ref(), &model)
        } else {
            runner.run_model(acc.as_ref(), &model)
        };
        println!(
            "{:<14} {:>12.3} {:>14} {:>14.1} {:>12.3}",
            stats.accelerator,
            stats.total_time_s() * 1e3,
            stats.total_cycles(),
            stats.total_on_chip_pj() * 1e-6,
            stats.edp() * 1e9
        );
        runs.push(stats);
    }
    if let Some(path) = json {
        match export::write_json(&runs, &path) {
            Ok(()) => println!("\nJSON written to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = csv {
        match export::write_csv(&runs, &path) {
            Ok(()) => println!("CSV written to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = trace_path {
        match trace::write_chrome_trace(&runs, &path) {
            Ok(()) => println!(
                "Chrome trace written to {} (open in chrome://tracing)",
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_area() -> ExitCode {
    let scnn = PeArea::scnn(&ArchConfig::paper_scnn());
    let cscnn = PeArea::cscnn(&ArchConfig::paper());
    println!("{:<10} {:>10} {:>10}", "component", "SCNN", "CSCNN");
    for (name, s, c) in [
        ("MulArray", scnn.mul_array, cscnn.mul_array),
        ("IB+OB", scnn.ib_ob, cscnn.ib_ob),
        ("WB", scnn.wb, cscnn.wb),
        ("AB", scnn.ab, cscnn.ab),
        ("Scatter", scnn.scatter, cscnn.scatter),
        ("CCU", scnn.ccu, cscnn.ccu),
        ("PPU", scnn.ppu, cscnn.ppu),
        ("Total", scnn.total(), cscnn.total()),
    ] {
        println!("{name:<10} {s:>9.2}  {c:>9.2}");
    }
    println!(
        "\noverhead: {:.1} % (paper: 17.7 %)",
        100.0 * (cscnn.total() / scnn.total() - 1.0)
    );
    ExitCode::SUCCESS
}
