//! PE area model (Table V).
//!
//! Component area constants are calibrated against the paper's Table V
//! (FreePDK45, Synopsys synthesis for logic, CACTI 6.0 for buffers). The
//! model is parameterized by capacity, so configurations other than the
//! paper's can be explored.

use crate::ArchConfig;

/// Per-component PE area in mm² (45 nm).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PeArea {
    /// Multiplier array.
    pub mul_array: f64,
    /// Input + output activation buffers.
    pub ib_ob: f64,
    /// Weight buffer.
    pub wb: f64,
    /// Accumulator buffer(s).
    pub ab: f64,
    /// Scatter crossbar network(s).
    pub scatter: f64,
    /// Coordinate computation unit.
    pub ccu: f64,
    /// Post-processing unit.
    pub ppu: f64,
}

cscnn_json::impl_to_json!(PeArea {
    mul_array,
    ib_ob,
    wb,
    ab,
    scatter,
    ccu,
    ppu,
});

/// mm² per 16-bit multiplier (16 multipliers ≈ 0.05 mm²).
const MULT_MM2: f64 = 0.05 / 16.0;
/// mm² per KB for plain (lightly banked) activation SRAM (40 KB ≈ 0.41).
const PLAIN_SRAM_MM2_PER_KB: f64 = 0.41 / 40.0;
/// mm² per KB for the weight buffer (16 KB ≈ 0.22 — wider ports).
const WB_SRAM_MM2_PER_KB: f64 = 0.22 / 16.0;
/// mm² per KB for the heavily banked accumulator SRAM (6 KB ≈ 0.14).
const AB_SRAM_MM2_PER_KB: f64 = 0.14 / 6.0;
/// mm² per 16×32 scatter crossbar.
const CROSSBAR_MM2: f64 = 0.11;
/// CCU base area; the CSCNN CCU also computes dual coordinates (~2×).
const CCU_BASE_MM2: f64 = 0.03;
/// PPU area.
const PPU_MM2: f64 = 0.13;

impl PeArea {
    /// Area of an SCNN-style PE for `cfg` (single accumulator buffer,
    /// single crossbar, plain CCU).
    pub fn scnn(cfg: &ArchConfig) -> Self {
        PeArea {
            mul_array: cfg.multipliers_per_pe() as f64 * MULT_MM2,
            ib_ob: cfg.ib_ob_bytes as f64 / 1024.0 * PLAIN_SRAM_MM2_PER_KB,
            wb: cfg.wb_bytes as f64 / 1024.0 * WB_SRAM_MM2_PER_KB,
            ab: cfg.ab_bytes as f64 / 1024.0 * AB_SRAM_MM2_PER_KB,
            scatter: CROSSBAR_MM2,
            ccu: CCU_BASE_MM2,
            ppu: PPU_MM2,
        }
    }

    /// Area of a CSCNN PE for `cfg`: doubled accumulator buffer and scatter
    /// crossbar, dual-coordinate CCU.
    pub fn cscnn(cfg: &ArchConfig) -> Self {
        let n = cfg.accumulator_buffers as f64;
        PeArea {
            mul_array: cfg.multipliers_per_pe() as f64 * MULT_MM2,
            ib_ob: cfg.ib_ob_bytes as f64 / 1024.0 * PLAIN_SRAM_MM2_PER_KB,
            wb: cfg.wb_bytes as f64 / 1024.0 * WB_SRAM_MM2_PER_KB,
            ab: n * cfg.ab_bytes as f64 / 1024.0 * AB_SRAM_MM2_PER_KB,
            scatter: n * CROSSBAR_MM2,
            ccu: CCU_BASE_MM2 * (1.0 + (n - 1.0) * 0.67),
            ppu: PPU_MM2,
        }
    }

    /// Total PE area.
    pub fn total(&self) -> f64 {
        self.mul_array + self.ib_ob + self.wb + self.ab + self.scatter + self.ccu + self.ppu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scnn_pe_area_matches_table_v() {
        let a = PeArea::scnn(&ArchConfig::paper_scnn());
        assert!((a.total() - 1.07).abs() < 0.05, "total={}", a.total());
        assert!((a.mul_array - 0.05).abs() < 0.005);
        assert!((a.ib_ob - 0.41).abs() < 0.01);
        assert!((a.wb - 0.22).abs() < 0.01);
        assert!((a.ab - 0.14).abs() < 0.01);
    }

    #[test]
    fn cscnn_pe_area_matches_table_v() {
        let a = PeArea::cscnn(&ArchConfig::paper());
        assert!((a.total() - 1.26).abs() < 0.06, "total={}", a.total());
        assert!((a.wb - 0.14).abs() < 0.01, "wb={}", a.wb);
        assert!((a.ab - 0.28).abs() < 0.02, "ab={}", a.ab);
        assert!((a.scatter - 0.22).abs() < 0.01);
    }

    #[test]
    fn cscnn_overhead_is_moderate() {
        let scnn = PeArea::scnn(&ArchConfig::paper_scnn()).total();
        let cscnn = PeArea::cscnn(&ArchConfig::paper()).total();
        let overhead = cscnn / scnn - 1.0;
        // Paper: 17.7 % overhead.
        assert!((0.12..=0.25).contains(&overhead), "overhead={overhead:.3}");
    }

    #[test]
    fn memories_dominate_pe_area() {
        for a in [
            PeArea::scnn(&ArchConfig::paper_scnn()),
            PeArea::cscnn(&ArchConfig::paper()),
        ] {
            let mem = a.ib_ob + a.wb + a.ab;
            assert!(mem / a.total() > 0.5, "memories contribute >50%");
            assert!(a.mul_array / a.total() < 0.05, "multipliers under 5%");
        }
    }
}
