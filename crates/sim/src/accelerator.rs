//! The Cartesian-product accelerator model, covering both SCNN (no
//! multiplication reuse, planar tiling) and CSCNN (dual accumulation, mixed
//! tiling) plus every tiling ablation of Fig. 11.

use cscnn_models::{CompressionScheme, LayerKind};

use crate::crossbar;
use crate::interface::{Accelerator, Characteristics, LayerContext, TrafficModel};
use crate::pe::{CartesianPe, PeResult};
use crate::report::LayerStats;
use crate::tiling::{self, TilingStrategy};
use crate::util::{count_from_f64, to_count};
use crate::ArchConfig;

/// A configurable Cartesian-product accelerator.
///
/// # Example
///
/// ```
/// use cscnn_sim::CartesianAccelerator;
/// use cscnn_sim::interface::Accelerator;
///
/// let cscnn = CartesianAccelerator::cscnn();
/// assert_eq!(cscnn.name(), "CSCNN");
/// let scnn = CartesianAccelerator::scnn();
/// assert_eq!(scnn.characteristics().sparsity, "A+W");
/// ```
#[derive(Clone, Debug)]
pub struct CartesianAccelerator {
    name: &'static str,
    scheme: CompressionScheme,
    tiling: TilingStrategy,
    dual: bool,
    balanced: bool,
    mapper: bool,
    config: ArchConfig,
}

impl CartesianAccelerator {
    /// The paper's CSCNN accelerator: multiplication reuse, mixed tiling,
    /// density-sorted filter assignment, running the CSCNN+Pruning model.
    pub fn cscnn() -> Self {
        CartesianAccelerator {
            name: "CSCNN",
            scheme: CompressionScheme::CscnnPruning,
            tiling: TilingStrategy::Mixed,
            dual: true,
            balanced: true,
            mapper: false,
            config: ArchConfig::paper(),
        }
    }

    /// SCNN: planar tiling, no reuse, running the Deep-Compression model.
    /// (The SparTen greedy-balancing courtesy of §IV does not change planar
    /// tiling, which has no filter grouping.)
    pub fn scnn() -> Self {
        CartesianAccelerator {
            name: "SCNN",
            scheme: CompressionScheme::DeepCompression,
            tiling: TilingStrategy::Planar,
            dual: false,
            balanced: true,
            mapper: false,
            config: ArchConfig::paper_scnn(),
        }
    }

    /// Overrides the tiling strategy (Fig. 11 ablations).
    pub fn with_tiling(mut self, tiling: TilingStrategy) -> Self {
        self.tiling = tiling;
        self
    }

    /// Enables/disables density-sorted filter balancing.
    pub fn with_balancing(mut self, balanced: bool) -> Self {
        self.balanced = balanced;
        self
    }

    /// Renames the variant (for ablation reporting).
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Overrides the architecture configuration (design-space sweeps).
    pub fn with_config(mut self, config: ArchConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables the per-layer mapping search: every conv layer is planned
    /// under all three tiling strategies and the fastest plan wins — an
    /// explicit version of the paper's omitted "tiling factor setting
    /// mechanism" (§III-C).
    pub fn with_mapper(mut self, mapper: bool) -> Self {
        self.mapper = mapper;
        self
    }

    /// The tiling strategy in use.
    pub fn tiling(&self) -> TilingStrategy {
        self.tiling
    }
}

impl CartesianAccelerator {
    /// Executes a conv-layer plan on the fast PE model, including the
    /// stride phase decomposition and halo exchange.
    fn run_conv_plan(
        &self,
        pe: &CartesianPe,
        wl: &crate::workload::LayerWorkload,
        plan: &[tiling::PeAssignment],
    ) -> Vec<PeResult> {
        let layer = &wl.layer;
        let c_per_group = wl.c_per_group();
        let k_per_group = layer.k / layer.groups;
        // Strided convolutions break the Cartesian product's premise that
        // every weight meets every activation of a channel. The dataflow
        // decomposes them into stride² phase sub-convolutions (weights and
        // activations partitioned by coordinate parity); the ragged phase
        // sub-kernels (an 11x11 at stride 4 shatters into 2x2/3x3
        // fragments) leave roughly half the fetched operand pairs useless —
        // the "unnecessary computations" the paper blames for SCNN/CSCNN
        // falling behind DCNN on AlexNet C1 (Fig. 8).
        let phases = to_count(layer.stride * layer.stride);
        const STRIDE_WASTE: f64 = 2.0;
        let mut results = Vec::with_capacity(plan.len());
        for assign in plan {
            let mut channels = Vec::with_capacity(layer.c * layer.stride * layer.stride);
            for c in 0..layer.c {
                let conv_group = c / c_per_group;
                let c_local = c % c_per_group;
                let w: u64 = assign
                    .k_set
                    .iter()
                    .filter(|&&k| k / k_per_group == conv_group)
                    .map(|&k| u64::from(wl.weight_nnz(k, c_local)))
                    .sum();
                if w == 0 {
                    continue;
                }
                let a = u64::from(wl.act_tile_nnz(c, assign.tile_id, assign.tile_pixels));
                if phases == 1 {
                    channels.push((w, a));
                } else {
                    let w_p = count_from_f64(((w as f64 * STRIDE_WASTE) / phases as f64).ceil());
                    let a_p = a.div_ceil(phases);
                    for _ in 0..phases {
                        channels.push((w_p, a_p));
                    }
                }
            }
            let outputs = to_count(assign.k_set.len() * assign.out_pixels);
            let mut result = pe.run_conv(&channels, outputs);
            // Halo value exchange with neighbour PEs (§III-A).
            let halo = to_count(assign.k_set.len() * assign.halo_out_pixels);
            let exchange = pe.halo_exchange(halo);
            result.cycles += exchange.cycles;
            result.counters.merge(&exchange.counters);
            results.push(result);
        }
        results
    }
}

impl Accelerator for CartesianAccelerator {
    fn name(&self) -> &'static str {
        self.name
    }

    fn scheme(&self) -> CompressionScheme {
        self.scheme
    }

    fn config(&self) -> ArchConfig {
        self.config.clone()
    }

    fn characteristics(&self) -> Characteristics {
        if self.dual {
            Characteristics {
                compression: "Centrosymmetric filters",
                sparsity: "A+W",
                dataflow: "Cartesian product",
            }
        } else {
            Characteristics {
                compression: "Deep compression",
                sparsity: "A+W",
                dataflow: "Cartesian product",
            }
        }
    }

    fn simulate_layer(&self, ctx: &LayerContext<'_>) -> LayerStats {
        let cfg = ctx.cfg;
        let wl = ctx.workload;
        let layer = &wl.layer;
        let buffers = if self.dual && wl.centro { 2 } else { 1 };
        let stall = crossbar::stall_factor(cfg.mult_px, cfg.mult_py, buffers);
        let dual_here = self.dual && wl.centro;
        let self_dual_frac = if dual_here && (layer.r * layer.s) % 2 == 1 {
            1.0 / wl.stored_per_slice as f64
        } else {
            0.0
        };
        let pe = CartesianPe {
            px: cfg.mult_px,
            py: cfg.mult_py,
            stall_factor: stall,
            dual: dual_here,
            self_dual_frac,
        };
        let mut results: Vec<PeResult> = Vec::new();
        if layer.kind == LayerKind::FullyConnected {
            // Distribute output neurons across PEs (density-balanced).
            let nnz: Vec<u64> = (0..layer.k)
                .map(|k| u64::from(wl.fc_weight_nnz(k)))
                .collect();
            let groups = if self.balanced {
                tiling::balance_groups(&nnz, cfg.num_pes())
            } else {
                tiling::naive_groups(layer.k, cfg.num_pes())
            };
            for g in groups {
                let w: u64 = g.iter().map(|&k| nnz[k]).sum();
                results.push(pe.run_fc(w, wl.act_density, to_count(g.len())));
            }
        } else if self.mapper {
            // Mapping search: evaluate all strategies, keep the fastest.
            let mut best: Option<Vec<PeResult>> = None;
            for strategy in [
                TilingStrategy::Planar,
                TilingStrategy::OutputChannel,
                TilingStrategy::Mixed,
            ] {
                let plan = tiling::plan(cfg, wl, strategy, self.balanced);
                let candidate = self.run_conv_plan(&pe, wl, &plan);
                let cycles = candidate.iter().map(|r| r.cycles).max().unwrap_or(0);
                let best_cycles = best
                    .as_ref()
                    .map(|b| b.iter().map(|r| r.cycles).max().unwrap_or(0))
                    .unwrap_or(u64::MAX);
                if cycles < best_cycles {
                    best = Some(candidate);
                }
            }
            results = best.unwrap_or_default();
        } else {
            let plan = tiling::plan(cfg, wl, self.tiling, self.balanced);
            results = self.run_conv_plan(&pe, wl, &plan);
        }
        // Inter-PE barrier: the layer completes when the slowest PE does.
        let compute_cycles = results.iter().map(|r| r.cycles).max().unwrap_or(0);
        let mut counters = crate::energy::EnergyCounters::default();
        for r in &results {
            counters.merge(&r.counters);
        }
        let traffic = TrafficModel {
            compressed_acts: true,
            compressed_weights: true,
            act_amplification: 1.0,
        };
        counters.dram_bits = traffic.dram_bits(ctx);
        let dram_time_s = ctx.dram.transfer_time_s(counters.dram_bits / 8);
        let compute_time_s = compute_cycles as f64 * cfg.cycle_time();
        let energy = crate::energy::energy_of(&counters, cfg, ctx.energy);
        LayerStats {
            name: layer.name.clone(),
            compute_cycles,
            dram_time_s,
            time_s: compute_time_s.max(dram_time_s),
            effective_mults: counters.mults,
            counters,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;
    use crate::energy::EnergyTable;
    use crate::workload::LayerWorkload;
    use cscnn_models::LayerDesc;

    fn context<'a>(
        cfg: &'a ArchConfig,
        dram: &'a DramConfig,
        energy: &'a EnergyTable,
        wl: &'a LayerWorkload,
    ) -> LayerContext<'a> {
        LayerContext {
            cfg,
            dram,
            energy,
            workload: wl,
            input_on_chip: true,
            output_fits_on_chip: true,
        }
    }

    #[test]
    fn cscnn_outruns_scnn_on_an_eligible_layer() {
        let layer = LayerDesc::conv("c", 64, 64, 3, 3, 28, 28, 1, 1);
        let dram = DramConfig::default();
        let energy = EnergyTable::default();
        // SCNN runs DC-pruned weights at 0.4 density over all 9 positions;
        // CSCNN runs the same effective weights over 5 unique positions.
        let scnn = CartesianAccelerator::scnn();
        let scnn_cfg = scnn.config();
        let wl_scnn = LayerWorkload::synthesize(&layer, 0.4, 0.5, false, 7);
        let s = scnn.simulate_layer(&context(&scnn_cfg, &dram, &energy, &wl_scnn));

        let cscnn = CartesianAccelerator::cscnn();
        let cscnn_cfg = cscnn.config();
        let wl_cscnn = LayerWorkload::synthesize(&layer, 0.4, 0.5, true, 7);
        let c = cscnn.simulate_layer(&context(&cscnn_cfg, &dram, &energy, &wl_cscnn));

        assert!(
            c.compute_cycles < s.compute_cycles,
            "CSCNN {} vs SCNN {}",
            c.compute_cycles,
            s.compute_cycles
        );
        assert!(c.effective_mults < s.effective_mults);
    }

    #[test]
    fn fc_layer_uses_degenerate_path() {
        let layer = LayerDesc::fc("fc", 1024, 64);
        let wl = LayerWorkload::synthesize(&layer, 0.1, 0.5, true, 8);
        let acc = CartesianAccelerator::cscnn();
        let cfg = acc.config();
        let dram = DramConfig::default();
        let energy = EnergyTable::default();
        let stats = acc.simulate_layer(&context(&cfg, &dram, &energy, &wl));
        assert!(stats.compute_cycles > 0);
        // Zero activations are still skipped: mults ≈ nnzW × act density.
        let expect = wl.total_weight_nnz() as f64 * 0.5;
        assert!((stats.effective_mults as f64 - expect).abs() / expect < 0.2);
    }

    #[test]
    fn depthwise_layer_simulates() {
        let layer = LayerDesc::grouped("dw", 32, 32, 3, 3, 14, 14, 1, 1, 32);
        let wl = LayerWorkload::synthesize(&layer, 0.8, 0.5, true, 9);
        let acc = CartesianAccelerator::cscnn();
        let cfg = acc.config();
        let dram = DramConfig::default();
        let energy = EnergyTable::default();
        let stats = acc.simulate_layer(&context(&cfg, &dram, &energy, &wl));
        assert!(stats.compute_cycles > 0);
        assert!(stats.effective_mults > 0);
    }

    #[test]
    fn mapper_never_loses_to_any_fixed_strategy() {
        let dram = DramConfig::default();
        let energy = EnergyTable::default();
        for layer in [
            LayerDesc::conv("small", 8, 6, 5, 5, 14, 14, 1, 2),
            LayerDesc::conv("deep", 64, 64, 3, 3, 7, 7, 1, 1),
            LayerDesc::conv("wide", 16, 128, 3, 3, 28, 28, 1, 1),
        ] {
            let wl = LayerWorkload::synthesize(&layer, 0.5, 0.5, true, 11);
            let mapped_acc = CartesianAccelerator::cscnn().with_mapper(true);
            let cfg = mapped_acc.config();
            let mapped = mapped_acc
                .simulate_layer(&context(&cfg, &dram, &energy, &wl))
                .compute_cycles;
            for strategy in [
                TilingStrategy::Planar,
                TilingStrategy::OutputChannel,
                TilingStrategy::Mixed,
            ] {
                let fixed = CartesianAccelerator::cscnn()
                    .with_tiling(strategy)
                    .simulate_layer(&context(&cfg, &dram, &energy, &wl))
                    .compute_cycles;
                assert!(
                    mapped <= fixed,
                    "{}: mapper {mapped} vs {strategy:?} {fixed}",
                    layer.name
                );
            }
        }
    }

    #[test]
    fn mults_match_structural_expectation() {
        // Dense weights, dense acts, unit stride: products on SCNN must be
        // close to dense MACs (padding halos aside).
        let layer = LayerDesc::conv("c", 8, 8, 3, 3, 16, 16, 1, 1);
        let wl = LayerWorkload::synthesize(&layer, 1.0, 1.0, false, 10);
        let acc = CartesianAccelerator::scnn();
        let cfg = acc.config();
        let dram = DramConfig::default();
        let energy = EnergyTable::default();
        let stats = acc.simulate_layer(&context(&cfg, &dram, &energy, &wl));
        let dense = layer.dense_mults() as f64;
        let ratio = stats.effective_mults as f64 / dense;
        // Full-mode Cartesian product computes all pairs, and planar tiles
        // re-process halo activations: expect dense MACs inflated by the
        // boundary products plus the ~(10·10)/(8·8) halo factor.
        assert!((0.9..=1.7).contains(&ratio), "ratio={ratio}");
    }
}
