//! Branch-overlap scheduling of DAG-shaped IRs across PE sub-arrays.
//!
//! A DAG model (`cscnn_ir::ModelIr` with explicit edges) exposes
//! independent branches — the four paths of an Inception module, a
//! residual block's main path and projection shortcut — that a partitioned
//! accelerator can execute concurrently. This module takes the per-node
//! results of a sequential simulation ([`crate::Runner::run_ir`]) and
//! list-schedules them over `sub_arrays` identical PE sub-arrays,
//! respecting data dependences. Per-node cycle/energy numbers are *not*
//! re-simulated: overlap is purely a scheduling property, so the per-layer
//! stats stay bit-identical to sequential execution and only the reported
//! makespan reflects branch concurrency (`docs/simulator.md`).
//!
//! The schedule is deterministic: nodes are visited in the IR's (validated
//! topological) list order, each timed node starts at the later of its
//! data-ready time and the earliest sub-array's free time, and ties
//! between sub-arrays keep the lowest index.

use cscnn_ir::ModelIr;

use crate::report::RunStats;

/// Where and when one timed node ran in an overlapped schedule.
#[derive(Clone, Debug)]
pub struct Placement {
    /// The node's index in the IR's node list.
    pub node: usize,
    /// The node's layer name.
    pub name: String,
    /// Which PE sub-array executed it.
    pub sub_array: usize,
    /// Start time in seconds (relative to the model's start).
    pub start_s: f64,
    /// Finish time in seconds.
    pub finish_s: f64,
}

cscnn_json::impl_to_json!(Placement {
    node,
    name,
    sub_array,
    start_s,
    finish_s,
});

/// Results of an overlapped run: the sequential per-node stats plus the
/// schedule that overlaps independent branches.
#[derive(Clone, Debug)]
pub struct ScheduleStats {
    /// The underlying sequential simulation — bit-identical to
    /// [`crate::Runner::run_ir`] on the same IR.
    pub run: RunStats,
    /// How many PE sub-arrays the schedule used.
    pub sub_arrays: usize,
    /// End-to-end latency of the overlapped schedule in seconds.
    pub makespan_s: f64,
    /// Per-timed-node placements, in node-list order.
    pub placements: Vec<Placement>,
}

cscnn_json::impl_to_json!(ScheduleStats {
    run,
    sub_arrays,
    makespan_s,
    placements,
});

impl ScheduleStats {
    /// The sequential latency the overlap is measured against: the sum of
    /// every timed node's latency, exactly as [`RunStats::total_time_s`]
    /// reports it.
    pub fn sequential_time_s(&self) -> f64 {
        self.run.total_time_s()
    }

    /// Speedup of the overlapped makespan over sequential execution
    /// (`≥ 1` up to rounding; `1` exactly for linear chains).
    pub fn overlap_speedup(&self) -> f64 {
        self.sequential_time_s() / self.makespan_s
    }
}

/// List-schedules `run`'s per-node latencies over `sub_arrays` machines,
/// honoring `ir`'s dependence edges.
///
/// `run.layers` must hold the timed nodes of `ir` in node-list order — the
/// invariant [`crate::Runner::run_ir`] establishes. Untimed nodes (pools,
/// joins, …) take zero time and occupy no sub-array; they finish the
/// moment their last predecessor does.
pub(crate) fn overlap(ir: &ModelIr, run: RunStats, sub_arrays: usize) -> ScheduleStats {
    debug_assert!(sub_arrays > 0);
    let mut finish = vec![0.0f64; ir.nodes.len()];
    let mut free = vec![0.0f64; sub_arrays];
    let mut placements = Vec::with_capacity(run.layers.len());
    let mut layers = run.layers.iter();
    for (i, node) in ir.nodes.iter().enumerate() {
        let ready = ir
            .predecessors(i)
            .iter()
            .map(|&p| finish[p])
            .fold(0.0f64, f64::max);
        if cscnn_models::lower::layer_desc(node).is_none() {
            finish[i] = ready;
            continue;
        }
        let stats = layers
            .next()
            .expect("run.layers holds one entry per timed node");
        // The sub-array giving the earliest start; strict `<` keeps the
        // lowest index on ties, so the schedule is deterministic and a
        // chain with no runnable siblings stays on one sub-array.
        let mut m = 0;
        for j in 1..free.len() {
            if ready.max(free[j]) < ready.max(free[m]) {
                m = j;
            }
        }
        let start = ready.max(free[m]);
        finish[i] = start + stats.time_s;
        free[m] = finish[i];
        placements.push(Placement {
            node: i,
            name: stats.name.clone(),
            sub_array: m,
            start_s: start,
            finish_s: finish[i],
        });
    }
    let makespan_s = finish.iter().copied().fold(0.0f64, f64::max);
    ScheduleStats {
        run,
        sub_arrays,
        makespan_s,
        placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::LayerStats;
    use cscnn_ir::{IrBuilder, LayerNode};

    /// stem → (left, right) → add → head: two independent 3×3 convs.
    fn diamond_ir() -> ModelIr {
        let mut b = IrBuilder::new("diamond");
        let stem = b.push(LayerNode::conv("stem", 3, 8, 3, 3, 8, 8, 1, 1));
        let left = b.push_after(LayerNode::conv("left", 8, 8, 3, 3, 8, 8, 1, 1), &[stem]);
        let right = b.push_after(LayerNode::conv("right", 8, 8, 3, 3, 8, 8, 1, 1), &[stem]);
        let join = b.push_after(LayerNode::add("add"), &[left, right]);
        b.push_after(LayerNode::conv("head", 8, 8, 3, 3, 8, 8, 1, 1), &[join]);
        b.finish().expect("diamond is valid")
    }

    fn run_for(ir: &ModelIr, times: &[(&str, f64)]) -> RunStats {
        RunStats {
            accelerator: "test".into(),
            model: ir.name.clone(),
            layers: times
                .iter()
                .map(|&(name, t)| LayerStats {
                    name: name.into(),
                    time_s: t,
                    ..Default::default()
                })
                .collect(),
        }
    }

    #[test]
    fn independent_branches_overlap() {
        let ir = diamond_ir();
        let run = run_for(
            &ir,
            &[("stem", 1.0), ("left", 2.0), ("right", 3.0), ("head", 1.0)],
        );
        let s = overlap(&ir, run, 2);
        // stem 0–1, left 1–3 on array 0, right 1–4 on array 1, head 4–5.
        assert_eq!(s.makespan_s, 5.0);
        assert_eq!(s.sequential_time_s(), 7.0);
        assert!(s.overlap_speedup() > 1.0);
        assert_eq!(s.placements.len(), 4, "joins occupy no sub-array");
        let right = &s.placements[2];
        assert_eq!((right.name.as_str(), right.sub_array), ("right", 1));
        assert_eq!((right.start_s, right.finish_s), (1.0, 4.0));
    }

    #[test]
    fn one_sub_array_serializes_the_branches() {
        let ir = diamond_ir();
        let run = run_for(
            &ir,
            &[("stem", 1.0), ("left", 2.0), ("right", 3.0), ("head", 1.0)],
        );
        let s = overlap(&ir, run, 1);
        assert_eq!(s.makespan_s, 7.0);
        assert_eq!(s.overlap_speedup(), 1.0);
    }

    #[test]
    fn linear_chains_gain_nothing_from_more_arrays() {
        let mut b = IrBuilder::new("line");
        let a = b.push(LayerNode::conv("a", 3, 8, 3, 3, 8, 8, 1, 1));
        b.push_after(LayerNode::conv("b", 8, 8, 3, 3, 8, 8, 1, 1), &[a]);
        let ir = b.finish().expect("line is valid");
        let run = run_for(&ir, &[("a", 2.0), ("b", 3.0)]);
        let s = overlap(&ir, run, 4);
        assert_eq!(s.makespan_s, 5.0);
        // Both nodes land on sub-array 0 (ties keep the lowest index).
        assert!(s.placements.iter().all(|p| p.sub_array == 0));
    }
}
