//! Off-chip DRAM timing model (DRAMSim2 substitution, see DESIGN.md §2).
//!
//! A bank/row-buffer model of a single-rank DDR3-1600 x64 channel: streaming
//! accesses hit the open row for `row_bytes` before paying an
//! activate/precharge penalty. This captures the first-order behaviour the
//! paper gets from DRAMSim2 — bandwidth-bound transfer time with row-miss
//! overhead — which is all the layer-level `max(compute, memory)` overlap
//! model consumes.

use crate::error::SimError;

/// DRAM channel parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Peak bandwidth in bytes/second (DDR3-1600 x64 ≈ 12.8 GB/s).
    pub peak_bytes_per_s: f64,
    /// Open-row run length in bytes before an activate/precharge penalty.
    pub row_bytes: usize,
    /// Row activate + precharge penalty in seconds (tRCD + tRP ≈ 27.5 ns).
    pub row_penalty_s: f64,
    /// Fraction of traffic that streams sequentially (row-friendly). The
    /// remainder pays a row penalty per burst, amortized across banks.
    pub sequential_fraction: f64,
    /// Burst size in bytes (BL8 × 64-bit bus = 64 B).
    pub burst_bytes: usize,
    /// Banks available to overlap activate/precharge latency of the random
    /// traffic.
    pub banks: usize,
}

cscnn_json::impl_to_json!(DramConfig {
    peak_bytes_per_s,
    row_bytes,
    row_penalty_s,
    sequential_fraction,
    burst_bytes,
    banks,
});

cscnn_json::impl_from_json!(DramConfig {
    peak_bytes_per_s,
    row_bytes,
    row_penalty_s,
    sequential_fraction,
    burst_bytes,
    banks,
});

impl DramConfig {
    /// DDR3-1600 with mostly-sequential accelerator traffic.
    pub fn ddr3_1600() -> Self {
        let cfg = DramConfig {
            peak_bytes_per_s: 12.8e9,
            row_bytes: 8192,
            row_penalty_s: 27.5e-9,
            sequential_fraction: 0.9,
            burst_bytes: 64,
            banks: 8,
        };
        debug_assert!(cfg.validate().is_ok(), "DDR3-1600 config must validate");
        cfg
    }

    /// Checks that the channel parameters are physical: positive finite
    /// bandwidth and penalties, non-zero row/burst/bank geometry, and a
    /// sequential fraction in `[0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        let err = |field: &'static str, reason: &'static str| {
            Err(SimError::InvalidConfig { field, reason })
        };
        if !(self.peak_bytes_per_s.is_finite() && self.peak_bytes_per_s > 0.0) {
            return err("peak_bytes_per_s", "must be positive and finite");
        }
        if !(self.row_penalty_s.is_finite() && self.row_penalty_s >= 0.0) {
            return err("row_penalty_s", "must be non-negative and finite");
        }
        if !(0.0..=1.0).contains(&self.sequential_fraction) {
            return err("sequential_fraction", "must be in [0, 1]");
        }
        if self.row_bytes == 0 || self.burst_bytes == 0 {
            return err("row_bytes/burst_bytes", "must be non-zero");
        }
        if self.banks == 0 {
            return err("banks", "must be non-zero");
        }
        Ok(())
    }

    /// Time to transfer `bytes` of accelerator traffic.
    ///
    /// Sequential traffic pays one row penalty per `row_bytes`; the random
    /// remainder pays one per burst, overlapped across `banks` so only
    /// `1/banks` of those penalties land on the critical path.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let data_s = bytes as f64 / self.peak_bytes_per_s;
        let seq_bytes = bytes as f64 * self.sequential_fraction;
        let rand_bytes = bytes as f64 - seq_bytes;
        let seq_penalties = (seq_bytes / self.row_bytes as f64).ceil();
        let rand_penalties =
            (rand_bytes / self.burst_bytes as f64).ceil() / self.banks.max(1) as f64;
        data_s + (seq_penalties + rand_penalties) * self.row_penalty_s
    }

    /// Effective bandwidth (bytes/s) for a transfer of `bytes`.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return self.peak_bytes_per_s;
        }
        bytes as f64 / self.transfer_time_s(bytes)
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_takes_zero_time() {
        assert_eq!(DramConfig::default().transfer_time_s(0), 0.0);
    }

    #[test]
    fn large_sequential_transfers_approach_peak_bandwidth() {
        let d = DramConfig::ddr3_1600();
        let eff = d.effective_bandwidth(256 * 1024 * 1024);
        assert!(eff > 0.7 * d.peak_bytes_per_s, "eff={eff:e}");
        assert!(eff < d.peak_bytes_per_s);
    }

    #[test]
    fn random_traffic_is_slower_than_sequential() {
        let seq = DramConfig {
            sequential_fraction: 1.0,
            ..DramConfig::ddr3_1600()
        };
        let rnd = DramConfig {
            sequential_fraction: 0.0,
            ..DramConfig::ddr3_1600()
        };
        let bytes = 1 << 20;
        assert!(rnd.transfer_time_s(bytes) > 1.5 * seq.transfer_time_s(bytes));
    }

    #[test]
    fn time_is_monotone_in_bytes() {
        let d = DramConfig::default();
        let mut prev = 0.0;
        for shift in 10..26 {
            let t = d.transfer_time_s(1 << shift);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn validation_rejects_unphysical_channels() {
        assert!(DramConfig::ddr3_1600().validate().is_ok());
        let mut d = DramConfig::ddr3_1600();
        d.peak_bytes_per_s = 0.0;
        assert!(d.validate().is_err());
        let mut d = DramConfig::ddr3_1600();
        d.sequential_fraction = 1.5;
        assert!(d.validate().is_err());
        let mut d = DramConfig::ddr3_1600();
        d.banks = 0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn dram_config_round_trips_through_json() {
        let d = DramConfig::ddr3_1600();
        let json = cscnn_json::to_string(&d).expect("serialize");
        let back: DramConfig = cscnn_json::from_str(&json).expect("parse");
        assert_eq!(back, d);
    }
}
