//! EIE-style fully-connected engine (Han et al., ISCA 2016).
//!
//! Not part of the paper's Fig. 7 comparison, but §III-E recommends pairing
//! CSCNN with "an architecture optimized for FC layers (such as EIE)"; the
//! [`crate::hybrid`] accelerator realizes that recommendation, and this is
//! its FC-side model.

use cscnn_models::CompressionScheme;

use crate::interface::Characteristics;

use super::{AnalyticBaseline, AnalyticParams, FragDim};

/// EIE \[42\]: compressed sparse-column matrix-vector engine for FC layers.
///
/// Model notes:
/// - Exploits both sides: zero activations are skipped at the broadcast
///   stage, zero weights by the CSC format.
/// - PEs are output-stationary over CSC columns: high utilization on
///   matrix-vector work (`base_utilization = 0.85`) with activation
///   broadcast amortizing input reads across all lanes.
/// - Weight reuse is 1 (each CSC entry used once per inference) — the
///   defining property of FC layers — so weight streaming dominates, as in
///   the original paper.
pub fn eie() -> AnalyticBaseline {
    AnalyticBaseline::new(AnalyticParams {
        name: "EIE",
        scheme: CompressionScheme::DeepCompression,
        characteristics: Characteristics {
            compression: "Deep compression",
            sparsity: "A+W",
            dataflow: "CSC matrix-vector",
        },
        exploits_act_sparsity: true,
        exploits_weight_sparsity: true,
        weight_density_inflation: 1.0,
        base_utilization: 0.85,
        lane_width: 16,
        frag_dim: FragDim::OutputChannels,
        weight_reuse: 1.0,
        act_reuse: 16.0,
        compressed_weights: true,
        compressed_acts: true,
        others_ops_per_mac: 0.2,
        ab_access_factor: 1.0,
        im2col: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Accelerator;

    #[test]
    fn eie_is_a_two_sided_fc_engine() {
        let e = eie();
        assert_eq!(e.name(), "EIE");
        assert!(e.params().exploits_act_sparsity && e.params().exploits_weight_sparsity);
        assert_eq!(e.characteristics().dataflow, "CSC matrix-vector");
    }
}
