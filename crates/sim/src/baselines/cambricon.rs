//! Cambricon-X and Cambricon-S: weight-side and co-designed baselines.

use cscnn_models::CompressionScheme;

use crate::interface::Characteristics;

use super::{AnalyticBaseline, AnalyticParams, FragDim};

/// Cambricon-X \[41\]: compresses pruned weights and skips compute for
/// zero-valued weights; activations are processed dense.
///
/// Model notes:
/// - `exploits_weight_sparsity` only (Table IV: sparsity "W").
/// - The indexing module (step-index decoding + activation select crossbar)
///   costs throughput: `base_utilization = 0.78`, plus 0.5 auxiliary ops
///   per MAC charged to the "others" energy bucket.
/// - Vector-dot dataflow over 16-lane PEs; activations are gathered per
///   non-zero weight, so activation reuse is poor (4×) while the selected
///   weight words stream once each.
pub fn cambricon_x() -> AnalyticBaseline {
    AnalyticBaseline::new(AnalyticParams {
        name: "Cambricon-X",
        scheme: CompressionScheme::DeepCompression,
        characteristics: Characteristics {
            compression: "Deep compression",
            sparsity: "W",
            dataflow: "Vector dot product",
        },
        exploits_act_sparsity: false,
        exploits_weight_sparsity: true,
        weight_density_inflation: 1.0,
        base_utilization: 0.78,
        lane_width: 16,
        frag_dim: FragDim::OutputChannels,
        weight_reuse: 4.0,
        act_reuse: 4.0,
        compressed_weights: true,
        compressed_acts: false,
        others_ops_per_mac: 0.5,
        ab_access_factor: 1.0,
        im2col: false,
    })
}

/// Cambricon-S \[54\]: software/hardware co-design with *coarse-grained*
/// pruning to reduce irregularity, exploiting both sparsity sides.
///
/// Model notes:
/// - Two-sided sparsity, but the coarse-grained pruning constraint keeps
///   ~17 % more weights than Deep Compression at iso-accuracy
///   (`weight_density_inflation = 1.17`): the paper observes SparTen runs
///   1.17× faster than Cambricon-S for exactly this reason (§V-B) — so the
///   two share the same base utilization and the gap comes from MAC count.
/// - The structured sparsity makes decoding nearly free; shared indices
///   amortize metadata.
pub fn cambricon_s() -> AnalyticBaseline {
    AnalyticBaseline::new(AnalyticParams {
        name: "Cambricon-S",
        scheme: CompressionScheme::DeepCompression,
        characteristics: Characteristics {
            compression: "Coarse-grained pruning",
            sparsity: "A+W",
            dataflow: "Vector dot product",
        },
        exploits_act_sparsity: true,
        exploits_weight_sparsity: true,
        weight_density_inflation: 1.17,
        base_utilization: 0.80,
        lane_width: 16,
        frag_dim: FragDim::OutputChannels,
        weight_reuse: 6.0,
        act_reuse: 6.0,
        compressed_weights: true,
        compressed_acts: true,
        others_ops_per_mac: 0.2,
        ab_access_factor: 1.0,
        im2col: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Accelerator;

    #[test]
    fn cambricon_x_is_weight_side_only() {
        let x = cambricon_x();
        assert!(x.params().exploits_weight_sparsity);
        assert!(!x.params().exploits_act_sparsity);
    }

    #[test]
    fn cambricon_s_pays_coarse_granularity() {
        let s = cambricon_s();
        assert!(s.params().weight_density_inflation > 1.0);
        assert_eq!(s.characteristics().sparsity, "A+W");
    }
}
