//! Cnvlutin: activation-sparsity-only baseline.

use cscnn_models::CompressionScheme;

use crate::interface::Characteristics;

use super::{AnalyticBaseline, AnalyticParams, FragDim};

/// Cnvlutin \[40\]: stores activations zero-skip-compressed and elides
/// compute cycles for zero-valued activations; weights remain dense in both
/// storage and compute.
///
/// Model notes:
/// - `exploits_act_sparsity` only — the pruned model's zero weights still
///   occupy multiplier slots (Table IV: sparsity "A").
/// - Vector-scalar dataflow: one activation broadcasts to a 16-lane filter
///   group, so activation fetches amortize 16× and weight words stream
///   (reuse 1 per lane group… expressed as 4 with the 64-lane array's
///   internal banking).
/// - `base_utilization = 0.82`: the per-lane non-zero activation counts
///   diverge inside a work group ("neuron lane" imbalance in the original
///   paper), wasting slots at group boundaries.
pub fn cnvlutin() -> AnalyticBaseline {
    AnalyticBaseline::new(AnalyticParams {
        name: "Cnvlutin",
        scheme: CompressionScheme::DeepCompression,
        characteristics: Characteristics {
            compression: "Deep compression",
            sparsity: "A",
            dataflow: "Vector-scalar product",
        },
        exploits_act_sparsity: true,
        exploits_weight_sparsity: false,
        weight_density_inflation: 1.0,
        base_utilization: 0.82,
        lane_width: 16,
        frag_dim: FragDim::OutputChannels,
        weight_reuse: 4.0,
        act_reuse: 16.0,
        compressed_weights: false,
        compressed_acts: true,
        others_ops_per_mac: 0.3,
        ab_access_factor: 1.0,
        im2col: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Accelerator;

    #[test]
    fn cnvlutin_exploits_only_activations() {
        let c = cnvlutin();
        assert!(c.params().exploits_act_sparsity);
        assert!(!c.params().exploits_weight_sparsity);
        assert_eq!(c.characteristics().sparsity, "A");
    }
}
