//! SIGMA and SpArch: sparse GEMM accelerators evaluated via im2col.
//!
//! Both are specialized for GEMM rather than convolution, so the paper maps
//! convolutions onto them with the Im2Col transformation \[77\] — which
//! replicates each input activation across the `R·S` GEMM columns it
//! participates in, drastically inflating storage and memory traffic
//! (§V-B/§V-C: "they consume 2.5× more energy on memory accesses").

use cscnn_models::CompressionScheme;

use crate::interface::Characteristics;

use super::{AnalyticBaseline, AnalyticParams, FragDim};

/// SIGMA \[75\]: a flexible sparse-irregular GEMM accelerator with a
/// Benes-network distribution fabric and forwarding-adder reduction trees.
///
/// Model notes:
/// - Two-sided sparse GEMM at high compute utilization
///   (`base_utilization = 0.78` — the flexible interconnect maps irregular
///   non-zeros well).
/// - `im2col = true`: activation DRAM/on-chip traffic amplifies by
///   `R·S/stride²`; operand reuse inside the GEMM is poor because the
///   lowered matrix destroys convolutional locality (reuse 2×).
pub fn sigma() -> AnalyticBaseline {
    AnalyticBaseline::new(AnalyticParams {
        name: "SIGMA",
        scheme: CompressionScheme::DeepCompression,
        characteristics: Characteristics {
            compression: "Deep compression",
            sparsity: "A+W",
            dataflow: "Flexible dot product (GEMM)",
        },
        exploits_act_sparsity: true,
        exploits_weight_sparsity: true,
        weight_density_inflation: 1.0,
        base_utilization: 0.78,
        lane_width: 16,
        frag_dim: FragDim::OutputChannels,
        weight_reuse: 2.0,
        act_reuse: 2.0,
        compressed_weights: true,
        compressed_acts: true,
        others_ops_per_mac: 0.3,
        ab_access_factor: 1.0,
        im2col: true,
    })
}

/// SpArch \[76\]: outer-product sparse-matrix-multiply accelerator with a
/// streaming merger for partial-sum matrices.
///
/// Model notes:
/// - Outer products achieve excellent input reuse but materialize large
///   partial-sum streams that the merge tree must repeatedly combine:
///   `ab_access_factor = 2.5` charges the extra partial-sum traffic.
/// - `base_utilization = 0.72`: the merger, not the multipliers, bounds
///   throughput once partial matrices outgrow the on-chip merge width.
/// - Same im2col amplification as SIGMA.
pub fn sparch() -> AnalyticBaseline {
    AnalyticBaseline::new(AnalyticParams {
        name: "SpArch",
        scheme: CompressionScheme::DeepCompression,
        characteristics: Characteristics {
            compression: "Deep compression",
            sparsity: "A+W",
            dataflow: "Outer product (GEMM)",
        },
        exploits_act_sparsity: true,
        exploits_weight_sparsity: true,
        weight_density_inflation: 1.0,
        base_utilization: 0.72,
        lane_width: 16,
        frag_dim: FragDim::OutputChannels,
        weight_reuse: 4.0,
        act_reuse: 4.0,
        compressed_weights: true,
        compressed_acts: true,
        others_ops_per_mac: 0.5,
        ab_access_factor: 2.5,
        im2col: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_gemm_accelerators_pay_im2col() {
        assert!(sigma().params().im2col);
        assert!(sparch().params().im2col);
    }

    #[test]
    fn sparch_merges_more_partial_sums() {
        assert!(sparch().params().ab_access_factor > sigma().params().ab_access_factor);
    }
}
