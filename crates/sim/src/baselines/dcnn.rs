//! The dense baseline accelerator (DCNN).

use cscnn_models::CompressionScheme;

use crate::interface::Characteristics;

use super::{AnalyticBaseline, AnalyticParams, FragDim};

/// The dense CNN accelerator the paper normalizes against: a
/// ShiDianNao-style output-stationary array (§IV, \[11\]).
///
/// Model notes:
/// - Runs the *uncompressed* model (Table IV: no compression, no sparsity
///   support); its cycle count is independent of weight/activation density.
/// - Output-stationary dataflow broadcasts each weight across the lane
///   group, so weight fetches amortize over the 64 lanes and activations
///   are reused through the neighbor-shift registers (reuse ≈ lane width).
/// - `base_utilization = 0.92`: dense arrays lose a few percent to pipeline
///   fill/drain and edge tiles, nothing else.
pub fn dcnn() -> AnalyticBaseline {
    AnalyticBaseline::new(AnalyticParams {
        name: "DCNN",
        scheme: CompressionScheme::Dense,
        characteristics: Characteristics {
            compression: "-",
            sparsity: "-",
            dataflow: "Matrix-scalar product",
        },
        exploits_act_sparsity: false,
        exploits_weight_sparsity: false,
        weight_density_inflation: 1.0,
        base_utilization: 0.92,
        lane_width: 64,
        frag_dim: FragDim::Pixels,
        weight_reuse: 64.0,
        act_reuse: 16.0,
        compressed_weights: false,
        compressed_acts: false,
        others_ops_per_mac: 0.0,
        ab_access_factor: 1.0,
        im2col: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Accelerator;

    #[test]
    fn dcnn_is_dense_in_every_respect() {
        let d = dcnn();
        assert_eq!(d.name(), "DCNN");
        assert_eq!(d.scheme(), CompressionScheme::Dense);
        assert_eq!(d.characteristics().sparsity, "-");
        assert!(!d.params().compressed_weights);
    }
}
