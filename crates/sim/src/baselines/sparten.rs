//! SparTen: the strongest sparse baseline.

use cscnn_models::CompressionScheme;

use crate::interface::Characteristics;

use super::{AnalyticBaseline, AnalyticParams, FragDim};

/// SparTen \[73\]: two-sided sparse inner join over bit-mask-encoded vectors,
/// with offline greedy filter balancing ("greedy balancing") that the paper
/// also grants every other accelerator for fairness.
///
/// Model notes:
/// - Two-sided sparsity with an efficient inner join: effective MACs are
///   `dense × d_w × d_a`, the same as SCNN/CSCNN — SparTen's edge is
///   *utilization*, not op count.
/// - `base_utilization = 0.80`: the prefix-sum priority encoders that pair
///   matching non-zeros cost a pipeline bubble per chunk boundary, and the
///   greedy balancing leaves a few percent of residual imbalance.
/// - Bit-mask metadata decodes cost ~0.4 auxiliary ops/MAC ("others"), and
///   the inner join re-fetches both operand vectors on alignment misses, so
///   operand reuse is modest (4×).
pub fn sparten() -> AnalyticBaseline {
    AnalyticBaseline::new(AnalyticParams {
        name: "SparTen",
        scheme: CompressionScheme::DeepCompression,
        characteristics: Characteristics {
            compression: "Deep compression",
            sparsity: "A+W",
            dataflow: "Vector dot product",
        },
        exploits_act_sparsity: true,
        exploits_weight_sparsity: true,
        weight_density_inflation: 1.0,
        base_utilization: 0.80,
        lane_width: 32,
        frag_dim: FragDim::OutputChannels,
        weight_reuse: 4.0,
        act_reuse: 4.0,
        compressed_weights: true,
        compressed_acts: true,
        others_ops_per_mac: 0.4,
        ab_access_factor: 1.0,
        im2col: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Accelerator;

    #[test]
    fn sparten_is_two_sided() {
        let s = sparten();
        assert!(s.params().exploits_act_sparsity && s.params().exploits_weight_sparsity);
        assert_eq!(s.scheme(), CompressionScheme::DeepCompression);
    }
}
