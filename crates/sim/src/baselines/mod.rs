//! Baseline accelerator models (Table IV).
//!
//! Each baseline mimics its publication's dataflow at the granularity the
//! paper's own methodology uses ("we mimic their dataflow in our simulator
//! taking their design details as input"): an analytic cycle model driven by
//! the layer's synthesized sparse workload, with per-design utilization and
//! operand-reuse constants documented in each constructor. SCNN and CSCNN
//! use the detailed Cartesian-product model in
//! [`crate::CartesianAccelerator`] instead.

mod cambricon;
mod cnvlutin;
mod dcnn;
mod eie;
mod gemm;
mod sparten;

pub use cambricon::{cambricon_s, cambricon_x};
pub use cnvlutin::cnvlutin;
pub use dcnn::dcnn;
pub use eie::eie;
pub use gemm::{sigma, sparch};
pub use sparten::sparten;

use cscnn_models::{CompressionScheme, LayerKind};

use crate::interface::{Accelerator, Characteristics, LayerContext, TrafficModel};
use crate::report::LayerStats;
use crate::util::{count_from_f64, cycles_from_f64, to_index};

/// Which structural dimension limits lane utilization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FragDim {
    /// Output pixels map onto lanes (output-stationary dense arrays).
    Pixels,
    /// Output channels map onto lanes (vector dot/scalar designs).
    OutputChannels,
}

/// Parameters of an analytic baseline model.
#[derive(Clone, Debug)]
pub struct AnalyticParams {
    /// Display name.
    pub name: &'static str,
    /// Model variant the accelerator runs.
    pub scheme: CompressionScheme,
    /// Table IV row.
    pub characteristics: Characteristics,
    /// Skips zero activations.
    pub exploits_act_sparsity: bool,
    /// Skips zero weights.
    pub exploits_weight_sparsity: bool,
    /// Weight-density inflation relative to the synthesized profile
    /// (Cambricon-S's coarse-grained pruning keeps ~17 % more weights for
    /// the same accuracy; §V-B).
    pub weight_density_inflation: f64,
    /// Sustained fraction of peak multiplier throughput, net of the
    /// design's internal overheads (front-end matching, select networks,
    /// load imbalance after greedy balancing).
    pub base_utilization: f64,
    /// Lane-group width for edge fragmentation.
    pub lane_width: usize,
    /// Fragmentation dimension.
    pub frag_dim: FragDim,
    /// MACs amortized per weight-buffer word read (broadcast/reuse factor).
    pub weight_reuse: f64,
    /// MACs amortized per input-buffer word read.
    pub act_reuse: f64,
    /// Weights travel compressed (affects DRAM + index energy).
    pub compressed_weights: bool,
    /// Activations travel compressed.
    pub compressed_acts: bool,
    /// Per-MAC auxiliary operations (index matching, prefix sums) charged
    /// to the "others" energy bucket.
    pub others_ops_per_mac: f64,
    /// Accumulator-access multiplier (outer-product designs merge partial
    /// sums repeatedly).
    pub ab_access_factor: f64,
    /// `true` for GEMM accelerators that lower convolution with im2col,
    /// amplifying activation traffic by `R·S/stride²`.
    pub im2col: bool,
}

/// An accelerator modeled analytically from [`AnalyticParams`].
#[derive(Clone, Debug)]
pub struct AnalyticBaseline {
    params: AnalyticParams,
}

impl AnalyticBaseline {
    /// Wraps a parameter set.
    pub fn new(params: AnalyticParams) -> Self {
        AnalyticBaseline { params }
    }

    /// The parameter set.
    pub fn params(&self) -> &AnalyticParams {
        &self.params
    }
}

impl Accelerator for AnalyticBaseline {
    fn name(&self) -> &'static str {
        self.params.name
    }

    fn scheme(&self) -> CompressionScheme {
        self.params.scheme
    }

    fn characteristics(&self) -> Characteristics {
        self.params.characteristics.clone()
    }

    fn simulate_layer(&self, ctx: &LayerContext<'_>) -> LayerStats {
        let p = &self.params;
        let cfg = ctx.cfg;
        let wl = ctx.workload;
        let layer = &wl.layer;
        let dense = layer.dense_mults() as f64;
        let dw = if p.exploits_weight_sparsity {
            (wl.weight_density * p.weight_density_inflation).min(1.0)
        } else {
            1.0
        };
        let da = if p.exploits_act_sparsity {
            wl.act_density
        } else {
            1.0
        };
        let macs = dense * dw * da;
        // Edge fragmentation on the lane dimension. FC layers always map
        // their output neurons onto lanes (matrix-vector product), whatever
        // the conv dataflow fragments on.
        let frag_extent = if layer.kind == LayerKind::FullyConnected {
            layer.k
        } else {
            match p.frag_dim {
                FragDim::Pixels => to_index(layer.output_pixels()),
                FragDim::OutputChannels => layer.k,
            }
        };
        let lanes = p.lane_width.max(1);
        let frag = frag_extent as f64 / ((frag_extent as f64 / lanes as f64).ceil() * lanes as f64);
        let util = p.base_utilization * frag;
        let peak = cfg.total_multipliers() as f64;
        let compute_cycles = cycles_from_f64((macs / (peak * util)).ceil());
        // Event counts.
        let outputs = layer.output_activations();
        let mut c = crate::energy::EnergyCounters::default();
        c.mults = count_from_f64(macs.round());
        c.adds = c.mults;
        c.wb_reads = count_from_f64((macs / p.weight_reuse).round());
        c.ib_reads = count_from_f64((macs / p.act_reuse).round());
        c.index_reads = if p.compressed_weights { c.wb_reads } else { 0 }
            + if p.compressed_acts { c.ib_reads } else { 0 };
        c.ab_accesses = count_from_f64((macs * p.ab_access_factor).round()) + outputs;
        c.ob_writes = outputs;
        c.ppu_ops = outputs;
        c.ccu_ops = count_from_f64((macs * p.others_ops_per_mac).round());
        let act_amplification = if p.im2col && layer.kind != LayerKind::FullyConnected {
            (layer.r * layer.s) as f64 / (layer.stride * layer.stride) as f64
        } else {
            1.0
        };
        let traffic = TrafficModel {
            compressed_acts: p.compressed_acts,
            compressed_weights: p.compressed_weights,
            act_amplification: act_amplification.max(1.0),
        };
        c.dram_bits = traffic.dram_bits(ctx);
        let dram_time_s = ctx.dram.transfer_time_s(c.dram_bits / 8);
        let compute_time_s = compute_cycles as f64 * cfg.cycle_time();
        let energy = crate::energy::energy_of(&c, cfg, ctx.energy);
        LayerStats {
            name: layer.name.clone(),
            compute_cycles,
            dram_time_s,
            time_s: compute_time_s.max(dram_time_s),
            effective_mults: c.mults,
            counters: c,
            energy,
        }
    }
}

/// All nine accelerators of the evaluation (Figs. 7 and 9), in the paper's
/// plotting order.
pub fn evaluation_accelerators() -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(dcnn()),
        Box::new(cnvlutin()),
        Box::new(cambricon_x()),
        Box::new(crate::CartesianAccelerator::scnn()),
        Box::new(sparten()),
        Box::new(cambricon_s()),
        Box::new(sigma()),
        Box::new(sparch()),
        Box::new(crate::CartesianAccelerator::cscnn()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;
    use crate::energy::EnergyTable;
    use crate::workload::LayerWorkload;
    use cscnn_models::LayerDesc;

    fn run(acc: &dyn Accelerator, wd: f64, ad: f64) -> LayerStats {
        let layer = LayerDesc::conv("c", 64, 64, 3, 3, 28, 28, 1, 1);
        let wl = LayerWorkload::synthesize(&layer, wd, ad, acc.scheme().uses_centrosymmetric(), 3);
        let cfg = acc.config();
        let dram = DramConfig::default();
        let energy = EnergyTable::default();
        let ctx = LayerContext {
            cfg: &cfg,
            dram: &dram,
            energy: &energy,
            workload: &wl,
            input_on_chip: true,
            output_fits_on_chip: true,
        };
        acc.simulate_layer(&ctx)
    }

    #[test]
    fn suite_has_nine_accelerators_in_paper_order() {
        let accs = evaluation_accelerators();
        let names: Vec<_> = accs.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "DCNN",
                "Cnvlutin",
                "Cambricon-X",
                "SCNN",
                "SparTen",
                "Cambricon-S",
                "SIGMA",
                "SpArch",
                "CSCNN"
            ]
        );
    }

    #[test]
    fn one_sided_accelerators_sit_between_dense_and_two_sided() {
        let d = run(&dcnn(), 0.4, 0.5);
        let a_only = run(&cnvlutin(), 0.4, 0.5);
        let w_only = run(&cambricon_x(), 0.4, 0.5);
        let two = run(&sparten(), 0.4, 0.5);
        assert!(a_only.compute_cycles < d.compute_cycles);
        assert!(w_only.compute_cycles < d.compute_cycles);
        assert!(two.compute_cycles < a_only.compute_cycles);
        assert!(two.compute_cycles < w_only.compute_cycles);
    }

    #[test]
    fn dense_accelerator_ignores_sparsity() {
        let sparse = run(&dcnn(), 0.2, 0.3);
        let dense = run(&dcnn(), 1.0, 1.0);
        assert_eq!(sparse.compute_cycles, dense.compute_cycles);
    }

    #[test]
    fn gemm_accelerators_pay_im2col_traffic() {
        let layer = LayerDesc::conv("c", 64, 64, 3, 3, 28, 28, 1, 1);
        let wl = LayerWorkload::synthesize(&layer, 0.4, 0.5, false, 3);
        let dram = DramConfig::default();
        let energy = EnergyTable::default();
        let sg = sigma();
        let sp = sparten();
        let cfg_sg = sg.config();
        let cfg_sp = sp.config();
        let ctx_sg = LayerContext {
            cfg: &cfg_sg,
            dram: &dram,
            energy: &energy,
            workload: &wl,
            input_on_chip: false,
            output_fits_on_chip: true,
        };
        let ctx_sp = LayerContext {
            cfg: &cfg_sp,
            dram: &dram,
            energy: &energy,
            workload: &wl,
            input_on_chip: false,
            output_fits_on_chip: true,
        };
        let s1 = sg.simulate_layer(&ctx_sg);
        let s2 = sp.simulate_layer(&ctx_sp);
        assert!(
            s1.counters.dram_bits > 2 * s2.counters.dram_bits,
            "im2col traffic should dominate: {} vs {}",
            s1.counters.dram_bits,
            s2.counters.dram_bits
        );
    }

    #[test]
    fn cambricon_s_keeps_more_weights_than_sparten() {
        let cs = run(&cambricon_s(), 0.4, 0.5);
        let sp = run(&sparten(), 0.4, 0.5);
        assert!(cs.effective_mults > sp.effective_mults);
    }
}
