//! Typed errors for the simulator's hot paths.
//!
//! The detailed PE pipeline and the config/DRAM validation paths report
//! malformed inputs through [`SimError`] instead of panicking, per the
//! `no-panic-in-hot-path` lint rule: a bad fiber coordinate or an
//! inconsistent configuration is a caller bug the simulator must surface
//! as data, not abort a long batch run on.

use std::fmt;

/// A simulation input the model cannot process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A compressed-fiber coordinate lies outside the PE geometry.
    FiberOutOfRange {
        /// Which coordinate was out of range (`"weight row"`, …).
        what: &'static str,
        /// The offending value.
        got: usize,
        /// The exclusive upper bound the geometry allows.
        limit: usize,
    },
    /// A configuration field (or combination) is invalid.
    InvalidConfig {
        /// The offending field or relation.
        field: &'static str,
        /// Why it is rejected.
        reason: &'static str,
    },
    /// A suite worker thread panicked while simulating a model.
    WorkerPanicked {
        /// The model the panicking worker was simulating.
        model: String,
    },
    /// An IR node reached workload synthesis without a measured
    /// [`cscnn_ir::SparsityAnnotation`].
    MissingSparsity {
        /// The offending layer's name.
        layer: String,
    },
    /// An IR reached the simulator with a malformed graph topology
    /// (dangling or backward edge, cycle, bad join arity).
    BadTopology {
        /// The model's name.
        model: String,
        /// The underlying diagnosis, naming the offending node or edge.
        error: cscnn_ir::TopologyError,
    },
    /// A batched request's annotation vector disagrees with the shared
    /// IR's weight-node count
    /// ([`BatchRunner::run_batch_annotated`](crate::BatchRunner::run_batch_annotated)).
    AnnotationCount {
        /// The shared IR's model name.
        model: String,
        /// The offending request's index in the batch.
        request: usize,
        /// Weight-bearing nodes in the IR.
        expected: usize,
        /// Annotations the request supplied.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::FiberOutOfRange { what, got, limit } => {
                write!(f, "{what} {got} out of range (limit {limit})")
            }
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field} {reason}")
            }
            SimError::WorkerPanicked { model } => {
                write!(f, "simulation worker for model `{model}` panicked")
            }
            SimError::MissingSparsity { layer } => {
                write!(
                    f,
                    "layer `{layer}` has no sparsity annotation; annotate the IR \
                     before simulating"
                )
            }
            SimError::BadTopology { model, error } => {
                write!(f, "model `{model}` has an invalid graph topology: {error}")
            }
            SimError::AnnotationCount {
                model,
                request,
                expected,
                got,
            } => {
                write!(
                    f,
                    "batch request {request} for model `{model}` carries {got} \
                     annotations but the IR has {expected} weight-bearing nodes"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = SimError::FiberOutOfRange {
            what: "weight row",
            got: 9,
            limit: 3,
        };
        assert_eq!(e.to_string(), "weight row 9 out of range (limit 3)");
        let e = SimError::InvalidConfig {
            field: "num_pes",
            reason: "must be non-zero",
        };
        assert!(e.to_string().contains("num_pes"));
    }
}
