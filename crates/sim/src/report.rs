//! Simulation result types and derived metrics.

use crate::energy::{EnergyBreakdown, EnergyCounters};
use crate::util::det_sum;

/// Results of simulating one layer on one accelerator.
#[derive(Clone, Debug, Default)]
pub struct LayerStats {
    /// Layer name.
    pub name: String,
    /// Compute cycles (critical path over PEs, stalls included).
    pub compute_cycles: u64,
    /// DRAM transfer time in seconds.
    pub dram_time_s: f64,
    /// Layer latency in seconds: `max(compute, dram)` under double
    /// buffering.
    pub time_s: f64,
    /// Multiplications actually issued.
    pub effective_mults: u64,
    /// Raw event counts.
    pub counters: EnergyCounters,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl LayerStats {
    /// Multiplier-array utilization over the layer's compute time:
    /// `mults / (cycles × total_multipliers)`. The quantity SCNN's paper
    /// reports at 59–79 %; fragmentation, stalls and barriers push it
    /// below 1.
    pub fn multiplier_utilization(&self, total_multipliers: usize) -> f64 {
        if self.compute_cycles == 0 {
            return 0.0;
        }
        self.effective_mults as f64 / (self.compute_cycles as f64 * total_multipliers as f64)
    }
}

cscnn_json::impl_to_json!(LayerStats {
    name,
    compute_cycles,
    dram_time_s,
    time_s,
    effective_mults,
    counters,
    energy,
});

/// Results of simulating a whole network on one accelerator.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Accelerator name.
    pub accelerator: String,
    /// Model name.
    pub model: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerStats>,
}

cscnn_json::impl_to_json!(RunStats {
    accelerator,
    model,
    layers,
});

impl RunStats {
    /// Total latency in seconds. Summed in layer order with compensation
    /// ([`det_sum`]) so totals are bit-identical run to run.
    pub fn total_time_s(&self) -> f64 {
        det_sum(self.layers.iter().map(|l| l.time_s))
    }

    /// Total compute cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.compute_cycles).sum::<u64>()
    }

    /// Total on-chip energy in pJ (the Fig. 9 quantity; DRAM excluded).
    pub fn total_on_chip_pj(&self) -> f64 {
        det_sum(self.layers.iter().map(|l| l.energy.on_chip_pj()))
    }

    /// Total energy including DRAM, in pJ.
    pub fn total_pj(&self) -> f64 {
        det_sum(
            self.layers
                .iter()
                .map(|l| l.energy.on_chip_pj() + l.energy.dram_pj),
        )
    }

    /// Aggregated energy breakdown.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for l in &self.layers {
            total.merge(&l.energy);
        }
        total
    }

    /// Energy-delay product (J·s) using on-chip energy, matching the
    /// paper's EDP comparisons.
    pub fn edp(&self) -> f64 {
        self.total_on_chip_pj() * 1e-12 * self.total_time_s()
    }

    /// Speedup of `self` relative to `baseline` (same model).
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        baseline.total_time_s() / self.total_time_s()
    }

    /// Energy improvement of `self` relative to `baseline`.
    pub fn energy_gain_over(&self, baseline: &RunStats) -> f64 {
        baseline.total_on_chip_pj() / self.total_on_chip_pj()
    }

    /// EDP improvement of `self` relative to `baseline`.
    pub fn edp_gain_over(&self, baseline: &RunStats) -> f64 {
        baseline.edp() / self.edp()
    }
}

/// Geometric mean of a non-empty slice of positive factors.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(factors: &[f64]) -> f64 {
    assert!(!factors.is_empty(), "geomean of empty slice");
    assert!(
        factors.iter().all(|&f| f > 0.0),
        "geomean needs positive values"
    );
    (det_sum(factors.iter().map(|f| f.ln())) / factors.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(times: &[f64], energies: &[f64]) -> RunStats {
        RunStats {
            accelerator: "test".into(),
            model: "m".into(),
            layers: times
                .iter()
                .zip(energies)
                .map(|(&t, &e)| LayerStats {
                    time_s: t,
                    energy: EnergyBreakdown {
                        compute_pj: e,
                        ..Default::default()
                    },
                    ..Default::default()
                })
                .collect(),
        }
    }

    #[test]
    fn totals_sum_layers() {
        let s = stats(&[1.0, 2.0], &[10.0, 20.0]);
        assert_eq!(s.total_time_s(), 3.0);
        assert_eq!(s.total_on_chip_pj(), 30.0);
    }

    #[test]
    fn speedup_and_edp_relations() {
        let fast = stats(&[1.0], &[10.0]);
        let slow = stats(&[2.0], &[30.0]);
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert_eq!(fast.energy_gain_over(&slow), 3.0);
        assert!((fast.edp_gain_over(&slow) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_reciprocal_pair_is_one() {
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }
}
