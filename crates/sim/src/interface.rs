//! The accelerator abstraction shared by CSCNN and all baselines.

use cscnn_models::CompressionScheme;

use crate::dram::DramConfig;
use crate::energy::EnergyTable;
use crate::report::LayerStats;
use crate::util;
use crate::workload::LayerWorkload;
use crate::ArchConfig;

/// Everything an accelerator model needs to simulate one layer.
#[derive(Clone, Debug)]
pub struct LayerContext<'a> {
    /// Architecture parameters (multiplier budget is equalized across
    /// accelerators, §IV).
    pub cfg: &'a ArchConfig,
    /// DRAM timing model.
    pub dram: &'a DramConfig,
    /// Energy constants.
    pub energy: &'a EnergyTable,
    /// The layer's synthesized sparse workload under this accelerator's
    /// compression scheme.
    pub workload: &'a LayerWorkload,
    /// Whether the layer's input activations are already resident in the
    /// global buffer (previous layer's output fit on-chip).
    pub input_on_chip: bool,
    /// Whether the layer's output fits in the global buffer (skips the
    /// DRAM write-back).
    pub output_fits_on_chip: bool,
}

/// A Table IV row: the qualitative characteristics of an accelerator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Characteristics {
    /// Compression approach.
    pub compression: &'static str,
    /// Exploited sparsity: `"-"`, `"A"`, `"W"`, or `"A+W"`.
    pub sparsity: &'static str,
    /// Inner spatial dataflow.
    pub dataflow: &'static str,
}

cscnn_json::impl_to_json!(Characteristics {
    compression,
    sparsity,
    dataflow,
});

/// A simulated accelerator.
pub trait Accelerator: Send + Sync {
    /// Display name.
    fn name(&self) -> &'static str;

    /// The compression scheme whose model variant this accelerator runs
    /// (drives workload synthesis).
    fn scheme(&self) -> CompressionScheme;

    /// The architecture configuration this accelerator is evaluated with.
    /// Multiplier counts are equalized across accelerators (§IV); buffer
    /// sizing may differ (e.g. SCNN's 16 KB vs CSCNN's 10 KB weight buffer).
    fn config(&self) -> ArchConfig {
        ArchConfig::paper()
    }

    /// Table IV characteristics.
    fn characteristics(&self) -> Characteristics;

    /// Simulates one layer.
    fn simulate_layer(&self, ctx: &LayerContext<'_>) -> LayerStats;
}

/// DRAM traffic (bits) common to all accelerators: weight read (compressed
/// per scheme), activation read (compressed where the front-end supports
/// it), output write — with on-chip reuse suppressing input/output legs.
pub struct TrafficModel {
    /// Read activations in compressed form (A-sparsity front ends).
    pub compressed_acts: bool,
    /// Read weights in compressed form (W-sparsity front ends).
    pub compressed_weights: bool,
    /// Activation read amplification (im2col-based GEMM accelerators pay
    /// `R·S`-fold re-reads when lowering convolution to GEMM).
    pub act_amplification: f64,
}

impl TrafficModel {
    /// Computes DRAM traffic in bits for a layer.
    ///
    /// When neither operand's working set fits on chip (weights exceed the
    /// aggregate weight buffers *and* activations exceed the global
    /// buffer), the layer must be temporally tiled and one operand
    /// re-streamed per pass of the other (§III-D: "the input and output
    /// channel dimension can be temporally tiled"). The model charges the
    /// cheaper of the two stationary choices, as a reasonable scheduler
    /// would.
    pub fn dram_bits(&self, ctx: &LayerContext<'_>) -> u64 {
        let w = ctx.workload;
        let cfg = ctx.cfg;
        let word = util::to_count(cfg.word_bits);
        let weight_bits = if self.compressed_weights {
            w.weight_storage_bytes(cfg.word_bits, cfg.index_bits) * 8
        } else {
            let stored = util::to_count(w.layer.k)
                * util::to_count(w.layer.c / w.layer.groups)
                * util::to_count(w.stored_per_slice);
            stored * word
        };
        let act_bits_base = if self.compressed_acts {
            w.act_storage_bytes(cfg.word_bits, cfg.index_bits) * 8
        } else {
            w.layer.input_activations() * word
        };
        let act_bits = if ctx.input_on_chip {
            0
        } else {
            util::count_from_f64(act_bits_base as f64 * self.act_amplification)
        };
        let out_bits = if ctx.output_fits_on_chip {
            0
        } else {
            util::count_from_f64(w.layer.output_activations() as f64 * w.act_density) * word
        };
        let wb_total_bits = util::to_bytes(cfg.wb_bytes * cfg.num_pes()) * 8;
        let glb_bits = util::to_bytes(cfg.glb_bytes) * 8;
        let streamed = if weight_bits > wb_total_bits && act_bits > glb_bits {
            let weight_passes = act_bits.div_ceil(glb_bits);
            let act_passes = weight_bits.div_ceil(wb_total_bits);
            (weight_bits * weight_passes + act_bits).min(weight_bits + act_bits * act_passes)
        } else {
            weight_bits + act_bits
        };
        streamed + out_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscnn_models::LayerDesc;

    fn ctx_parts() -> (ArchConfig, DramConfig, EnergyTable, LayerWorkload) {
        let layer = LayerDesc::conv("t", 8, 16, 3, 3, 14, 14, 1, 1);
        let wl = LayerWorkload::synthesize(&layer, 0.5, 0.5, false, 1);
        (
            ArchConfig::paper(),
            DramConfig::default(),
            EnergyTable::default(),
            wl,
        )
    }

    #[test]
    fn compressed_weights_reduce_traffic() {
        let (cfg, dram, energy, wl) = ctx_parts();
        let ctx = LayerContext {
            cfg: &cfg,
            dram: &dram,
            energy: &energy,
            workload: &wl,
            input_on_chip: false,
            output_fits_on_chip: false,
        };
        let dense = TrafficModel {
            compressed_acts: false,
            compressed_weights: false,
            act_amplification: 1.0,
        };
        let sparse = TrafficModel {
            compressed_acts: true,
            compressed_weights: true,
            act_amplification: 1.0,
        };
        assert!(sparse.dram_bits(&ctx) < dense.dram_bits(&ctx));
    }

    #[test]
    fn on_chip_reuse_eliminates_activation_legs() {
        let (cfg, dram, energy, wl) = ctx_parts();
        let model = TrafficModel {
            compressed_acts: false,
            compressed_weights: false,
            act_amplification: 1.0,
        };
        let off = LayerContext {
            cfg: &cfg,
            dram: &dram,
            energy: &energy,
            workload: &wl,
            input_on_chip: false,
            output_fits_on_chip: false,
        };
        let on = LayerContext {
            input_on_chip: true,
            output_fits_on_chip: true,
            ..off.clone()
        };
        assert!(model.dram_bits(&on) < model.dram_bits(&off));
    }

    #[test]
    fn temporal_tiling_charges_restreaming_when_nothing_fits() {
        // A layer whose compressed weights exceed the aggregate WB and
        // whose activations exceed the GLB must pay re-streaming traffic.
        let layer = LayerDesc::conv("big", 256, 256, 3, 3, 112, 112, 1, 1);
        let wl = LayerWorkload::synthesize(&layer, 0.6, 0.8, false, 2);
        let cfg = ArchConfig::paper();
        let dram = DramConfig::default();
        let energy = EnergyTable::default();
        let ctx = LayerContext {
            cfg: &cfg,
            dram: &dram,
            energy: &energy,
            workload: &wl,
            input_on_chip: false,
            output_fits_on_chip: true,
        };
        let model = TrafficModel {
            compressed_acts: true,
            compressed_weights: true,
            act_amplification: 1.0,
        };
        let weight_bits = wl.weight_storage_bytes(16, 4) * 8;
        let act_bits = wl.act_storage_bytes(16, 4) * 8;
        assert!(weight_bits > (cfg.wb_bytes * cfg.num_pes() * 8) as u64);
        assert!(act_bits > (cfg.glb_bytes * 8) as u64);
        let total = model.dram_bits(&ctx);
        assert!(
            total > weight_bits + act_bits,
            "re-streaming must add traffic: {total} vs {}",
            weight_bits + act_bits
        );
        // And it charges the cheaper stationary choice, not the pricier.
        let weight_passes = act_bits.div_ceil((cfg.glb_bytes * 8) as u64);
        let act_passes = weight_bits.div_ceil((cfg.wb_bytes * cfg.num_pes() * 8) as u64);
        let cheaper =
            (weight_bits * weight_passes + act_bits).min(weight_bits + act_bits * act_passes);
        assert_eq!(total, cheaper);
    }

    #[test]
    fn im2col_amplification_multiplies_act_traffic() {
        let (cfg, dram, energy, wl) = ctx_parts();
        let ctx = LayerContext {
            cfg: &cfg,
            dram: &dram,
            energy: &energy,
            workload: &wl,
            input_on_chip: false,
            output_fits_on_chip: true,
        };
        let base = TrafficModel {
            compressed_acts: false,
            compressed_weights: false,
            act_amplification: 1.0,
        };
        let amp = TrafficModel {
            act_amplification: 9.0,
            ..TrafficModel {
                compressed_acts: false,
                compressed_weights: false,
                act_amplification: 1.0,
            }
        };
        let weight_bits = (16 * 8 * 9 * 16) as u64;
        let base_acts = base.dram_bits(&ctx) - weight_bits;
        let amp_acts = amp.dram_bits(&ctx) - weight_bits;
        assert!((amp_acts as f64 / base_acts as f64 - 9.0).abs() < 0.01);
    }
}
