//! Roofline analysis: per-layer arithmetic intensity vs the accelerator's
//! compute and memory ceilings.
//!
//! The evaluation's `max(compute, memory)` layer-latency model *is* a
//! roofline; this module makes it explicit so layers can be classified as
//! compute- or memory-bound and the `fig7`-style results explained in
//! roofline terms (FC layers sit far left of the ridge; pruned conv layers
//! sit right of it).

use cscnn_models::LayerDesc;

use crate::dram::DramConfig;
use crate::ArchConfig;

/// One layer's position on the roofline.
#[derive(Clone, Debug)]
pub struct RooflinePoint {
    /// Layer name.
    pub layer: String,
    /// Effective MACs the accelerator must execute.
    pub macs: f64,
    /// Off-chip bytes moved.
    pub bytes: f64,
    /// Arithmetic intensity in MACs/byte.
    pub intensity: f64,
    /// Attainable MAC/s under the roofline.
    pub attainable_macs_per_s: f64,
    /// `true` when the memory ceiling binds.
    pub memory_bound: bool,
}

cscnn_json::impl_to_json!(RooflinePoint {
    layer,
    macs,
    bytes,
    intensity,
    attainable_macs_per_s,
    memory_bound,
});

/// The machine's roofline parameters.
#[derive(Clone, Copy, Debug)]
pub struct Roofline {
    /// Peak MAC/s (multipliers × frequency).
    pub peak_macs_per_s: f64,
    /// Peak DRAM bytes/s.
    pub peak_bytes_per_s: f64,
}

cscnn_json::impl_to_json!(Roofline {
    peak_macs_per_s,
    peak_bytes_per_s,
});

impl Roofline {
    /// Builds the roofline of an architecture + DRAM pairing.
    pub fn of(cfg: &ArchConfig, dram: &DramConfig) -> Self {
        Roofline {
            peak_macs_per_s: cfg.total_multipliers() as f64 * cfg.frequency_hz,
            peak_bytes_per_s: dram.peak_bytes_per_s,
        }
    }

    /// Arithmetic intensity (MACs/byte) at the ridge point: layers below
    /// it are memory-bound, above it compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_macs_per_s / self.peak_bytes_per_s
    }

    /// Classifies one layer given its effective MAC count and DRAM bytes.
    pub fn point(&self, layer: &LayerDesc, macs: f64, bytes: f64) -> RooflinePoint {
        let intensity = if bytes > 0.0 {
            macs / bytes
        } else {
            f64::INFINITY
        };
        let memory_ceiling = intensity * self.peak_bytes_per_s;
        let attainable = memory_ceiling.min(self.peak_macs_per_s);
        RooflinePoint {
            layer: layer.name.clone(),
            macs,
            bytes,
            intensity,
            attainable_macs_per_s: attainable,
            memory_bound: memory_ceiling < self.peak_macs_per_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roofline() -> Roofline {
        Roofline::of(&ArchConfig::paper(), &DramConfig::default())
    }

    #[test]
    fn paper_config_roofline_parameters() {
        let r = roofline();
        // 64 multipliers × 800 MHz = 51.2 GMAC/s; DDR3-1600 = 12.8 GB/s.
        assert!((r.peak_macs_per_s - 51.2e9).abs() < 1e6);
        assert!(
            (r.ridge_intensity() - 4.0).abs() < 1e-9,
            "ridge at 4 MACs/byte"
        );
    }

    #[test]
    fn fc_layers_are_memory_bound_conv_layers_compute_bound() {
        let r = roofline();
        // FC: one MAC per weight, each weight read once → intensity ~0.5
        // MACs/byte at 16-bit.
        let fc = LayerDesc::fc("fc", 4096, 4096);
        let fc_macs = fc.dense_mults() as f64;
        let fc_bytes = fc.weights() as f64 * 2.0;
        let p = r.point(&fc, fc_macs, fc_bytes);
        assert!(p.memory_bound, "FC must be memory-bound");
        assert!(p.attainable_macs_per_s < r.peak_macs_per_s);
        // Conv: weights reused across the whole plane → intensity >> ridge.
        let conv = LayerDesc::conv("c", 64, 64, 3, 3, 56, 56, 1, 1);
        let macs = conv.dense_mults() as f64;
        let bytes =
            (conv.weights() + conv.input_activations() + conv.output_activations()) as f64 * 2.0;
        let p = r.point(&conv, macs, bytes);
        assert!(!p.memory_bound, "conv must be compute-bound");
        assert_eq!(p.attainable_macs_per_s, r.peak_macs_per_s);
    }

    #[test]
    fn sparsity_moves_layers_toward_the_ridge() {
        // Pruning removes MACs faster than bytes (indices remain), so
        // effective intensity falls — the roofline view of why sparse
        // accelerators inch toward memory-bound.
        let r = roofline();
        let conv = LayerDesc::conv("c", 64, 64, 3, 3, 14, 14, 1, 1);
        let dense_macs = conv.dense_mults() as f64;
        let bytes = (conv.weights() + conv.input_activations()) as f64 * 2.0;
        let dense = r.point(&conv, dense_macs, bytes);
        let sparse = r.point(&conv, dense_macs * 0.2, bytes * 0.5);
        assert!(sparse.intensity < dense.intensity);
    }
}
