//! Cartesian-product PE cycle model (paper §III-B, Fig. 5/6).
//!
//! A PE holds a `Px × Py` multiplier array. Each round it fetches a vector
//! of `Px` non-zero weights and `Py` non-zero activations of one input
//! channel and computes their full Cartesian product. Per input channel the
//! PE therefore spends `⌈nnzW/Px⌉ · ⌈nnzA/Py⌉` rounds — the `⌈·⌉`s are the
//! *intra-PE fragmentation* the paper discusses — scaled by the
//! accumulator-contention stall factor from [`crate::crossbar`].
//!
//! With `dual = true` (CSCNN) each product is additionally scattered, via
//! the second crossbar, into the second accumulator buffer at the dual
//! coordinate (Eq. 4): same rounds, one extra add + AB access per product.
//! Products of the self-dual central weight receive *nil* dual coordinates
//! and skip the extra work.

use crate::energy::EnergyCounters;
use crate::util::{count_from_f64, cycles_from_f64, to_count};

/// Per-PE simulation result.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PeResult {
    /// Cycles spent (rounds × stall factor + drain).
    pub cycles: u64,
    /// Event counts for the energy model.
    pub counters: EnergyCounters,
}

/// Cartesian-product PE parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CartesianPe {
    /// Weight-vector width.
    pub px: usize,
    /// Activation-vector width.
    pub py: usize,
    /// Sustained cycles per round (≥ 1), from [`crate::crossbar`].
    pub stall_factor: f64,
    /// CSCNN multiplication reuse active for this layer.
    pub dual: bool,
    /// Fraction of products stemming from the self-dual central weight
    /// (`1/⌈R·S/2⌉` for odd kernels, 0 for even); they skip the dual
    /// accumulation.
    pub self_dual_frac: f64,
}

/// Pipeline overhead per processed input channel: the front end swaps to
/// the next channel's weight/activation fibers (pointer chase + first
/// vector fill). Costly for deep networks with many low-work channels —
/// one of the structural reasons SCNN's planar tiling loses on late
/// ResNet/VGG stages.
pub const CHANNEL_SETUP_CYCLES: f64 = 2.0;

impl CartesianPe {
    /// Simulates a convolutional assignment: `channels` holds, per input
    /// channel, the non-zero stored-weight count across this PE's filters
    /// and the non-zero activation count in this PE's tile. `outputs` is
    /// the number of output elements the PE produces (drain + post-process).
    ///
    /// Halo exchange is accounted separately via
    /// [`CartesianPe::halo_exchange`].
    pub fn run_conv(&self, channels: &[(u64, u64)], outputs: u64) -> PeResult {
        let mut cycles_f = 0.0f64;
        let mut c = EnergyCounters::default();
        let px = to_count(self.px);
        let py = to_count(self.py);
        for &(w, a) in channels {
            if w == 0 || a == 0 {
                continue;
            }
            cycles_f += CHANNEL_SETUP_CYCLES;
            let rounds = w.div_ceil(px) * a.div_ceil(py);
            cycles_f += rounds as f64 * self.stall_factor;
            let products = w * a;
            let dual_ops = if self.dual {
                count_from_f64((products as f64 * (1.0 - self.self_dual_frac)).round())
            } else {
                0
            };
            c.mults += products;
            c.adds += products + dual_ops;
            // One banked read-modify-write per accumulation.
            c.ab_accesses += products + dual_ops;
            c.crossbar_words += products + dual_ops;
            c.ccu_ops += products + dual_ops;
            // Input-stationary order (§III-B): the activation vector is held
            // while all weight vectors stream past it.
            c.wb_reads += rounds * px;
            c.index_reads += rounds * px;
            c.ib_reads += a.div_ceil(py) * py;
        }
        // Drain: accumulator contents flow through the PPU into the OB; the
        // CSCNN PPU merges both accumulator buffers with the standing
        // partial sums (§III-B "resolve data hazard").
        let drain_ops: u64 = if self.dual { 3 } else { 1 };
        c.ob_writes += outputs;
        c.ppu_ops += outputs * drain_ops;
        c.ab_accesses += outputs * drain_ops;
        cycles_f += outputs as f64 / (px * py) as f64;
        PeResult {
            cycles: cycles_from_f64(cycles_f.ceil()),
            counters: c,
        }
    }

    /// Accounts for halo-value exchange with neighbour PEs (§III-A): each
    /// incomplete halo partial sum is read from the accumulator, sent
    /// through the PPU to the neighbour, and merged there. Costs one PPU
    /// operation on each side plus drain bandwidth.
    pub fn halo_exchange(&self, halo_outputs: u64) -> PeResult {
        let mut c = EnergyCounters::default();
        c.ppu_ops += 2 * halo_outputs; // send + merge
        c.ab_accesses += 2 * halo_outputs; // read here, accumulate there
        PeResult {
            cycles: halo_outputs.div_ceil(to_count(self.px * self.py)),
            counters: c,
        }
    }

    /// Simulates a fully-connected assignment. The Cartesian product
    /// degenerates for FC layers (each weight meets exactly one activation,
    /// §III-E): only the weight-vector dimension of the array is useful, so
    /// throughput collapses to `Px` MACs/cycle, with zero activations
    /// skipped via the compressed activation stream.
    pub fn run_fc(&self, weight_nnz: u64, act_density: f64, outputs: u64) -> PeResult {
        let products = count_from_f64((weight_nnz as f64 * act_density).round());
        let px = to_count(self.px);
        let rounds = products.div_ceil(px);
        let mut c = EnergyCounters::default();
        c.mults += products;
        c.adds += products;
        c.ab_accesses += products + outputs;
        c.crossbar_words += products;
        c.ccu_ops += products;
        c.wb_reads += rounds * px;
        c.index_reads += rounds * px;
        c.ib_reads += products;
        c.ob_writes += outputs;
        c.ppu_ops += outputs;
        PeResult {
            cycles: cycles_from_f64((rounds as f64 * self.stall_factor).ceil())
                + outputs / (px * to_count(self.py)),
            counters: c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe(dual: bool) -> CartesianPe {
        CartesianPe {
            px: 4,
            py: 4,
            stall_factor: 1.0,
            dual,
            self_dual_frac: 0.2,
        }
    }

    #[test]
    fn exact_vectors_need_no_fragmentation() {
        let r = pe(false).run_conv(&[(8, 8)], 0);
        // 2 weight vectors × 2 act vectors = 4 rounds, + channel setup.
        assert_eq!(r.cycles, 4 + cycles_from_f64(CHANNEL_SETUP_CYCLES));
        assert_eq!(r.counters.mults, 64);
        assert_eq!(r.counters.adds, 64);
    }

    #[test]
    fn fragmentation_rounds_up() {
        let r = pe(false).run_conv(&[(5, 5)], 0);
        // ⌈5/4⌉ = 2 each way → 4 rounds for 25 products (39% utilization),
        // + channel setup.
        assert_eq!(r.cycles, 4 + cycles_from_f64(CHANNEL_SETUP_CYCLES));
        assert_eq!(r.counters.mults, 25);
    }

    #[test]
    fn dual_mode_doubles_accumulations_not_mults() {
        let single = pe(false).run_conv(&[(10, 12)], 0);
        let dual = pe(true).run_conv(&[(10, 12)], 0);
        assert_eq!(single.cycles, dual.cycles, "same rounds");
        assert_eq!(single.counters.mults, dual.counters.mults);
        // 120 products; 80% get a dual accumulation → 96 extra adds.
        assert_eq!(dual.counters.adds, 120 + 96);
        assert!(dual.counters.ab_accesses > single.counters.ab_accesses);
    }

    #[test]
    fn empty_channels_cost_nothing() {
        let r = pe(true).run_conv(&[(0, 100), (100, 0)], 0);
        assert_eq!(r.counters.mults, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn stall_factor_scales_cycles() {
        let mut p = pe(false);
        p.stall_factor = 1.5;
        let r = p.run_conv(&[(16, 16)], 0);
        // 16 rounds × 1.5 + channel setup.
        assert_eq!(r.cycles, 24 + cycles_from_f64(CHANNEL_SETUP_CYCLES));
    }

    #[test]
    fn halo_exchange_charges_both_sides() {
        let r = pe(false).halo_exchange(64);
        assert_eq!(r.counters.ppu_ops, 128, "send + merge");
        assert_eq!(r.counters.ab_accesses, 128);
        assert_eq!(r.cycles, 4);
        let none = pe(false).halo_exchange(0);
        assert_eq!(none.cycles, 0);
    }

    #[test]
    fn fc_throughput_is_px_per_cycle() {
        let r = pe(false).run_fc(400, 1.0, 0);
        assert_eq!(r.cycles, 100);
        assert_eq!(r.counters.mults, 400);
        let sparse = pe(false).run_fc(400, 0.5, 0);
        assert_eq!(sparse.counters.mults, 200);
    }

    #[test]
    fn drain_accounts_for_outputs() {
        let with_out = pe(false).run_conv(&[(8, 8)], 160);
        let without = pe(false).run_conv(&[(8, 8)], 0);
        assert_eq!(with_out.cycles - without.cycles, 10);
        assert_eq!(with_out.counters.ob_writes, 160);
    }
}
