//! Batched simulation intake: many annotated IR requests, one workload
//! cache, a bounded worker pool (see `docs/batching.md`).
//!
//! Serving-style traffic sends thousands of requests that share a handful
//! of network structures; re-synthesizing `LayerWorkload`s per request
//! would dominate the run. [`BatchRunner`] deduplicates requests behind a
//! workload cache: workloads are synthesized **exactly once** per unique
//! annotated IR (identical structure *and* identical annotations — the
//! synthesized sparse structure depends on both) and shared by reference
//! across the pool. Per-request results are bit-identical to sequential
//! [`Runner::run_ir`] calls, independent of worker count and scheduling
//! order, because the cache key is exact (hash probe + full `==`
//! confirmation) and each request is simulated from the same shared
//! workloads in isolation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use cscnn_ir::{ModelIr, SparsityAnnotation};

use crate::error::SimError;
use crate::interface::Accelerator;
use crate::report::RunStats;
use crate::runner::Runner;
use crate::util::{count_from_f64, det_sum, to_count, to_index};
use crate::workload::LayerWorkload;

/// Per-batch workload cache: annotated IR → synthesized workloads.
///
/// Keys are probed by [`ModelIr::annotated_hash`] and confirmed with full
/// `ModelIr` equality, so a hash collision can never alias two requests.
/// Synthesis happens under the cache lock, which is what makes the
/// exactly-once guarantee hold even when every worker requests the same
/// structure simultaneously; the (much heavier) per-layer simulation runs
/// outside the lock.
#[derive(Default)]
struct WorkloadCache {
    entries: Mutex<CacheState>,
}

#[derive(Default)]
struct CacheState {
    entries: Vec<CacheEntry>,
    hits: usize,
    misses: usize,
}

struct CacheEntry {
    hash: u64,
    ir: ModelIr,
    workloads: Arc<Vec<Option<LayerWorkload>>>,
}

impl WorkloadCache {
    /// Returns the shared workloads for `ir`, synthesizing on first sight.
    fn get_or_synthesize(
        &self,
        runner: &Runner,
        ir: &ModelIr,
        centro: bool,
    ) -> Result<Arc<Vec<Option<LayerWorkload>>>, SimError> {
        let hash = ir.annotated_hash();
        // A worker that panicked inside an accelerator model may have
        // poisoned the lock; the critical section only ever pushes fully
        // constructed entries, so the state is safe to adopt.
        let mut state = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) = state
            .entries
            .iter()
            .position(|e| e.hash == hash && e.ir == *ir)
        {
            state.hits += 1;
            return Ok(state.entries[pos].workloads.clone());
        }
        let workloads = Arc::new(runner.ir_workloads(ir, centro)?);
        state.misses += 1;
        state.entries.push(CacheEntry {
            hash,
            ir: ir.clone(),
            workloads: workloads.clone(),
        });
        Ok(workloads)
    }
}

/// Results of one batch: per-request stats in request order, plus the
/// cache counters and aggregate throughput/latency views.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Per-request results, in request order (request `i` of the input
    /// slice is `runs[i]`, exactly as [`Runner::run_ir`] would produce it).
    pub runs: Vec<RunStats>,
    /// Requests served from the workload cache.
    pub cache_hits: usize,
    /// Requests that synthesized a new cache entry — equivalently, the
    /// number of unique annotated IRs in the batch.
    pub cache_misses: usize,
    /// Per-request branch-overlapped makespans in request order, populated
    /// when the batch ran with [`BatchRunner::with_sub_arrays`] > 1 (empty
    /// otherwise). Each entry is [`crate::ScheduleStats::makespan_s`] for
    /// that request; per-node numbers in [`BatchStats::runs`] are
    /// unaffected by overlap.
    pub overlapped_latency_s: Vec<f64>,
}

impl BatchStats {
    /// Number of requests in the batch.
    pub fn requests(&self) -> usize {
        self.runs.len()
    }

    /// Unique annotated IRs the batch contained (= cache misses).
    pub fn unique_structures(&self) -> usize {
        self.cache_misses
    }

    /// Total compute cycles across all requests.
    pub fn total_cycles(&self) -> u64 {
        self.runs.iter().map(RunStats::total_cycles).sum()
    }

    /// Total on-chip energy across all requests, in pJ. Summed in request
    /// order with compensation so the total is bit-identical run to run.
    pub fn total_on_chip_pj(&self) -> f64 {
        det_sum(self.runs.iter().map(RunStats::total_on_chip_pj))
    }

    /// Simulated makespan in seconds: the batch processed back to back on
    /// one accelerator (sum of per-request latencies, in request order).
    pub fn makespan_s(&self) -> f64 {
        det_sum(self.runs.iter().map(RunStats::total_time_s))
    }

    /// Simulated makespan with branch overlap: the sum of per-request
    /// overlapped makespans. `None` when the batch ran sequentially
    /// (`sub_arrays == 1`), where [`BatchStats::makespan_s`] is the answer.
    pub fn overlapped_makespan_s(&self) -> Option<f64> {
        if self.overlapped_latency_s.is_empty() {
            return None;
        }
        Some(det_sum(self.overlapped_latency_s.iter().copied()))
    }

    /// Aggregate throughput in requests per simulated second
    /// (`requests / makespan`), or 0 for an empty batch.
    pub fn throughput_rps(&self) -> f64 {
        let makespan = self.makespan_s();
        if makespan <= 0.0 {
            return 0.0;
        }
        self.requests() as f64 / makespan
    }

    /// Nearest-rank percentile of per-request simulated latency.
    /// `p` is in `[0, 100]`; returns 0 for an empty batch.
    pub fn latency_percentile_s(&self, p: f64) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let mut latencies: Vec<f64> = self.runs.iter().map(RunStats::total_time_s).collect();
        latencies.sort_by(f64::total_cmp);
        let rank = to_index(count_from_f64(
            ((p / 100.0) * latencies.len() as f64).ceil(),
        ));
        latencies[rank.clamp(1, latencies.len()) - 1]
    }

    /// Median simulated request latency in seconds.
    pub fn p50_latency_s(&self) -> f64 {
        self.latency_percentile_s(50.0)
    }

    /// 95th-percentile simulated request latency in seconds.
    pub fn p95_latency_s(&self) -> f64 {
        self.latency_percentile_s(95.0)
    }

    /// The aggregate report as a JSON object (requests, unique structures,
    /// cache counters, cycles, energy, makespan, throughput, p50/p95
    /// latency) — what `sim_batch` prints.
    pub fn summary(&self) -> cscnn_json::Value {
        use cscnn_json::Value;
        let mut doc = Value::Obj(vec![
            ("requests".into(), Value::U64(to_count(self.requests()))),
            (
                "unique_structures".into(),
                Value::U64(to_count(self.unique_structures())),
            ),
            ("cache_hits".into(), Value::U64(to_count(self.cache_hits))),
            (
                "cache_misses".into(),
                Value::U64(to_count(self.cache_misses)),
            ),
            ("total_cycles".into(), Value::U64(self.total_cycles())),
            (
                "total_on_chip_pj".into(),
                Value::F64(self.total_on_chip_pj()),
            ),
            ("makespan_s".into(), Value::F64(self.makespan_s())),
            ("throughput_rps".into(), Value::F64(self.throughput_rps())),
            ("p50_latency_s".into(), Value::F64(self.p50_latency_s())),
            ("p95_latency_s".into(), Value::F64(self.p95_latency_s())),
        ]);
        if let (Value::Obj(pairs), Some(overlapped)) = (&mut doc, self.overlapped_makespan_s()) {
            pairs.push(("overlapped_makespan_s".into(), Value::F64(overlapped)));
        }
        doc
    }
}

/// Batched, multi-threaded intake over a [`Runner`].
///
/// # Example
///
/// ```
/// use cscnn_sim::{Accelerator, BatchRunner, CartesianAccelerator, Runner};
/// use cscnn_models::{catalog, lower, ModelCompression};
///
/// // One annotated structure, many requests.
/// let model = catalog::lenet5();
/// let acc = CartesianAccelerator::cscnn();
/// let mc = ModelCompression::new(model.clone(), acc.scheme());
/// let mut ir = lower::to_ir(&model);
/// for (i, node) in ir.weight_nodes_mut().enumerate() {
///     node.set_sparsity(cscnn_ir::SparsityAnnotation {
///         weight_density: mc.profile.weight_density[i],
///         activation_density: mc.profile.activation_density[i],
///     });
/// }
/// let batch = BatchRunner::new(Runner::new(42)).with_workers(2);
/// let stats = batch.run_batch(&acc, &vec![ir; 4]).unwrap();
/// assert_eq!(stats.requests(), 4);
/// assert_eq!(stats.unique_structures(), 1); // synthesized exactly once
/// ```
#[derive(Clone, Debug)]
pub struct BatchRunner {
    runner: Runner,
    workers: usize,
    sub_arrays: usize,
}

impl BatchRunner {
    /// Creates a batched intake over `runner`, sized by
    /// [`crate::util::configured_workers`]: the validated
    /// `CSCNN_NUM_THREADS` environment variable when set (one knob for
    /// both the tensor kernels and the simulation pool), else one worker
    /// per available CPU (falling back to 4 when parallelism cannot be
    /// queried). Results never depend on the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `CSCNN_NUM_THREADS` is set but invalid.
    pub fn new(runner: Runner) -> Self {
        let workers = crate::util::configured_workers();
        BatchRunner {
            runner,
            workers,
            sub_arrays: 1,
        }
    }

    /// Overrides the worker-pool size (clamped to ≥ 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Schedules each request's independent branches over `sub_arrays` PE
    /// sub-arrays (clamped to ≥ 1; default 1 = sequential). With more than
    /// one, [`BatchStats::overlapped_latency_s`] carries each request's
    /// overlapped makespan; per-node results stay bit-identical.
    #[must_use]
    pub fn with_sub_arrays(mut self, sub_arrays: usize) -> Self {
        self.sub_arrays = sub_arrays.max(1);
        self
    }

    /// The underlying sequential runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// How many scoped worker threads [`BatchRunner::run_batch`] will spawn
    /// for a batch of `requests` entries — never more than the batch has
    /// requests, so small batches (or an empty one) cannot create idle
    /// threads.
    pub fn planned_workers(&self, requests: usize) -> usize {
        self.workers.min(requests)
    }

    /// Simulates every request of a batch on one accelerator.
    ///
    /// Requests are scheduled across the worker pool with a strided
    /// assignment; structurally identical requests (same annotated IR)
    /// share one workload synthesis through the cache. `stats.runs[i]` is
    /// bit-identical to `runner.run_ir(acc, &requests[i])`.
    ///
    /// # Errors
    ///
    /// The first failing request *by request index* (deterministic, not
    /// discovery order): [`SimError::MissingSparsity`] for unannotated
    /// weight nodes, [`SimError::WorkerPanicked`] naming the request's
    /// model when an accelerator model panics mid-simulation. Every worker
    /// is joined before returning.
    pub fn run_batch(
        &self,
        acc: &dyn Accelerator,
        requests: &[ModelIr],
    ) -> Result<BatchStats, SimError> {
        let centro = acc.scheme().uses_centrosymmetric();
        let cache = WorkloadCache::default();
        let workers = self.planned_workers(requests.len());
        if workers == 0 {
            return Ok(BatchStats::default());
        }
        type Slot = Result<(RunStats, Option<f64>), SimError>;
        let mut slots: Vec<Option<Slot>> = Vec::new();
        slots.resize_with(requests.len(), || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cache = &cache;
                    scope.spawn(move || {
                        let mut done: Vec<(usize, Slot)> = Vec::new();
                        for (i, ir) in requests.iter().enumerate().skip(w).step_by(workers) {
                            // A panicking accelerator model must fail only
                            // this request (typed, naming its model), not
                            // take the worker's whole stride down.
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                crate::runner::validate_ir(ir)?;
                                let workloads =
                                    cache.get_or_synthesize(&self.runner, ir, centro)?;
                                let run = self.runner.simulate_prepared(acc, ir, &workloads);
                                if self.sub_arrays > 1 {
                                    let sched = crate::schedule::overlap(ir, run, self.sub_arrays);
                                    Ok((sched.run, Some(sched.makespan_s)))
                                } else {
                                    Ok((run, None))
                                }
                            }))
                            .unwrap_or_else(|_| {
                                Err(SimError::WorkerPanicked {
                                    model: ir.name.clone(),
                                })
                            });
                            done.push((i, result));
                        }
                        done
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(done) => {
                        for (i, result) in done {
                            slots[i] = Some(result);
                        }
                    }
                    // catch_unwind above makes this unreachable in practice;
                    // keep the run_suite-style fallback so a pathological
                    // panic still surfaces as a typed error.
                    Err(_) => {
                        if let Some(ir) = requests.iter().skip(w).step_by(workers).next() {
                            slots[w] = Some(Err(SimError::WorkerPanicked {
                                model: ir.name.clone(),
                            }));
                        }
                    }
                }
            }
        });

        let mut runs = Vec::with_capacity(requests.len());
        let mut overlapped_latency_s = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok((stats, makespan))) => {
                    runs.push(stats);
                    if let Some(m) = makespan {
                        overlapped_latency_s.push(m);
                    }
                }
                Some(Err(err)) => return Err(err),
                None => {
                    // A lost slot means its worker died without reporting;
                    // name the request so the failure is actionable.
                    return Err(SimError::WorkerPanicked {
                        model: requests[i].name.clone(),
                    });
                }
            }
        }
        let state = cache
            .entries
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        Ok(BatchStats {
            runs,
            cache_hits: state.hits,
            cache_misses: state.misses,
            overlapped_latency_s,
        })
    }

    /// Simulates one shared IR under many per-request annotation vectors —
    /// the "same network, different measured sparsity per request" shape of
    /// serving traffic. Each vector must carry exactly one annotation per
    /// weight-bearing node, in order; requests with identical vectors share
    /// one workload synthesis.
    ///
    /// # Errors
    ///
    /// [`SimError::AnnotationCount`] naming the first request whose vector
    /// length disagrees with the IR's weight-node count, plus everything
    /// [`BatchRunner::run_batch`] can return.
    pub fn run_batch_annotated(
        &self,
        acc: &dyn Accelerator,
        ir: &ModelIr,
        annotations: &[Vec<SparsityAnnotation>],
    ) -> Result<BatchStats, SimError> {
        let expected = ir.num_weight_nodes();
        let requests = annotations
            .iter()
            .enumerate()
            .map(|(request, anns)| {
                if anns.len() != expected {
                    return Err(SimError::AnnotationCount {
                        model: ir.name.clone(),
                        request,
                        expected,
                        got: anns.len(),
                    });
                }
                let mut annotated = ir.clone();
                for (node, ann) in annotated.weight_nodes_mut().zip(anns) {
                    node.set_sparsity(*ann);
                }
                Ok(annotated)
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.run_batch(acc, &requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CartesianAccelerator;
    use cscnn_models::{catalog, lower, ModelCompression};

    fn annotated_ir(model: &cscnn_models::ModelDesc, acc: &dyn Accelerator) -> ModelIr {
        let mc = ModelCompression::new(model.clone(), acc.scheme());
        let mut ir = lower::to_ir(model);
        for (i, node) in ir.weight_nodes_mut().enumerate() {
            node.set_sparsity(SparsityAnnotation {
                weight_density: mc.profile.weight_density[i],
                activation_density: mc.profile.activation_density[i],
            });
        }
        ir
    }

    #[test]
    fn batch_matches_sequential_and_dedups_synthesis() {
        let acc = CartesianAccelerator::cscnn();
        let ir = annotated_ir(&catalog::lenet5(), &acc);
        let runner = Runner::new(42);
        let batch = BatchRunner::new(runner.clone()).with_workers(4);
        let requests = vec![ir.clone(); 16];
        let stats = batch.run_batch(&acc, &requests).expect("annotated batch");
        assert_eq!(stats.requests(), 16);
        assert_eq!(stats.cache_misses, 1, "synthesized exactly once");
        assert_eq!(stats.cache_hits, 15);
        let sequential = runner.run_ir(&acc, &ir).expect("annotated IR");
        for run in &stats.runs {
            assert_eq!(run.total_cycles(), sequential.total_cycles());
            assert_eq!(run.total_on_chip_pj(), sequential.total_on_chip_pj());
            assert_eq!(run.model, sequential.model);
        }
    }

    #[test]
    fn mixed_batch_keeps_request_order() {
        let acc = CartesianAccelerator::cscnn();
        let lenet = annotated_ir(&catalog::lenet5(), &acc);
        let convnet = annotated_ir(&catalog::convnet(), &acc);
        let requests = vec![lenet.clone(), convnet.clone(), lenet, convnet];
        let stats = BatchRunner::new(Runner::new(7))
            .with_workers(3)
            .run_batch(&acc, &requests)
            .expect("annotated batch");
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cache_hits, 2);
        let models: Vec<&str> = stats.runs.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(models, ["LeNet-5", "ConvNet", "LeNet-5", "ConvNet"]);
    }

    #[test]
    fn unannotated_request_fails_with_first_index_error() {
        let acc = CartesianAccelerator::cscnn();
        let good = annotated_ir(&catalog::lenet5(), &acc);
        let bare = lower::to_ir(&catalog::lenet5());
        let err = BatchRunner::new(Runner::new(1))
            .run_batch(&acc, &[good, bare])
            .expect_err("second request unannotated");
        assert!(matches!(err, SimError::MissingSparsity { .. }));
    }

    #[test]
    fn annotation_vectors_expand_and_validate() {
        let acc = CartesianAccelerator::cscnn();
        let ir = annotated_ir(&catalog::lenet5(), &acc);
        let n = ir.num_weight_nodes();
        let anns: Vec<SparsityAnnotation> = (0..n)
            .map(|i| SparsityAnnotation {
                weight_density: 0.3 + 0.05 * i as f64,
                activation_density: 0.9,
            })
            .collect();
        let batch = BatchRunner::new(Runner::new(5)).with_workers(2);
        let stats = batch
            .run_batch_annotated(&acc, &ir, &[anns.clone(), anns.clone()])
            .expect("matching annotation vectors");
        assert_eq!(stats.requests(), 2);
        assert_eq!(stats.cache_misses, 1, "identical vectors share synthesis");
        let err = batch
            .run_batch_annotated(&acc, &ir, &[anns[..n - 1].to_vec()])
            .expect_err("short vector");
        assert_eq!(
            err,
            SimError::AnnotationCount {
                model: "LeNet-5".into(),
                request: 0,
                expected: n,
                got: n - 1,
            }
        );
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let acc = CartesianAccelerator::cscnn();
        let stats = BatchRunner::new(Runner::new(1))
            .run_batch(&acc, &[])
            .expect("empty batch");
        assert_eq!(stats.requests(), 0);
        assert_eq!(stats.throughput_rps(), 0.0);
        assert_eq!(stats.p95_latency_s(), 0.0);
        assert_eq!(stats.summary()["requests"], 0u64);
        assert_eq!(stats.overlapped_makespan_s(), None);
    }

    #[test]
    fn small_batches_never_plan_idle_workers() {
        // Regression: a batch smaller than the pool used to spawn
        // `min(workers, max(requests, 1))` scoped threads — one idle thread
        // for an empty batch. The spawn count must never exceed the request
        // count.
        let batch = BatchRunner::new(Runner::new(1)).with_workers(8);
        assert_eq!(batch.planned_workers(0), 0, "empty batch spawns nothing");
        assert_eq!(batch.planned_workers(3), 3);
        assert_eq!(batch.planned_workers(100), 8);
        for requests in 0..12 {
            assert!(batch.planned_workers(requests) <= requests);
        }
    }

    #[test]
    fn batch_validates_topology_like_run_ir() {
        use cscnn_ir::IrEdge;
        let acc = CartesianAccelerator::cscnn();
        let mut bad = annotated_ir(&catalog::lenet5(), &acc);
        bad.edges.push(IrEdge::new(0, bad.nodes.len() + 5));
        let err = BatchRunner::new(Runner::new(3))
            .run_batch(&acc, &[bad])
            .expect_err("dangling edge");
        assert!(matches!(err, SimError::BadTopology { .. }), "{err}");
    }

    #[test]
    fn sub_arrays_surface_overlapped_makespans() {
        let acc = CartesianAccelerator::cscnn();
        // LeNet-5 is a linear chain: overlap must change nothing but still
        // report per-request makespans equal to the sequential sums.
        let ir = annotated_ir(&catalog::lenet5(), &acc);
        let stats = BatchRunner::new(Runner::new(6))
            .with_workers(2)
            .with_sub_arrays(4)
            .run_batch(&acc, &[ir.clone(), ir])
            .expect("annotated batch");
        assert_eq!(stats.overlapped_latency_s.len(), 2);
        for (run, &overlapped) in stats.runs.iter().zip(&stats.overlapped_latency_s) {
            assert!((overlapped - run.total_time_s()).abs() <= 1e-12 * run.total_time_s());
        }
        let summary = stats.summary();
        assert!(summary.get("overlapped_makespan_s").is_some());
    }

    #[test]
    fn aggregate_percentiles_are_order_statistics() {
        let mk = |t: f64| RunStats {
            layers: vec![crate::report::LayerStats {
                time_s: t,
                ..Default::default()
            }],
            ..Default::default()
        };
        let stats = BatchStats {
            runs: (1..=20).map(|i| mk(i as f64)).collect(),
            cache_hits: 0,
            cache_misses: 20,
            ..Default::default()
        };
        assert_eq!(stats.p50_latency_s(), 10.0);
        assert_eq!(stats.p95_latency_s(), 19.0);
        assert_eq!(stats.latency_percentile_s(100.0), 20.0);
        assert_eq!(stats.latency_percentile_s(0.0), 1.0);
        assert!((stats.makespan_s() - 210.0).abs() < 1e-12);
        assert!((stats.throughput_rps() - 20.0 / 210.0).abs() < 1e-12);
    }

    #[test]
    fn panicking_accelerator_fails_only_with_a_typed_error() {
        use crate::interface::{Characteristics, LayerContext};
        use crate::report::LayerStats;
        struct Exploding;
        impl Accelerator for Exploding {
            fn name(&self) -> &'static str {
                "Exploding"
            }
            fn scheme(&self) -> cscnn_models::CompressionScheme {
                cscnn_models::CompressionScheme::Dense
            }
            fn characteristics(&self) -> Characteristics {
                Characteristics {
                    compression: "-",
                    sparsity: "-",
                    dataflow: "-",
                }
            }
            fn simulate_layer(&self, _ctx: &LayerContext<'_>) -> LayerStats {
                panic!("injected fault")
            }
        }
        let acc = Exploding;
        let ir = annotated_ir(&catalog::lenet5(), &CartesianAccelerator::cscnn());
        let err = BatchRunner::new(Runner::new(2))
            .with_workers(2)
            .run_batch(&acc, &[ir])
            .expect_err("accelerator panics");
        assert_eq!(
            err,
            SimError::WorkerPanicked {
                model: "LeNet-5".into()
            }
        );
    }
}
