//! Chrome-tracing export: renders simulated runs as a `chrome://tracing` /
//! Perfetto-compatible timeline, one lane per accelerator, one slice per
//! layer (with compute vs DRAM attribution in the slice arguments).

use serde::Serialize;

use crate::report::RunStats;

/// One Chrome trace event (the "X" complete-event form).
#[derive(Serialize)]
struct TraceEvent<'a> {
    name: &'a str,
    ph: &'static str,
    /// Timestamp in microseconds.
    ts: f64,
    /// Duration in microseconds.
    dur: f64,
    pid: u32,
    tid: u32,
    args: TraceArgs,
}

#[derive(Serialize)]
struct TraceArgs {
    compute_cycles: u64,
    dram_time_us: f64,
    effective_mults: u64,
    bound: &'static str,
}

/// Renders runs as Chrome trace JSON. Each run occupies its own thread
/// lane (`tid`), with layers laid out back-to-back in simulated time.
///
/// # Errors
///
/// Returns a serialization error (practically impossible).
pub fn to_chrome_trace(runs: &[RunStats]) -> Result<String, serde_json::Error> {
    let mut events = Vec::new();
    for (tid, run) in runs.iter().enumerate() {
        let mut cursor_us = 0.0f64;
        for layer in &run.layers {
            let dur = layer.time_s * 1e6;
            events.push(TraceEvent {
                name: &layer.name,
                ph: "X",
                ts: cursor_us,
                dur,
                pid: 0,
                tid: tid as u32,
                args: TraceArgs {
                    compute_cycles: layer.compute_cycles,
                    dram_time_us: layer.dram_time_s * 1e6,
                    effective_mults: layer.effective_mults,
                    bound: if layer.dram_time_s * 1e6 >= dur {
                        "memory"
                    } else {
                        "compute"
                    },
                },
            });
            cursor_us += dur;
        }
    }
    serde_json::to_string(&events)
}

/// Writes the Chrome trace to `path` (open in `chrome://tracing` or
/// Perfetto).
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_chrome_trace(runs: &[RunStats], path: &std::path::Path) -> std::io::Result<()> {
    let json = to_chrome_trace(runs).map_err(std::io::Error::other)?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CartesianAccelerator, Runner};
    use cscnn_models::catalog;

    #[test]
    fn trace_has_one_slice_per_layer_in_time_order() {
        let runner = Runner::new(1);
        let runs = vec![
            runner.run_model(&CartesianAccelerator::scnn(), &catalog::lenet5()),
            runner.run_model(&CartesianAccelerator::cscnn(), &catalog::lenet5()),
        ];
        let json = to_chrome_trace(&runs).expect("serializable");
        let events: serde_json::Value = serde_json::from_str(&json).expect("valid");
        let arr = events.as_array().expect("array");
        assert_eq!(arr.len(), 2 * runs[0].layers.len());
        // Slices within one lane are back-to-back and non-overlapping.
        let lane0: Vec<&serde_json::Value> =
            arr.iter().filter(|e| e["tid"] == 0).collect();
        let mut cursor = 0.0;
        for e in lane0 {
            let ts = e["ts"].as_f64().expect("ts");
            let dur = e["dur"].as_f64().expect("dur");
            assert!((ts - cursor).abs() < 1e-9, "back-to-back layout");
            assert!(dur > 0.0);
            cursor = ts + dur;
        }
        // FC layers are flagged memory-bound.
        let fc = arr
            .iter()
            .find(|e| e["name"] == "F5")
            .expect("F5 present");
        assert_eq!(fc["args"]["bound"], "memory");
    }
}
