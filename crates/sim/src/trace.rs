//! Chrome-tracing export: renders simulated runs as a `chrome://tracing` /
//! Perfetto-compatible timeline, one lane per accelerator, one slice per
//! layer (with compute vs DRAM attribution in the slice arguments).

use cscnn_json::{ToJson, Value};

use crate::report::RunStats;
use crate::util::to_count;

/// Builds one Chrome trace event (the "X" complete-event form).
fn trace_event(name: &str, ts_us: f64, dur_us: f64, tid: usize, args: Value) -> Value {
    Value::Obj(vec![
        ("name".to_string(), name.to_json()),
        ("ph".to_string(), "X".to_json()),
        // Timestamps and durations are in microseconds.
        ("ts".to_string(), ts_us.to_json()),
        ("dur".to_string(), dur_us.to_json()),
        ("pid".to_string(), Value::U64(0)),
        ("tid".to_string(), Value::U64(to_count(tid))),
        ("args".to_string(), args),
    ])
}

/// Renders runs as Chrome trace JSON. Each run occupies its own thread
/// lane (`tid`), with layers laid out back-to-back in simulated time.
///
/// # Errors
///
/// Returns a serialization error (practically impossible).
pub fn to_chrome_trace(runs: &[RunStats]) -> Result<String, cscnn_json::Error> {
    let mut events = Vec::new();
    for (tid, run) in runs.iter().enumerate() {
        let mut cursor_us = 0.0f64;
        for layer in &run.layers {
            let dur = layer.time_s * 1e6;
            let args = Value::Obj(vec![
                ("compute_cycles".to_string(), layer.compute_cycles.to_json()),
                (
                    "dram_time_us".to_string(),
                    (layer.dram_time_s * 1e6).to_json(),
                ),
                (
                    "effective_mults".to_string(),
                    layer.effective_mults.to_json(),
                ),
                (
                    "bound".to_string(),
                    if layer.dram_time_s * 1e6 >= dur {
                        "memory".to_json()
                    } else {
                        "compute".to_json()
                    },
                ),
            ]);
            events.push(trace_event(&layer.name, cursor_us, dur, tid, args));
            cursor_us += dur;
        }
    }
    cscnn_json::to_string(&Value::Arr(events))
}

/// Writes the Chrome trace to `path` (open in `chrome://tracing` or
/// Perfetto).
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_chrome_trace(runs: &[RunStats], path: &std::path::Path) -> std::io::Result<()> {
    let json = to_chrome_trace(runs).map_err(std::io::Error::other)?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CartesianAccelerator, Runner};
    use cscnn_models::catalog;

    #[test]
    fn trace_has_one_slice_per_layer_in_time_order() {
        let runner = Runner::new(1);
        let runs = vec![
            runner.run_model(&CartesianAccelerator::scnn(), &catalog::lenet5()),
            runner.run_model(&CartesianAccelerator::cscnn(), &catalog::lenet5()),
        ];
        let json = to_chrome_trace(&runs).expect("serializable");
        let events: cscnn_json::Value = cscnn_json::from_str(&json).expect("valid");
        let arr = events.as_array().expect("array");
        assert_eq!(arr.len(), 2 * runs[0].layers.len());
        // Slices within one lane are back-to-back and non-overlapping.
        let lane0: Vec<&cscnn_json::Value> = arr.iter().filter(|e| e["tid"] == 0).collect();
        let mut cursor = 0.0;
        for e in lane0 {
            let ts = e["ts"].as_f64().expect("ts");
            let dur = e["dur"].as_f64().expect("dur");
            assert!((ts - cursor).abs() < 1e-9, "back-to-back layout");
            assert!(dur > 0.0);
            cursor = ts + dur;
        }
        // FC layers are flagged memory-bound.
        let fc = arr.iter().find(|e| e["name"] == "F5").expect("F5 present");
        assert_eq!(fc["args"]["bound"], "memory");
    }
}
