//! The CSCNN + EIE hybrid accelerator (paper §III-E).
//!
//! The Cartesian-product dataflow degenerates on fully-connected layers
//! (each weight meets exactly one activation), so the paper suggests that
//! "designers should consider using both CSCNN and an architecture
//! optimized for FC layers (such as EIE)". This module realizes that
//! recommendation: convolutional layers run on the CSCNN model, FC layers
//! on the EIE model, sharing the multiplier budget.

use cscnn_models::{CompressionScheme, LayerKind};

use crate::baselines::{self, AnalyticBaseline};
use crate::interface::{Accelerator, Characteristics, LayerContext};
use crate::report::LayerStats;
use crate::ArchConfig;
use crate::CartesianAccelerator;

/// CSCNN for convolutions, EIE for fully-connected layers.
///
/// # Example
///
/// ```
/// use cscnn_sim::hybrid::CscnnEie;
/// use cscnn_sim::interface::Accelerator;
///
/// let h = CscnnEie::new();
/// assert_eq!(h.name(), "CSCNN+EIE");
/// ```
pub struct CscnnEie {
    conv_engine: CartesianAccelerator,
    fc_engine: AnalyticBaseline,
}

impl CscnnEie {
    /// Creates the hybrid with the paper's CSCNN configuration.
    pub fn new() -> Self {
        CscnnEie {
            conv_engine: CartesianAccelerator::cscnn(),
            fc_engine: baselines::eie(),
        }
    }
}

impl Default for CscnnEie {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for CscnnEie {
    fn name(&self) -> &'static str {
        "CSCNN+EIE"
    }

    fn scheme(&self) -> CompressionScheme {
        // Conv layers carry the centrosymmetric structure; FC layers are
        // ineligible anyway, so the CSCNN+Pruning profile is correct for
        // both engines.
        CompressionScheme::CscnnPruning
    }

    fn config(&self) -> ArchConfig {
        self.conv_engine.config()
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics {
            compression: "Centrosymmetric filters",
            sparsity: "A+W",
            dataflow: "Cartesian product + CSC (FC)",
        }
    }

    fn simulate_layer(&self, ctx: &LayerContext<'_>) -> LayerStats {
        if ctx.workload.layer.kind == LayerKind::FullyConnected {
            self.fc_engine.simulate_layer(ctx)
        } else {
            self.conv_engine.simulate_layer(ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;
    use cscnn_models::catalog;

    #[test]
    fn hybrid_accelerates_fc_heavy_networks() {
        let runner = Runner::new(11);
        let model = catalog::alexnet(); // ~58 M FC MACs
        let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
        let hybrid = runner.run_model(&CscnnEie::new(), &model);
        // FC layers (last three) are DRAM-bound, so latency ties — the
        // paper calls them "memory-hungry" — but the hybrid's *compute*
        // must beat the degenerate Cartesian FC path (freeing the array
        // earlier and saving energy).
        let fc_cscnn: u64 = cscnn.layers[5..].iter().map(|l| l.compute_cycles).sum();
        let fc_hybrid: u64 = hybrid.layers[5..].iter().map(|l| l.compute_cycles).sum();
        assert!(
            fc_hybrid < fc_cscnn,
            "EIE compute must beat Cartesian FC: {fc_hybrid} vs {fc_cscnn}"
        );
        // And the network overall is never slower.
        assert!(hybrid.total_time_s() <= cscnn.total_time_s() * 1.001);
    }

    #[test]
    fn hybrid_matches_cscnn_on_conv_layers() {
        let runner = Runner::new(12);
        let model = catalog::vgg16_cifar();
        let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
        let hybrid = runner.run_model(&CscnnEie::new(), &model);
        for (a, b) in cscnn.layers.iter().zip(&hybrid.layers).take(13) {
            assert_eq!(a.compute_cycles, b.compute_cycles, "{}", a.name);
        }
    }
}
