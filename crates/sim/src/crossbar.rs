//! Accumulator-bank contention model.
//!
//! Every cycle a Cartesian-product PE scatters `Px·Py` products through a
//! crossbar into `2·Px·Py` accumulator banks (SCNN's 2× banking). Banks
//! accept one update per cycle and front small FIFOs; a round stalls when a
//! target FIFO is full. [`stall_factor`] measures the sustained
//! cycles-per-round of this system with a seeded micro-simulation over
//! structured coordinate streams (weights sharing output channels, activations
//! drawn from a tile), and caches the result per configuration.
//!
//! CSCNN's PE drives *two* such scatter networks (original and dual
//! coordinates); a round stalls if either backs up, so its factor is the
//! max of two coupled streams.

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

use cscnn_rng::rngs::StdRng;
use cscnn_rng::{Rng, SeedableRng};

use crate::util::{to_count, to_index};

/// FIFO depth in front of each accumulator bank.
const FIFO_DEPTH: u32 = 6;
/// Rounds simulated per estimate.
const ROUNDS: usize = 4000;
/// Deterministic seed for the micro-simulation.
const SEED: u64 = 0xacc0_ba2c;

/// Key: (px, py, buffers).
type Key = (usize, usize, usize);

fn cache() -> &'static Mutex<HashMap<Key, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Sustained cycles per multiplier-array round for a PE with a `px × py`
/// array and `buffers` independent accumulator buffers (1 = SCNN, 2 =
/// CSCNN). Always ≥ 1; deterministic for a given configuration.
pub fn stall_factor(px: usize, py: usize, buffers: usize) -> f64 {
    assert!(px > 0 && py > 0 && buffers > 0);
    let key = (px, py, buffers);
    if let Some(&v) = cache().lock().expect("cache lock").get(&key) {
        return v;
    }
    let v = simulate(px, py, buffers);
    cache().lock().expect("cache lock").insert(key, v);
    v
}

fn simulate(px: usize, py: usize, buffers: usize) -> f64 {
    let banks = 2 * px * py;
    let mut rng = StdRng::seed_from_u64(SEED ^ (to_count(px) << 8) ^ (to_count(py) << 16));
    let mut fifos = vec![vec![0u32; banks]; buffers];
    let mut cycles: u64 = 0;
    // Model a 3x3-kernel layer over a 16x16 tile: weight vectors span
    // (k, r, s) fibers where consecutive weights mostly share k.
    let kernel = 3usize;
    let tile = 16usize;
    for _ in 0..ROUNDS {
        // Structured coordinates for this round. Entries of a compressed
        // fiber are distinct by construction, so vectors are sampled
        // without replacement.
        let k_base: usize = rng.gen_range(0..64);
        let mut weights: Vec<(usize, usize, usize)> = Vec::with_capacity(px);
        while weights.len() < px {
            let cand = (
                k_base + weights.len() / 2, // consecutive weights share k
                rng.gen_range(0..kernel),
                rng.gen_range(0..kernel),
            );
            if !weights.contains(&cand) {
                weights.push(cand);
            }
        }
        let mut acts: Vec<(usize, usize)> = Vec::with_capacity(py);
        while acts.len() < py {
            let cand = (rng.gen_range(0..tile), rng.gen_range(0..tile));
            if !acts.contains(&cand) {
                acts.push(cand);
            }
        }
        // Bank targets per buffer.
        let mut targets: Vec<Vec<usize>> = vec![Vec::with_capacity(px * py); buffers];
        for &(k, r, s) in &weights {
            for &(x, y) in &acts {
                let ox = x + kernel - 1 - r;
                let oy = y + kernel - 1 - s;
                targets[0].push(bank_hash(k, ox, oy, banks));
                if buffers > 1 {
                    // Dual coordinate (Eq. 3's second output).
                    let dx = x + r;
                    let dy = y + s;
                    targets[1].push(bank_hash(k, dx, dy, banks));
                }
            }
        }
        // Stall until every target FIFO can absorb its share, then issue.
        loop {
            let mut incoming = vec![vec![0u32; banks]; buffers];
            for (b, t) in targets.iter().enumerate() {
                for &bank in t {
                    incoming[b][bank] += 1;
                }
            }
            // A bank can absorb the round when its FIFO has room; if a
            // single round targets one bank more times than the FIFO is
            // deep, the best the hardware can do is issue into an empty
            // FIFO (the excess drains in subsequent cycles).
            let fits = fifos.iter().zip(&incoming).all(|(f, inc)| {
                f.iter()
                    .zip(inc)
                    .all(|(&q, &i)| q + i <= FIFO_DEPTH || (q == 0 && i > FIFO_DEPTH))
            });
            // One cycle elapses either way; each bank drains one entry.
            cycles += 1;
            for f in &mut fifos {
                for q in f.iter_mut() {
                    *q = q.saturating_sub(1);
                }
            }
            if fits {
                for (f, inc) in fifos.iter_mut().zip(&incoming) {
                    for (q, &i) in f.iter_mut().zip(inc) {
                        *q += i;
                    }
                }
                break;
            }
        }
    }
    cycles as f64 / ROUNDS as f64
}

#[inline]
pub(crate) fn bank_hash(k: usize, x: usize, y: usize, banks: usize) -> usize {
    // Well-mixed address hash (SCNN banks accumulator addresses so that
    // neighbouring output coordinates spread across banks; 2× banking then
    // makes residual conflicts rare).
    let mut h = to_count(k) << 32 | to_count(x) << 16 | to_count(y);
    h = h.wrapping_add(0x9e3779b97f4a7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    to_index((h ^ (h >> 31)) % to_count(banks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_is_at_least_one() {
        assert!(stall_factor(4, 4, 1) >= 1.0);
        assert!(stall_factor(4, 4, 2) >= 1.0);
    }

    #[test]
    fn dual_buffers_stall_no_less_than_single() {
        let single = stall_factor(4, 4, 1);
        let dual = stall_factor(4, 4, 2);
        assert!(dual >= single - 1e-9, "single={single} dual={dual}");
    }

    #[test]
    fn factor_is_modest_with_double_banking() {
        // SCNN chose 2x banks precisely to keep contention rare.
        let f = stall_factor(4, 4, 1);
        assert!(f < 1.5, "f={f}");
    }

    #[test]
    fn results_are_cached_and_deterministic() {
        let a = stall_factor(2, 2, 1);
        let b = stall_factor(2, 2, 1);
        assert_eq!(a, b);
    }
}
