#![warn(missing_docs)]
// Accounting exactness: narrowing casts in this crate must go through
// `util`'s checked helpers (see docs/static_analysis.md). The workspace
// sets these clippy lints to "warn"; the accounting crates escalate.
#![deny(clippy::cast_possible_truncation)]
#![deny(clippy::cast_sign_loss)]
#![deny(clippy::cast_possible_wrap)]

//! # cscnn-sim
//!
//! A cycle-level simulator of the CSCNN accelerator (HPCA 2021) and its
//! eight published baselines, with energy, area and DRAM models — the
//! substrate for every hardware figure in the paper's evaluation.
//!
//! The simulator follows the paper's own methodology (customized TimeLoop +
//! DRAMSim2, §IV): per-layer dataflow models driven by synthesized sparse
//! workloads at profiled densities, with compute time derived from the
//! structural round/stall/barrier behaviour of each dataflow and memory
//! time from a bank/row DRAM model; layer latency is
//! `max(compute, memory)`.
//!
//! Module map:
//! - [`ArchConfig`] — §IV architecture parameters.
//! - [`workload`] — synthesized per-layer sparse structure.
//! - [`pe`] + [`crossbar`] — Cartesian-product PE rounds, fragmentation,
//!   accumulator-bank contention, CSCNN dual accumulation.
//! - [`tiling`] — planar / output-channel / mixed spatial tiling (§III-C).
//! - [`CartesianAccelerator`] — SCNN and CSCNN (and the Fig. 11 ablations).
//! - [`baselines`] — DCNN, Cnvlutin, Cambricon-X/S, SparTen, SIGMA, SpArch.
//! - [`energy`] / [`area`] / [`dram`] — the cost models.
//! - [`Runner`] — whole-network and suite simulation.
//! - [`BatchRunner`] — batched intake of annotated IR requests with a
//!   workload cache and a worker pool (see `docs/batching.md`).
//!
//! # Example
//!
//! ```
//! use cscnn_models::catalog;
//! use cscnn_sim::{baselines, CartesianAccelerator, Runner};
//!
//! let runner = Runner::new(7);
//! let model = catalog::lenet5();
//! let dcnn = runner.run_model(&baselines::dcnn(), &model);
//! let cscnn = runner.run_model(&CartesianAccelerator::cscnn(), &model);
//! assert!(cscnn.speedup_over(&dcnn) > 1.0);
//! ```

mod accelerator;
pub mod area;
pub mod baselines;
pub mod batch;
mod config;
pub mod crossbar;
pub mod dram;
pub mod energy;
pub mod error;
pub mod export;
pub mod hybrid;
pub mod interface;
pub mod pe;
pub mod pe_detailed;
pub mod report;
pub mod roofline;
mod runner;
pub mod schedule;
pub mod tiling;
pub mod trace;
pub mod util;
pub mod validation;
pub mod workload;

pub use accelerator::CartesianAccelerator;
pub use batch::{BatchRunner, BatchStats};
pub use config::ArchConfig;
pub use error::SimError;
pub use interface::{Accelerator, Characteristics, LayerContext};
pub use report::{geomean, LayerStats, RunStats};
pub use runner::Runner;
pub use schedule::{Placement, ScheduleStats};
