//! Checked numeric conversions and deterministic float accumulation.
//!
//! The simulator's credibility rests on its cycle/byte/energy accounting
//! being exact, so bare `as` narrowing casts are banned in this crate by
//! the `no-narrowing-cast` rule of `cscnn-lint` (see
//! `docs/static_analysis.md`): every integer narrowing or float→integer
//! conversion in accounting code goes through the helpers here, which are
//! built on `try_from`. Out-of-range values panic in debug builds (the
//! conversion was a logic error) and saturate in release builds (no silent
//! wraparound can corrupt a result, and hot paths stay panic-free).
//!
//! This file is the one place in `cscnn-sim` allowed to write the raw
//! casts (it is the allowlisted implementation of the rule).
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

/// Converts an integer quantity into a `u64` cycle count.
///
/// Debug builds panic on out-of-range values; release builds saturate to
/// `u64::MAX`, which keeps latency accounting monotone instead of wrapping.
#[inline]
pub fn to_cycles<T: TryInto<u64>>(x: T) -> u64 {
    narrow_u64(x, "cycle count")
}

/// Converts an integer quantity into a `u64` byte count.
#[inline]
pub fn to_bytes<T: TryInto<u64>>(x: T) -> u64 {
    narrow_u64(x, "byte count")
}

/// Converts an integer quantity into a `u64` event/work count
/// (multiplications, accesses, products…).
#[inline]
pub fn to_count<T: TryInto<u64>>(x: T) -> u64 {
    narrow_u64(x, "event count")
}

/// Converts an integer quantity into a `usize` index or extent.
#[inline]
pub fn to_index<T: TryInto<usize>>(x: T) -> usize {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "index out of usize range");
            usize::MAX
        }
    }
}

/// Narrows to the `u16` lane/filter-id width used by the detailed PE model.
#[inline]
pub fn to_lane<T: TryInto<u16>>(x: T) -> u16 {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "lane id out of u16 range");
            u16::MAX
        }
    }
}

/// Narrows to the `u8` kernel-coordinate width used by compressed weights.
#[inline]
pub fn to_coord<T: TryInto<u8>>(x: T) -> u8 {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "kernel coordinate out of u8 range");
            u8::MAX
        }
    }
}

/// Narrows to the `u32` per-slice non-zero-count width.
#[inline]
pub fn to_nnz<T: TryInto<u32>>(x: T) -> u32 {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "nnz count out of u32 range");
            u32::MAX
        }
    }
}

#[inline]
fn narrow_u64<T: TryInto<u64>>(x: T, what: &str) -> u64 {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => {
            debug_assert!(false, "{what} out of u64 range");
            u64::MAX
        }
    }
}

/// Converts an already-rounded (`ceil`/`round`/`floor`) `f64` into a `u64`
/// cycle count. Negative, NaN or infinite inputs are logic errors: debug
/// builds panic, release builds clamp (negative/NaN → 0, +∞/overflow →
/// `u64::MAX`).
#[inline]
pub fn cycles_from_f64(x: f64) -> u64 {
    u64_from_f64(x, "cycle count")
}

/// Converts an already-rounded `f64` into a `u64` byte count.
#[inline]
pub fn bytes_from_f64(x: f64) -> u64 {
    u64_from_f64(x, "byte count")
}

/// Converts an already-rounded `f64` into a `u64` event/work count.
#[inline]
pub fn count_from_f64(x: f64) -> u64 {
    u64_from_f64(x, "event count")
}

/// Converts an already-rounded, already-clamped `f64` into a `u32`
/// non-zero count.
#[inline]
pub fn nnz_from_f64(x: f64) -> u32 {
    debug_assert!(
        x.is_finite() && x >= 0.0,
        "nnz count must be finite and non-negative, got {x}"
    );
    if x.is_finite() && x >= 0.0 {
        const MAX: f64 = u32::MAX as f64;
        if x >= MAX {
            u32::MAX
        } else {
            x as u32
        }
    } else {
        0
    }
}

#[inline]
fn u64_from_f64(x: f64, what: &str) -> u64 {
    debug_assert!(
        x.is_finite() && x >= 0.0,
        "{what} must be finite and non-negative, got {x}"
    );
    if x.is_finite() && x >= 0.0 {
        // 2^64 exactly; every finite f64 below it fits after truncation.
        const LIMIT: f64 = 18_446_744_073_709_551_616.0;
        if x >= LIMIT {
            u64::MAX
        } else {
            x as u64
        }
    } else {
        0
    }
}

/// Default worker-pool size for batched simulation: the validated
/// `CSCNN_NUM_THREADS` environment variable when set (the same knob that
/// sizes the tensor-kernel thread pool in `cscnn-tensor`, so one setting
/// covers both halves of the system), else the machine's available
/// parallelism, else 4. Worker counts never affect results — batching is
/// bit-identical to sequential simulation by construction.
///
/// # Panics
///
/// Panics if `CSCNN_NUM_THREADS` is set to anything other than an integer
/// in `1..=512` (a typo should fail loudly, not silently serialize).
pub fn configured_workers() -> usize {
    const MAX_THREADS: usize = 512;
    match std::env::var("CSCNN_NUM_THREADS") {
        Ok(raw) => {
            let parsed = raw
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|n| (1..=MAX_THREADS).contains(n));
            assert!(
                parsed.is_some(),
                "CSCNN_NUM_THREADS must be an integer in 1..={MAX_THREADS}, got `{raw}`"
            );
            parsed.unwrap_or(1)
        }
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
    }
}

/// Fixed-order compensated summation (Neumaier's variant of Kahan).
///
/// Float addition is not associative, so an unordered `.sum::<f64>()` is a
/// reproducibility hazard the moment an iterator's order changes (the
/// `deterministic-sum` lint rule bans it in the energy/report paths). This
/// helper sums strictly in iteration order *and* carries a compensation
/// term, so results are bit-identical run to run and immune to the worst
/// cancellation errors.
pub fn det_sum<I>(values: I) -> f64
where
    I: IntoIterator<Item = f64>,
{
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            comp += (sum - t) + v;
        } else {
            comp += (v - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_narrowing_is_exact_in_range() {
        assert_eq!(to_cycles(42usize), 42);
        assert_eq!(to_bytes(7u32), 7);
        assert_eq!(to_count(0usize), 0);
        assert_eq!(to_index(9u64), 9);
        assert_eq!(to_lane(65_535usize), 65_535);
        assert_eq!(to_coord(255usize), 255);
        assert_eq!(to_nnz(123usize), 123);
    }

    #[test]
    fn float_conversions_are_exact_for_counts() {
        assert_eq!(cycles_from_f64(1234.0), 1234);
        assert_eq!(count_from_f64(0.0), 0);
        assert_eq!(bytes_from_f64(8.0), 8);
        assert_eq!(nnz_from_f64(17.0), 17);
        // Truncation (callers round first; a stray fraction must not
        // change the integer part).
        assert_eq!(cycles_from_f64(9.999), 9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_count_panics_in_debug() {
        let _ = cycles_from_f64(-1.0);
    }

    #[test]
    fn det_sum_matches_plain_sum_on_benign_data() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 * 0.25).collect();
        let plain: f64 = xs.iter().sum();
        assert_eq!(det_sum(xs.iter().copied()), plain);
    }

    #[test]
    fn det_sum_survives_catastrophic_cancellation() {
        // 1.0 + 1e100 - 1e100 == 0.0 in plain left-to-right f64 addition;
        // the compensation term preserves the 1.0.
        let xs = [1.0f64, 1e100, 1.0, -1e100];
        let plain: f64 = xs.iter().sum();
        assert_eq!(plain, 0.0, "plain sum loses the small terms");
        assert_eq!(det_sum(xs.iter().copied()), 2.0);
    }

    #[test]
    fn det_sum_of_empty_is_zero() {
        assert_eq!(det_sum(std::iter::empty()), 0.0);
    }
}
